#!/usr/bin/env python3
"""Documentation gate: run the doctests and check intra-repo markdown links.

Run from the repository root (the CI docs job does)::

    PYTHONPATH=src python tools/check_docs.py

Two checks, both hard failures:

1. **Doctests** -- ``examples/quickstart.py`` plus the doctest-bearing
   library modules are executed with :mod:`doctest`; every example in the
   documentation must keep producing its published output.
2. **Links** -- every relative link or image target in the repository's
   markdown files must exist on disk (``http(s)``/``mailto`` targets and
   pure ``#fragment`` anchors are skipped).  Broken cross-references
   between README, docs/ and benchmarks/ fail the build.
"""

from __future__ import annotations

import doctest
import importlib
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: modules whose docstrings carry executable examples
DOCTEST_MODULES = (
    "repro.core.tree",
    "repro.core.kernel",
    "repro.solvers.facade",
)

#: standalone files whose docstrings carry executable examples
DOCTEST_FILES = (ROOT / "examples" / "quickstart.py",)

#: markdown files checked for dead intra-repo links.  The retrieval-provided
#: metadata files (PAPER.md, PAPERS.md, SNIPPETS.md, ISSUE.md) are excluded:
#: they are scraped documents with image references we do not own.
MARKDOWN_GLOBS = (
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/*.md",
    "benchmarks/*.md",
)

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def run_doctests() -> int:
    failures = 0
    for name in DOCTEST_MODULES:
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        print(f"doctest {name}: {result.attempted} examples, {result.failed} failed")
        failures += result.failed
    for path in DOCTEST_FILES:
        # import-free execution so the example file needs no package install
        result = doctest.testfile(
            str(path), module_relative=False, verbose=False
        )
        print(
            f"doctest {path.relative_to(ROOT)}: "
            f"{result.attempted} examples, {result.failed} failed"
        )
        failures += result.failed
    return failures


def check_links() -> int:
    broken = 0
    seen = set()
    for pattern in MARKDOWN_GLOBS:
        for md in sorted(ROOT.glob(pattern)):
            if md in seen:
                continue
            seen.add(md)
            text = md.read_text(encoding="utf-8")
            for match in _LINK.finditer(text):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (md.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    print(f"BROKEN LINK in {md.relative_to(ROOT)}: {target}")
                    broken += 1
            print(f"links   {md.relative_to(ROOT)}: ok")
    return broken


def main() -> int:
    failures = run_doctests()
    broken = check_links()
    if failures or broken:
        print(f"\nFAILED: {failures} doctest failure(s), {broken} broken link(s)")
        return 1
    print("\ndocs ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
