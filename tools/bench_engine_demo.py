"""Measure the persistent batch engine against the legacy per-call pool.

Runs the same campaign twice through :func:`repro.bench.run_scenarios` --
once with ``pool="fresh"`` (the legacy structure: one one-shot process pool
per ``solve_many`` call, every payload carrying a pickled tree, budget
sweeps as serial size-1 batches) and once with ``pool="persistent"`` (the
campaign plan on the shared-memory engine) -- and writes the persistent
run's ``BENCH_*.json`` artifact with the measured baseline embedded under
``run.baseline``, so one committed artifact carries both campaign wall
times.

Usage::

    PYTHONPATH=src python tools/bench_engine_demo.py \
        [--scenario service] [--workers 4] [--repeat 3] [--warmup 1] \
        [--seed 0] [--output BENCH_x.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import get_scenario, run_scenarios  # noqa: E402
from repro.bench.artifact import run_to_dict  # noqa: E402
from repro.solvers import shutdown_engine  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="service")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    scenarios = [get_scenario(args.scenario)]
    common = dict(
        seed=args.seed, repeat=args.repeat, warmup=args.warmup, workers=args.workers
    )

    print(f"campaign: {args.scenario} x workers={args.workers} "
          f"repeat={args.repeat} warmup={args.warmup}", flush=True)
    baseline = run_scenarios(scenarios, pool="fresh", **common)
    print(f"  legacy per-call pool : {baseline.campaign_seconds:8.2f}s "
          f"({len(baseline.records)} records)", flush=True)

    engine_run = run_scenarios(scenarios, pool="persistent", **common)
    shutdown_engine()
    print(f"  persistent engine    : {engine_run.campaign_seconds:8.2f}s "
          f"({len(engine_run.records)} records)", flush=True)
    speedup = baseline.campaign_seconds / engine_run.campaign_seconds
    print(f"  speedup              : {speedup:8.2f}x", flush=True)

    # the two runs must agree on everything except wall times
    def strip(records):
        return [
            (r.key, r.peak_memory, r.io_volume, r.replay_ok, r.optimality_ratio)
            for r in records
        ]

    if strip(baseline.records) != strip(engine_run.records):
        print("error: pool modes disagree on deterministic metrics", file=sys.stderr)
        return 1

    document = run_to_dict(engine_run)
    document["run"]["baseline"] = {
        "pool": "fresh",
        "campaign_seconds": baseline.campaign_seconds,
        "speedup": speedup,
    }
    path = args.output
    if path is None:
        stamp = document["created_utc"].replace("-", "").replace(":", "")
        path = Path(f"BENCH_{stamp}.json")
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {len(engine_run.records)} records to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
