"""Compare the executor backends on the service campaigns.

Runs the same campaign (default ``service`` + ``service_burst``) once per
requested backend through :func:`repro.bench.run_scenarios` and writes the
persistent run's ``BENCH_*.json`` artifact with every other backend's
campaign wall time (and its work-splitting counters) embedded under
``run.backends``, so one committed artifact carries the whole comparison.

``dask`` is attempted last and skipped with a notice when the optional
dependency is not installed (the development image omits it; the CI
optional-deps job has it), so the committed artifact from a plain checkout
compares ``persistent`` vs ``threads`` and the CI run adds the cluster.

Usage::

    PYTHONPATH=src python tools/bench_backends_demo.py \
        [--scenario service --scenario service_burst] [--workers 4] \
        [--repeat 2] [--warmup 1] [--seed 0] [--pools persistent,threads,dask] \
        [--output BENCH_x.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import get_scenario, run_scenarios  # noqa: E402
from repro.bench.artifact import run_to_dict  # noqa: E402
from repro.solvers import shutdown_engine  # noqa: E402
from repro.solvers.engine import get_backend_spec  # noqa: E402


def _strip(records):
    return [
        (r.key, r.peak_memory, r.io_volume, r.replay_ok, r.optimality_ratio)
        for r in records
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario", action="append", dest="scenarios", default=None,
        help="scenario name; repeatable (default: service, service_burst)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--pools", default="persistent,threads,dask",
        help="comma-separated backend names, reference run first",
    )
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    names = args.scenarios or ["service", "service_burst"]
    scenarios = [get_scenario(name) for name in names]
    pools = [name.strip() for name in args.pools.split(",") if name.strip()]
    common = dict(
        seed=args.seed, repeat=args.repeat, warmup=args.warmup, workers=args.workers
    )

    print(f"campaign: {', '.join(names)} x workers={args.workers} "
          f"repeat={args.repeat} warmup={args.warmup}", flush=True)

    runs = {}
    for pool in pools:
        spec = get_backend_spec(pool)
        if not spec.available:
            print(f"  {pool:<21}: skipped (optional dependency "
                  f"{spec.requires!r} not installed)", flush=True)
            continue
        runs[pool] = run_scenarios(scenarios, pool=pool, **common)
        shutdown_engine()
        extras = runs[pool].extras
        print(f"  {pool:<21}: {runs[pool].campaign_seconds:8.2f}s "
              f"({len(runs[pool].records)} records, "
              f"{extras['work_units']} work units, "
              f"{extras['straggler_resplits']} re-splits)", flush=True)

    if not runs:
        print("error: no requested backend is available", file=sys.stderr)
        return 1
    reference_pool, reference = next(iter(runs.items()))
    for pool, run in runs.items():
        if _strip(run.records) != _strip(reference.records):
            print(f"error: pool={pool} disagrees with pool={reference_pool} "
                  "on deterministic metrics", file=sys.stderr)
            return 1

    document = run_to_dict(reference)
    document["run"]["backends"] = {
        pool: {
            "campaign_seconds": run.campaign_seconds,
            "speedup_vs_reference":
                reference.campaign_seconds / run.campaign_seconds,
            **run.extras,
        }
        for pool, run in runs.items()
    }
    path = args.output
    if path is None:
        stamp = document["created_utc"].replace("-", "").replace(":", "")
        path = Path(f"BENCH_{stamp}.json")
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {len(reference.records)} records to {path} "
          f"(backends compared: {', '.join(runs)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
