#!/usr/bin/env python
"""Fit / validate the ``"auto"`` portfolio routing table from BENCH data.

The decision list in :data:`repro.solvers.portfolio.ROUTING_TABLE` is
*data*, fitted offline from a committed campaign artifact.  This tool
re-derives the evidence behind it and fails when the table stops being
supported:

1. load a schema-v1 campaign artifact (default: the newest committed
   ``BENCH_*.json`` holding MinMemory records);
2. rebuild the artifact's instances with its own seed and extract
   :func:`~repro.solvers.portfolio.tree_features` for each;
3. predict what ``auto`` would do -- route through the table below the
   race threshold, race postorder/liu above it -- and join the predicted
   algorithm's *committed* peak against the best single algorithm's;
4. print a per-rule summary and exit non-zero if any instance exceeds
   ``TOLERANCE`` (the 1.05x acceptance bound) or any rule never fires.

Run it after re-benchmarking (``repro bench ...``) to confirm the table,
or with ``--thresholds`` to inspect the feature/ratio scatter that
motivated each rule before editing it.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.scenario import get_scenario  # noqa: E402
from repro.solvers.portfolio import (  # noqa: E402
    RACE_CANDIDATES,
    RACE_NODE_THRESHOLD,
    ROUTING_TABLE,
    TOLERANCE,
    route,
    tree_features,
)

#: algorithms whose committed peaks define "best single" for the portfolio
CANDIDATES = ("postorder", "liu", "minmem")


def newest_campaign_artifact(root: Path) -> Path:
    """The committed BENCH artifact covering the most tree families.

    Routing rules are per-family, so a narrow artifact (e.g. a
    service-only traffic run) cannot exercise the whole table; prefer
    breadth, break ties toward the most recent file.
    """
    best = None
    for path in sorted(root.glob("BENCH_*.json"), reverse=True):
        doc = json.loads(path.read_text())
        families = {
            r["scenario"]
            for r in doc.get("records", [])
            if r["algorithm"] in CANDIDATES
        }
        if families and (best is None or len(families) > best[0]):
            best = (len(families), path)
    if best is None:
        raise SystemExit(f"no campaign artifact with MinMemory records under {root}")
    return best[1]


def load_peaks(doc: dict) -> dict:
    """``(scenario, instance) -> {algorithm: peak_memory}`` from the records."""
    peaks: dict = defaultdict(dict)
    for record in doc["records"]:
        if record["algorithm"] in CANDIDATES:
            peaks[(record["scenario"], record["instance"])][
                record["algorithm"]
            ] = record["peak_memory"]
    return peaks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifact",
        type=Path,
        default=None,
        help="campaign artifact to validate against (default: newest BENCH_*.json)",
    )
    parser.add_argument(
        "--thresholds",
        action="store_true",
        help="also print every instance's features next to its postorder ratio",
    )
    args = parser.parse_args(argv)

    root = Path(__file__).resolve().parent.parent
    artifact = args.artifact or newest_campaign_artifact(root)
    doc = json.loads(Path(artifact).read_text())
    seed = doc["run"]["seed"]
    peaks = load_peaks(doc)
    scenarios = sorted({scenario for scenario, _ in peaks})
    print(f"artifact : {artifact}")
    print(f"seed     : {seed}")
    print(f"families : {', '.join(scenarios)}")
    print()

    fired = defaultdict(int)
    worst = defaultdict(float)
    violations = []
    for scenario_name in scenarios:
        builder = get_scenario(scenario_name).builder
        for instance, tree in builder(seed):
            by_alg = peaks.get((scenario_name, instance))
            if not by_alg:
                continue  # instance not benchmarked (filtered run)
            features = tree_features(tree.kernel())
            if features["nodes"] >= RACE_NODE_THRESHOLD:
                rule = "(race)"
                auto_peak = min(
                    by_alg[a] for a in RACE_CANDIDATES if a in by_alg
                )
            else:
                rule, predicted = route(features)
                if predicted not in by_alg:
                    continue  # routed algorithm not in this family's sweep
                auto_peak = by_alg[predicted]
            best = min(by_alg.values())
            ratio = auto_peak / best if best else 1.0
            fired[rule] += 1
            worst[rule] = max(worst[rule], ratio)
            if ratio > TOLERANCE:
                violations.append((scenario_name, instance, rule, ratio))
            if args.thresholds:
                postorder_ratio = (
                    by_alg.get("postorder", float("nan")) / best if best else 1.0
                )
                print(
                    f"{scenario_name}/{instance}: rule={rule} "
                    f"postorder_ratio={postorder_ratio:.3f} "
                    + " ".join(f"{k}={v:.3g}" for k, v in features.items())
                )

    print(f"{'rule':<18} {'fires':>6} {'worst auto/best':>16}")
    for entry in ROUTING_TABLE:
        rule = entry["rule"]
        print(f"{rule:<18} {fired.get(rule, 0):>6} {worst.get(rule, 0.0):>16.4f}")
    if "(race)" in fired:
        print(f"{'(race)':<18} {fired['(race)']:>6} {worst['(race)']:>16.4f}")
    print()

    status = 0
    for entry in ROUTING_TABLE:
        if entry["rule"] != "default" and not fired.get(entry["rule"]):
            print(f"DEAD RULE: {entry['rule']!r} never fired on this artifact")
            status = 1
    for scenario_name, instance, rule, ratio in violations:
        print(
            f"VIOLATION: {scenario_name}/{instance} via {rule}: "
            f"auto/best = {ratio:.4f} > {TOLERANCE}"
        )
        status = 1
    print("routing table OK" if status == 0 else "routing table REJECTED")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
