"""Setuptools shim.

The project metadata lives in ``pyproject.toml``.  This file exists so that
``pip install -e .`` keeps working on offline machines whose setuptools
predates the bundled ``bdist_wheel`` command (the legacy ``setup.py develop``
code path does not need the ``wheel`` package).
"""

from setuptools import setup

setup()
