#!/usr/bin/env python3
"""Memory planning for a sparse Cholesky factorization.

This is the paper's motivating scenario: starting from a sparse SPD matrix,
build the assembly tree for several fill-reducing orderings, compare the main
memory needed by the best postorder traversal (the industry default) against
the optimal traversal, and cross-check the task-tree model against an actual
multifrontal factorization.

Run with::

    python examples/sparse_cholesky_memory.py [grid_size]
"""

import sys

from repro.core import best_postorder, liu_optimal_traversal, min_mem
from repro.core.traversal import peak_memory
from repro.sparse import (
    build_assembly_tree,
    frontal_memory_tree,
    grid_laplacian_2d,
    multifrontal_cholesky,
)


def main(grid: int = 14) -> None:
    matrix = grid_laplacian_2d(grid)
    print(f"matrix: {grid}x{grid} grid Laplacian, n = {matrix.shape[0]}, nnz = {matrix.nnz}")

    print("\n=== assembly-tree memory by ordering (entries of frontal matrices) ===")
    header = f"{'ordering':<20}{'supernodes':>11}{'fill':>7}{'PostOrder':>12}{'Optimal':>10}{'ratio':>8}"
    print(header)
    print("-" * len(header))
    for ordering in ("natural", "rcm", "minimum_degree", "nested_dissection"):
        result = build_assembly_tree(matrix, ordering=ordering, relaxed=4)
        tree = result.tree
        postorder = best_postorder(tree).memory
        optimal = min_mem(tree).memory
        print(
            f"{ordering:<20}{tree.size:>11}{result.symbolic.fill_ratio:>7.2f}"
            f"{postorder:>12.0f}{optimal:>10.0f}{postorder / optimal:>8.3f}"
        )

    print("\n=== cross-check against the multifrontal engine (column-level tree) ===")
    tree = frontal_memory_tree(matrix)
    optimal = liu_optimal_traversal(tree)
    postorder = best_postorder(tree)
    engine_postorder = multifrontal_cholesky(matrix, postorder.traversal)
    engine_optimal = multifrontal_cholesky(matrix, optimal.traversal)
    print(f"model peak (postorder) : {peak_memory(tree, postorder.traversal):>12.0f} entries")
    print(f"engine peak (postorder): {engine_postorder.peak_memory:>12.0f} entries")
    print(f"model peak (optimal)   : {optimal.memory:>12.0f} entries")
    print(f"engine peak (optimal)  : {engine_optimal.peak_memory:>12.0f} entries")
    residual = abs(engine_optimal.factor @ engine_optimal.factor.T - matrix).max()
    print(f"numeric check          : max |LL^T - A| = {residual:.2e}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 14)
