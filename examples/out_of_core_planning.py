#!/usr/bin/env python3
"""Out-of-core factorization planning.

When the assembly tree does not fit in the available main memory, some
contribution blocks must be written to disk.  This example sweeps the main
memory from the bare minimum (``max MemReq``) to the in-core optimum and
reports the I/O volume of every eviction heuristic of the paper, together
with the two lower bounds, for each of the three traversal algorithms.

Run with::

    python examples/out_of_core_planning.py [grid_size]
"""

import sys

from repro.analysis.experiments import traversal_for
from repro.core.minio import (
    HEURISTICS,
    divisible_lower_bound,
    memory_deficit_lower_bound,
    run_out_of_core,
)
from repro.sparse import build_assembly_tree, grid_laplacian_2d


def main(grid: int = 16) -> None:
    matrix = grid_laplacian_2d(grid)
    tree = build_assembly_tree(matrix, ordering="nested_dissection", relaxed=4).tree
    lower = tree.max_mem_req()
    optimal_memory, _ = traversal_for(tree, "MinMem")
    print(
        f"assembly tree: {tree.size} supernodes, max MemReq = {lower:.0f}, "
        f"in-core optimum = {optimal_memory:.0f}"
    )

    fractions = (0.0, 0.25, 0.5, 0.75)
    for algorithm in ("PostOrder", "Liu", "MinMem"):
        peak, traversal = traversal_for(tree, algorithm)
        print(f"\n=== traversal: {algorithm} (in-core peak {peak:.0f}) ===")
        header = f"{'memory':>10}{'deficit LB':>12}{'divisible LB':>14}" + "".join(
            f"{name:>16}" for name in HEURISTICS
        )
        print(header)
        for frac in fractions:
            memory = lower + frac * (optimal_memory - lower)
            row = f"{memory:>10.0f}"
            row += f"{memory_deficit_lower_bound(tree, memory):>12.0f}"
            row += f"{divisible_lower_bound(tree, memory, traversal):>14.0f}"
            for name in HEURISTICS:
                io = run_out_of_core(tree, memory, traversal, name).io_volume
                row += f"{io:>16.0f}"
            print(row)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
