#!/usr/bin/env python3
"""Theorem 1 in action: postorder traversals can be arbitrarily bad.

Builds the iterated harpoon family of the paper and shows that the
postorder/optimal memory ratio grows linearly with the nesting level, exactly
matching the closed-form bounds of the proof.

Run with::

    python examples/worst_case_postorder.py
"""

from repro.core import best_postorder, min_mem
from repro.generators.harpoon import (
    iterated_harpoon_tree,
    optimal_memory_bound,
    postorder_memory_bound,
)


def main(branches: int = 4, epsilon: float = 0.001) -> None:
    print(f"iterated harpoon, b = {branches} branches, epsilon = {epsilon}")
    header = (
        f"{'levels':>7}{'nodes':>8}{'PostOrder':>12}{'predicted':>12}"
        f"{'Optimal':>10}{'predicted':>12}{'ratio':>8}"
    )
    print(header)
    print("-" * len(header))
    for levels in (1, 2, 3, 4, 5, 6):
        tree = iterated_harpoon_tree(branches, levels, memory=1.0, epsilon=epsilon)
        postorder = best_postorder(tree).memory
        optimal = min_mem(tree).memory
        print(
            f"{levels:>7}{tree.size:>8}{postorder:>12.4f}"
            f"{postorder_memory_bound(branches, levels, 1.0, epsilon):>12.4f}"
            f"{optimal:>10.4f}"
            f"{optimal_memory_bound(branches, levels, 1.0, epsilon):>12.4f}"
            f"{postorder / optimal:>8.2f}"
        )
    print(
        "\nThe ratio grows without bound with the nesting level: for any K there"
        "\nis a tree on which the best postorder needs K times the optimal memory."
    )


if __name__ == "__main__":
    main()
