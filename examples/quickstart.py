#!/usr/bin/env python3
"""Quickstart: the unified ``solve()`` / ``compare()`` API, as a doctest.

Everything below is executable documentation: run it as a script
(``python examples/quickstart.py``) or check it line by line with
``python -m doctest examples/quickstart.py`` (the CI docs job does the
latter on every push).

Build a small task tree -- node weights are the paper's ``f`` (communication
file exchanged with the parent) and ``n`` (execution file):

>>> from repro import Tree, solve, compare, solve_many
>>> tree = Tree()
>>> tree.add_node("root", f=0.0, n=10.0)
'root'
>>> for name, parent, f, n in [
...     ("left", "root", 16.0, 20.0), ("right", "root", 9.0, 12.0),
...     ("left.a", "left", 9.0, 8.0), ("left.b", "left", 4.0, 6.0),
...     ("right.a", "right", 4.0, 5.0), ("right.b", "right", 1.0, 2.0),
...     ("left.a.x", "left.a", 4.0, 3.0), ("left.a.y", "left.a", 1.0, 1.0),
... ]:
...     _ = tree.add_node(name, parent=parent, f=f, n=n)
>>> tree.size, tree.max_mem_req()
(9, 49.0)

``solve`` runs any registered algorithm and returns a ``SolveReport``:

>>> report = solve(tree, "minmem")           # the paper's exact MinMem
>>> report.peak_memory
49.0
>>> report.traversal.order[:3]
('root', 'right', 'right.a')

The solvers run on the array-backed kernel by default; the original
per-node implementations remain available as an oracle and always agree:

>>> solve(tree, "minmem", engine="reference").peak_memory
49.0

Postorder traversals (what sparse direct solvers use) can be arbitrarily
worse than the optimum -- the paper's harpoon construction forces the gap:

>>> from repro.generators.harpoon import harpoon_tree
>>> harpoon = harpoon_tree(4, memory=16.0, epsilon=0.5)
>>> ranking = compare(harpoon)               # postorder vs liu vs minmem
>>> [(r.algorithm, r.peak_memory) for r in ranking]
[('liu', 18.0), ('minmem', 18.0), ('postorder', 28.5)]
>>> round(ranking.ratios()["postorder"], 4)
1.5833

With less memory than the in-core optimum, the MinIO scheduler plans which
files to write to secondary storage (and the I/O volume it costs):

>>> out = solve(harpoon, "minio", memory=17.0, heuristic="first_fit")
>>> out.io_volume, out.extras["io_operations"]
(1.0, 2)

Batches fan out across trees and algorithms (and, with ``workers=N``,
across processes); results are identical to the serial path:

>>> batch = solve_many([tree, harpoon], ["postorder", "minmem"])
>>> [round(reports["postorder"].peak_memory, 1) for reports in batch]
[49.0, 28.5]

Every report can be re-executed by the independent replay oracle of
:mod:`repro.bench`, which recomputes the claimed metrics from scratch:

>>> from repro.bench import replay_report
>>> replay = replay_report(harpoon, solve(harpoon, "minmem"))
>>> replay.peak_memory, replay.steps, replay.complete
(18.0, 13, True)

The full scenario-sweep campaign lives behind the CLI::

    repro-treemem bench --smoke --json     # run + write BENCH_<timestamp>.json
    repro-treemem bench --compare OLD NEW  # exit 1 on regressions
    repro-treemem bench --filter large --engine kernel
"""

from repro import compare, list_solvers, solve, solve_many
from repro.generators.harpoon import harpoon_tree


def build_tree():
    """The hand-made assembly-like tree used in the doctest above."""
    from repro import Tree

    tree = Tree()
    tree.add_node("root", f=0.0, n=10.0)
    tree.add_node("left", parent="root", f=16.0, n=20.0)
    tree.add_node("right", parent="root", f=9.0, n=12.0)
    tree.add_node("left.a", parent="left", f=9.0, n=8.0)
    tree.add_node("left.b", parent="left", f=4.0, n=6.0)
    tree.add_node("right.a", parent="right", f=4.0, n=5.0)
    tree.add_node("right.b", parent="right", f=1.0, n=2.0)
    tree.add_node("left.a.x", parent="left.a", f=4.0, n=3.0)
    tree.add_node("left.a.y", parent="left.a", f=1.0, n=1.0)
    return tree


def main() -> None:
    tree = build_tree()
    print(f"tree with {tree.size} tasks, max MemReq = {tree.max_mem_req():.0f} MB")
    print(f"registered solvers: {', '.join(list_solvers())}\n")

    minmem = solve(tree, "minmem")
    print(f"MinMem     : {minmem.peak_memory:.0f} MB "
          f"({minmem.extras['explore_calls']} Explore calls)")
    print(f"  order    : {' -> '.join(map(str, minmem.traversal.order))}\n")

    harpoon = harpoon_tree(4, memory=16.0, epsilon=0.5)
    print("harpoon ranking (postorder provably suboptimal):")
    print(compare(harpoon).format_table())

    out = solve(harpoon, "minio", memory=17.0, heuristic="first_fit")
    print(f"\nout-of-core at M=17: {out.io_volume:.1f} MB written "
          f"({out.extras['io_operations']} files)")

    batch = solve_many([tree, harpoon], ["postorder", "minmem"], workers=2)
    for i, reports in enumerate(batch):
        ratio = reports["postorder"].peak_memory / reports["minmem"].peak_memory
        print(f"tree #{i}: PostOrder / optimal = {ratio:.3f}")


if __name__ == "__main__":
    main()
