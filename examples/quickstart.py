#!/usr/bin/env python3
"""Quickstart: build a small task tree and compare the three MinMemory
algorithms plus an out-of-core schedule.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Tree,
    best_postorder,
    check_in_core,
    liu_optimal_traversal,
    min_mem,
    peak_memory,
    run_out_of_core,
)


def build_tree() -> Tree:
    """A hand-made assembly-like tree (file sizes in megabytes)."""
    tree = Tree()
    tree.add_node("root", f=0.0, n=10.0)
    tree.add_node("left", parent="root", f=16.0, n=20.0)
    tree.add_node("right", parent="root", f=9.0, n=12.0)
    tree.add_node("left.a", parent="left", f=9.0, n=8.0)
    tree.add_node("left.b", parent="left", f=4.0, n=6.0)
    tree.add_node("right.a", parent="right", f=4.0, n=5.0)
    tree.add_node("right.b", parent="right", f=1.0, n=2.0)
    tree.add_node("left.a.x", parent="left.a", f=4.0, n=3.0)
    tree.add_node("left.a.y", parent="left.a", f=1.0, n=1.0)
    return tree


def main() -> None:
    tree = build_tree()
    print(f"tree with {tree.size} tasks, max MemReq = {tree.max_mem_req():.0f} MB")

    # 1. the best postorder traversal (what MUMPS-style solvers do)
    postorder = best_postorder(tree)
    print(f"\nPostOrder  : {postorder.memory:.0f} MB")
    print(f"  order    : {' -> '.join(map(str, postorder.traversal.order))}")

    # 2. Liu's exact algorithm (optimal over all traversals)
    liu = liu_optimal_traversal(tree)
    print(f"Liu        : {liu.memory:.0f} MB")

    # 3. the paper's MinMem algorithm (same optimum, different search)
    minmem = min_mem(tree)
    print(f"MinMem     : {minmem.memory:.0f} MB")
    print(f"  order    : {' -> '.join(map(str, minmem.traversal.order))}")

    assert liu.memory == minmem.memory <= postorder.memory
    assert check_in_core(tree, minmem.memory, minmem.traversal)
    assert peak_memory(tree, minmem.traversal) == minmem.memory

    # 4. out-of-core execution when only max MemReq is available
    memory = tree.max_mem_req()
    print(f"\nout-of-core execution with M = {memory:.0f} MB:")
    for heuristic in ("first_fit", "lsnf", "best_k_combination"):
        out = run_out_of_core(tree, memory, minmem.traversal, heuristic)
        print(
            f"  {heuristic:<18}: {out.io_volume:6.1f} MB written "
            f"({out.io_operations} files)"
        )


if __name__ == "__main__":
    main()
