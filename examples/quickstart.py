#!/usr/bin/env python3
"""Quickstart: the unified ``solve()`` / ``compare()`` API.

Build a small task tree, run every MinMemory algorithm through the solver
registry, rank them side by side, and plan an out-of-core execution -- all
via the single ``repro.solve`` entry point.  The legacy per-algorithm
functions (``best_postorder``, ``liu_optimal_traversal``, ``min_mem``,
``run_out_of_core``) remain supported; ``solve`` is a thin dispatch layer
over them.

Run with::

    python examples/quickstart.py
"""

from repro import Tree, compare, list_solvers, solve, solve_many


def build_tree() -> Tree:
    """A hand-made assembly-like tree (file sizes in megabytes)."""
    tree = Tree()
    tree.add_node("root", f=0.0, n=10.0)
    tree.add_node("left", parent="root", f=16.0, n=20.0)
    tree.add_node("right", parent="root", f=9.0, n=12.0)
    tree.add_node("left.a", parent="left", f=9.0, n=8.0)
    tree.add_node("left.b", parent="left", f=4.0, n=6.0)
    tree.add_node("right.a", parent="right", f=4.0, n=5.0)
    tree.add_node("right.b", parent="right", f=1.0, n=2.0)
    tree.add_node("left.a.x", parent="left.a", f=4.0, n=3.0)
    tree.add_node("left.a.y", parent="left.a", f=1.0, n=1.0)
    return tree


def main() -> None:
    tree = build_tree()
    print(f"tree with {tree.size} tasks, max MemReq = {tree.max_mem_req():.0f} MB")
    print(f"registered solvers: {', '.join(list_solvers())}\n")

    # 1. one algorithm, one unified report
    minmem = solve(tree, "minmem")
    print(f"MinMem     : {minmem.peak_memory:.0f} MB "
          f"({minmem.extras['explore_calls']} Explore calls)")
    print(f"  order    : {' -> '.join(map(str, minmem.traversal.order))}")

    # 2. ranked side-by-side comparison (postorder vs liu vs minmem)
    ranking = compare(tree)
    print("\n" + ranking.format_table())
    assert ranking.best.peak_memory <= ranking["postorder"].peak_memory

    # 3. out-of-core planning when only max MemReq is available
    memory = tree.max_mem_req()
    print(f"\nout-of-core execution with M = {memory:.0f} MB:")
    for heuristic in ("first_fit", "lsnf", "best_k_combination"):
        out = solve(tree, "minio", memory=memory, heuristic=heuristic,
                    traversal=minmem.traversal)
        print(
            f"  {heuristic:<18}: {out.io_volume:6.1f} MB written "
            f"({out.extras['io_operations']} files)"
        )

    # 4. batches of trees fan out across worker processes
    batch = solve_many([tree, build_tree()], ["postorder", "minmem"], workers=2)
    for i, reports in enumerate(batch):
        ratio = reports["postorder"].peak_memory / reports["minmem"].peak_memory
        print(f"\ntree #{i}: PostOrder / optimal = {ratio:.3f}")

    # 5. replay-validate the reports with the independent bench oracle
    from repro.bench import replay_report

    replay = replay_report(tree, minmem)
    print(f"\nreplay oracle: peak {replay.peak_memory:.0f} MB over "
          f"{replay.steps} steps (matches the solver's claim)")
    # the full scenario-sweep campaign lives behind the CLI:
    #   repro-treemem bench --filter minmem --json   -> BENCH_<timestamp>.json
    #   repro-treemem bench --compare OLD NEW        -> exit 1 on regressions


if __name__ == "__main__":
    main()
