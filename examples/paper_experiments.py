#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

The script builds the substitute data sets described in DESIGN.md and prints,
for each experiment, the same quantities the paper reports: Table I / II
statistics, and the Figure 5-9 performance profiles (as tau tables and ASCII
curves).  See EXPERIMENTS.md for the recorded outputs and the comparison with
the paper.

Run with::

    python examples/paper_experiments.py --scale tiny          # seconds
    python examples/paper_experiments.py --scale small         # a few minutes
    python examples/paper_experiments.py --experiment fig7     # one experiment
"""

import argparse
import time

from repro.analysis import (
    ascii_profile,
    assembly_tree_dataset,
    format_profile_table,
    format_ratio_table,
    random_tree_dataset,
    run_harpoon_ablation,
    run_minio_heuristics,
    run_minmemory_comparison,
    run_runtime_comparison,
    run_traversal_io,
)

EXPERIMENTS = ("fig5", "fig6", "fig7", "fig8", "fig9", "harpoon", "all")


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def fig5_table1(assembly) -> None:
    banner("Figure 5 + Table I -- PostOrder vs optimal memory (assembly trees)")
    comparison = run_minmemory_comparison(assembly)
    print(format_ratio_table(comparison.statistics()))
    profile = comparison.profile(non_optimal_only=True)
    print("\nperformance profile (non-optimal instances only):")
    print(format_profile_table(profile, taus=(1.0, 1.02, 1.05, 1.1, 1.2)))
    print(ascii_profile(profile))


def fig6(assembly) -> None:
    banner("Figure 6 -- run time of PostOrder / Liu / MinMem (assembly trees)")
    runtime = run_runtime_comparison(assembly)
    print(format_profile_table(runtime.profile(), taus=(1.0, 1.5, 2.0, 3.0, 5.0)))
    for algorithm in runtime.times:
        print(f"total {algorithm:<10}: {runtime.total_time(algorithm) * 1e3:9.1f} ms")


def fig7(assembly) -> None:
    banner("Figure 7 -- I/O volume of the eviction heuristics (MinMem traversals)")
    comparison = run_minio_heuristics(assembly)
    print(format_profile_table(comparison.profile(), taus=(1.0, 1.1, 1.5, 2.0, 5.0)))


def fig8(assembly) -> None:
    banner("Figure 8 -- I/O volume of the traversal algorithms + First Fit")
    comparison = run_traversal_io(assembly)
    print(format_profile_table(comparison.profile(), taus=(1.0, 1.1, 1.5, 2.0, 5.0)))


def fig9_table2(random_set) -> None:
    banner("Figure 9 + Table II -- PostOrder vs optimal memory (random trees)")
    comparison = run_minmemory_comparison(random_set)
    print(format_ratio_table(comparison.statistics()))
    profile = comparison.profile(non_optimal_only=True)
    print("\nperformance profile (non-optimal instances only):")
    print(format_profile_table(profile, taus=(1.0, 1.1, 1.25, 1.5, 2.0)))
    print(ascii_profile(profile))


def harpoon() -> None:
    banner("Theorem 1 ablation -- iterated harpoons")
    ablation = run_harpoon_ablation()
    print(f"{'levels':>7}{'PostOrder':>12}{'Optimal':>10}{'ratio':>8}")
    for i, level in enumerate(ablation.levels):
        print(
            f"{level:>7}{ablation.postorder[i]:>12.4f}{ablation.optimal[i]:>10.4f}"
            f"{ablation.postorder[i] / ablation.optimal[i]:>8.2f}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("tiny", "small", "full"), default="tiny")
    parser.add_argument("--experiment", choices=EXPERIMENTS, default="all")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    start = time.perf_counter()
    assembly = None
    random_set = None
    if args.experiment in ("fig5", "fig6", "fig7", "fig8", "all"):
        assembly = assembly_tree_dataset(args.scale)
        print(f"assembly-tree data set: {len(assembly)} trees ({args.scale})")
    if args.experiment in ("fig9", "all"):
        random_set = random_tree_dataset(args.scale, seed=args.seed, assembly_instances=assembly)
        print(f"random-tree data set: {len(random_set)} trees")

    if args.experiment in ("fig5", "all"):
        fig5_table1(assembly)
    if args.experiment in ("fig6", "all"):
        fig6(assembly)
    if args.experiment in ("fig7", "all"):
        fig7(assembly)
    if args.experiment in ("fig8", "all"):
        fig8(assembly)
    if args.experiment in ("fig9", "all"):
        fig9_table2(random_set)
    if args.experiment in ("harpoon", "all"):
        harpoon()
    print(f"\ntotal time: {time.perf_counter() - start:.1f} s")


if __name__ == "__main__":
    main()
