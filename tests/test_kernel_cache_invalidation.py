"""Regression tests: ``Tree.kernel()`` cache invalidation.

The kernel cache is the foundation under both the engine arena (segment
exports are keyed by kernel identity) and the incremental re-solve path
(patched kernels carry provenance).  The contract:

* repeated calls without mutation return the *same object* (identity,
  not equality -- the arena depends on it);
* every mutating method (``add_node``, ``set_f``, ``set_n``) invalidates:
  the next ``kernel()`` call returns a different object whose id-space
  content matches a from-scratch build of the mutated tree;
* non-mutating accessors never invalidate;
* a pickled/unpickled tree re-validates: its kernel reflects the state at
  pickling time, and post-unpickle mutations invalidate as usual.
"""

from __future__ import annotations

import pickle

from repro.core.kernel import TreeKernel
from repro.core.tree import Tree


def make_tree() -> Tree:
    tree = Tree()
    tree.add_node("root", f=1.0, n=1.0)
    tree.add_node("a", parent="root", f=2.0, n=1.0)
    tree.add_node("b", parent="root", f=3.0, n=0.0)
    tree.add_node("c", parent="a", f=1.0, n=2.0)
    return tree


def assert_same_id_space(kern: TreeKernel, tree: Tree) -> None:
    """``kern`` describes exactly ``tree``, whatever its internal labeling."""
    fresh = TreeKernel.from_tree(tree)
    assert sorted(kern.ids) == sorted(fresh.ids)
    for node in tree.nodes():
        i, j = kern.index[node], fresh.index[node]
        assert kern.f[i] == fresh.f[j]
        assert kern.n[i] == fresh.n[j]
        parent_i = kern.parent[i]
        parent_j = fresh.parent[j]
        assert (parent_i < 0) == (parent_j < 0)
        if parent_i >= 0:
            assert kern.ids[parent_i] == fresh.ids[parent_j]
        assert kern.mem_req[i] == fresh.mem_req[j]


def test_kernel_is_cached_between_calls():
    tree = make_tree()
    assert tree.kernel() is tree.kernel()


def test_add_node_invalidates():
    tree = make_tree()
    before = tree.kernel()
    tree.add_node("d", parent="b", f=4.0, n=1.0)
    after = tree.kernel()
    assert after is not before
    assert "d" in after.index
    assert_same_id_space(after, tree)


def test_set_f_invalidates():
    tree = make_tree()
    before = tree.kernel()
    tree.set_f("a", 9.0)
    after = tree.kernel()
    assert after is not before
    assert after.f[after.index["a"]] == 9.0
    assert_same_id_space(after, tree)


def test_set_n_invalidates():
    tree = make_tree()
    before = tree.kernel()
    tree.set_n("c", 7.0)
    after = tree.kernel()
    assert after is not before
    assert after.n[after.index["c"]] == 7.0
    assert_same_id_space(after, tree)


def test_every_mutation_in_sequence_invalidates():
    """Interleaved mutations and kernel() calls never serve a stale kernel."""
    tree = make_tree()
    seen = []  # strong refs: a collected kernel's id() could be reused
    for step in range(6):
        if step % 3 == 0:
            tree.add_node(f"x{step}", parent="root", f=float(step), n=1.0)
        elif step % 3 == 1:
            tree.set_f("b", float(10 + step))
        else:
            tree.set_n("a", float(step))
        kern = tree.kernel()
        assert all(kern is not old for old in seen)
        seen.append(kern)
        assert_same_id_space(kern, tree)


def test_accessors_do_not_invalidate():
    tree = make_tree()
    kern = tree.kernel()
    tree.parent("a")
    tree.children("root")
    tree.f("b")
    tree.n("c")
    tree.mem_req("a")
    tree.max_mem_req()
    tree.depth("c")
    tree.depths()
    tree.height()
    tree.leaves()
    tree.is_leaf("c")
    tree.ancestors("c")
    tree.subtree_nodes("a")
    tree.subtree_size("a")
    tree.topological_order()
    tree.bottom_up_order()
    tree.postorder_dfs()
    tree.total_file_size()
    tree.validate()
    list(tree)
    len(tree)
    "a" in tree
    assert tree.kernel() is kern


def test_patched_kernel_carries_provenance():
    """Mutation after a kernel build patches rather than rebuilds."""
    tree = make_tree()
    base = tree.kernel()
    tree.set_f("a", 5.0)
    patched = tree.kernel()
    assert patched.base_kernel() is base
    assert patched._dirty is not None and len(patched._dirty) >= 1
    # a tree built fresh from the same state has no provenance
    assert tree.copy().kernel().base_kernel() is None


def test_pickled_tree_revalidates():
    tree = make_tree()
    tree.kernel()
    clone = pickle.loads(pickle.dumps(tree))
    assert clone == tree
    assert_same_id_space(clone.kernel(), clone)
    # provenance does not survive pickling (weakrefs cannot), so the first
    # mutation after unpickling must still invalidate and rebuild correctly
    clone.set_f("b", 42.0)
    kern = clone.kernel()
    assert kern.f[kern.index["b"]] == 42.0
    assert_same_id_space(kern, clone)
    # and the original is untouched
    assert tree.f("b") == 3.0


def test_pickle_with_pending_journal():
    """Pickling mid-journal (mutated, kernel() not yet called) is safe."""
    tree = make_tree()
    tree.kernel()
    tree.set_f("a", 8.0)  # journal open, cache invalidated
    clone = pickle.loads(pickle.dumps(tree))
    kern = clone.kernel()
    assert kern.f[kern.index["a"]] == 8.0
    assert_same_id_space(kern, clone)
