"""Unit tests for the deterministic synthetic tree shapes."""

import pytest

from repro.core.liu import liu_min_memory
from repro.generators.synthetic import (
    balanced_tree,
    bamboo_with_bushes,
    broom_tree,
    full_binary_expression_tree,
)


class TestBalancedTree:
    def test_size(self):
        t = balanced_tree(2, 3)
        assert t.size == 15
        t = balanced_tree(3, 2)
        assert t.size == 13

    def test_depth_zero_is_single_node(self):
        assert balanced_tree(4, 0).size == 1

    def test_uniform_weights(self):
        t = balanced_tree(2, 2, f=3.0, n=1.0)
        assert all(t.f(v) == 3.0 and t.n(v) == 1.0 for v in t.nodes())

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_tree(0, 2)
        with pytest.raises(ValueError):
            balanced_tree(2, -1)


class TestBroomAndBamboo:
    def test_broom(self):
        t = broom_tree(5, 4)
        assert t.size == 9
        assert len(t.children(4)) == 4
        assert t.height() == 5

    def test_broom_invalid(self):
        with pytest.raises(ValueError):
            broom_tree(0, 3)

    def test_bamboo_with_bushes(self):
        t = bamboo_with_bushes(4, 3)
        assert t.size == 4 + 4 * 3
        for i in range(4):
            assert len(t.children(i)) >= 3

    def test_bamboo_invalid(self):
        with pytest.raises(ValueError):
            bamboo_with_bushes(0, 1)


class TestExpressionTree:
    def test_structure(self):
        t = full_binary_expression_tree(3)
        assert t.size == 15
        assert all(t.f(v) == 1.0 and t.n(v) == 0.0 for v in t.nodes())

    def test_memory_grows_with_depth(self):
        memories = [liu_min_memory(full_binary_expression_tree(d)) for d in range(1, 5)]
        assert all(a <= b for a, b in zip(memories, memories[1:]))

    def test_invalid(self):
        with pytest.raises(ValueError):
            full_binary_expression_tree(-1)
