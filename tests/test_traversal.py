"""Unit tests for traversal objects, checkers (Algorithms 1-2) and the
memory simulator."""

import random

import pytest

from repro.core.builders import chain_tree, from_parent_list, star_tree
from repro.core.traversal import (
    BOTTOMUP,
    TOPDOWN,
    OutOfCoreSchedule,
    Traversal,
    TraversalError,
    check_in_core,
    check_out_of_core,
    is_postorder,
    is_topological,
    memory_profile,
    peak_memory,
)
from repro.core.tree import Tree

from _helpers import make_random_tree


def two_level_tree():
    # root 0 (f=1, n=0); children 1 (f=2), 2 (f=3); 1 has child 3 (f=4)
    return from_parent_list([None, 0, 0, 1], f=[1, 2, 3, 4], n=[0, 0, 0, 0])


class TestTraversalObject:
    def test_reject_unknown_convention(self):
        with pytest.raises(TraversalError):
            Traversal((0, 1), "sideways")

    def test_reversed_swaps_convention(self):
        t = Traversal((0, 1, 2), TOPDOWN)
        r = t.reversed()
        assert r.convention == BOTTOMUP
        assert r.order == (2, 1, 0)
        assert r.reversed() == t

    def test_as_convention(self):
        t = Traversal((0, 1, 2), TOPDOWN)
        assert t.as_convention(TOPDOWN) is t
        assert t.as_convention(BOTTOMUP).order == (2, 1, 0)
        with pytest.raises(TraversalError):
            t.as_convention("weird")

    def test_position(self):
        t = Traversal((5, 3, 7), TOPDOWN)
        assert t.position() == {5: 0, 3: 1, 7: 2}


class TestTopologicalAndPostorder:
    def test_topdown_topological(self):
        tree = two_level_tree()
        assert is_topological(tree, Traversal((0, 1, 2, 3), TOPDOWN))
        assert is_topological(tree, Traversal((0, 2, 1, 3), TOPDOWN))
        assert not is_topological(tree, Traversal((1, 0, 2, 3), TOPDOWN))

    def test_bottomup_topological(self):
        tree = two_level_tree()
        assert is_topological(tree, Traversal((3, 1, 2, 0), BOTTOMUP))
        assert not is_topological(tree, Traversal((0, 3, 1, 2), BOTTOMUP))

    def test_not_a_permutation(self):
        tree = two_level_tree()
        with pytest.raises(TraversalError):
            is_topological(tree, Traversal((0, 1, 2), TOPDOWN))
        with pytest.raises(TraversalError):
            is_topological(tree, Traversal((0, 1, 2, 2), TOPDOWN))

    def test_postorder_detection(self):
        tree = two_level_tree()
        # 0, then whole subtree of 1, then 2  -> postorder
        assert is_postorder(tree, Traversal((0, 1, 3, 2), TOPDOWN))
        # interleaves subtree of 1 and node 2 -> not a postorder
        assert not is_postorder(tree, Traversal((0, 1, 2, 3), TOPDOWN))


class TestMemoryProfile:
    def test_chain_topdown(self):
        tree = chain_tree(3, f=2.0, n=1.0)
        profile = memory_profile(tree, Traversal((0, 1, 2), TOPDOWN))
        # step 0: resident 2 (root file), peak 2 + 1 + 2 = 5
        assert profile.steps[0].peak_during == pytest.approx(5.0)
        # after the last node nothing remains
        assert profile.steps[-1].resident_after == pytest.approx(0.0)
        assert profile.peak == pytest.approx(5.0)

    def test_chain_bottomup_matches_reverse(self):
        tree = chain_tree(4, f=3.0, n=0.5)
        top = Traversal((0, 1, 2, 3), TOPDOWN)
        assert peak_memory(tree, top) == pytest.approx(peak_memory(tree, top.reversed()))

    def test_star_peak(self):
        tree = star_tree(3, root_f=1.0, leaf_f=2.0)
        top = Traversal((0, 1, 2, 3), TOPDOWN)
        # processing the root needs 1 + 3*2 = 7
        assert peak_memory(tree, top) == pytest.approx(7.0)

    def test_invalid_traversal_raises(self):
        tree = two_level_tree()
        with pytest.raises(TraversalError):
            memory_profile(tree, Traversal((1, 0, 2, 3), TOPDOWN))

    def test_reversal_preserves_peak_random(self, rng):
        for _ in range(50):
            tree = make_random_tree(rng.randint(1, 30), rng)
            order = tuple(tree.topological_order())
            top = Traversal(order, TOPDOWN)
            assert peak_memory(tree, top) == pytest.approx(
                peak_memory(tree, top.reversed())
            )


class TestCheckInCore:
    def test_accepts_at_peak_and_rejects_below(self):
        tree = two_level_tree()
        trav = Traversal((0, 1, 3, 2), TOPDOWN)
        peak = peak_memory(tree, trav)
        assert check_in_core(tree, peak, trav)
        assert not check_in_core(tree, peak - 0.5, trav)

    def test_rejects_precedence_violation(self):
        tree = two_level_tree()
        assert not check_in_core(tree, 1e9, Traversal((1, 0, 2, 3), TOPDOWN))

    def test_rejects_non_permutation(self):
        tree = two_level_tree()
        assert not check_in_core(tree, 1e9, Traversal((0, 1), TOPDOWN))

    def test_bottomup_equivalence(self):
        tree = two_level_tree()
        trav = Traversal((0, 1, 3, 2), TOPDOWN)
        peak = peak_memory(tree, trav)
        assert check_in_core(tree, peak, trav.reversed())

    def test_memory_below_root_file(self):
        tree = chain_tree(2, f=5.0)
        assert not check_in_core(tree, 4.0, Traversal((0, 1), TOPDOWN))

    def test_random_consistency_with_profile(self, rng):
        for _ in range(50):
            tree = make_random_tree(rng.randint(1, 25), rng)
            trav = Traversal(tuple(tree.topological_order()), TOPDOWN)
            peak = peak_memory(tree, trav)
            assert check_in_core(tree, peak, trav)
            assert not check_in_core(tree, peak - 1e-6, trav)


class TestCheckOutOfCore:
    def test_no_evictions_reduces_to_in_core(self):
        tree = two_level_tree()
        trav = Traversal((0, 1, 3, 2), TOPDOWN)
        peak = peak_memory(tree, trav)
        ok, io = check_out_of_core(tree, peak, OutOfCoreSchedule(trav))
        assert ok and io == 0.0
        ok, _ = check_out_of_core(tree, peak - 0.5, OutOfCoreSchedule(trav))
        assert not ok

    def test_eviction_makes_infeasible_feasible(self):
        # star: root f=0, three leaves f=2 each; n=0.  Processing the root
        # needs 6; leaves need 2 each.  With M=6 the in-core traversal works;
        # with an eviction schedule, so does a tighter memory after the root.
        tree = star_tree(3, root_f=0.0, leaf_f=2.0)
        trav = Traversal((0, 1, 2, 3), TOPDOWN)
        # evict leaf 3's file right before executing leaf 1 (step 1)
        schedule = OutOfCoreSchedule(trav, evictions={3: 1})
        ok, io = check_out_of_core(tree, 6.0, schedule)
        assert ok
        assert io == pytest.approx(2.0)

    def test_eviction_before_production_rejected(self):
        tree = two_level_tree()
        trav = Traversal((0, 1, 3, 2), TOPDOWN)
        # node 3's file is produced when 1 executes (step 1); evicting at step 0
        # is invalid
        schedule = OutOfCoreSchedule(trav, evictions={3: 0})
        ok, _ = check_out_of_core(tree, 1e9, schedule)
        assert not ok

    def test_eviction_after_execution_rejected(self):
        tree = two_level_tree()
        trav = Traversal((0, 1, 3, 2), TOPDOWN)
        schedule = OutOfCoreSchedule(trav, evictions={1: 3})
        ok, _ = check_out_of_core(tree, 1e9, schedule)
        assert not ok

    def test_unknown_victim_rejected(self):
        tree = two_level_tree()
        trav = Traversal((0, 1, 3, 2), TOPDOWN)
        ok, _ = check_out_of_core(tree, 1e9, OutOfCoreSchedule(trav, evictions={99: 1}))
        assert not ok

    def test_io_volume_method(self):
        tree = two_level_tree()
        trav = Traversal((0, 1, 3, 2), TOPDOWN)
        sched = OutOfCoreSchedule(trav, evictions={2: 1, 3: 2})
        assert sched.io_volume(tree) == pytest.approx(tree.f(2) + tree.f(3))
