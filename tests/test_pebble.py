"""Unit tests for the pebble-game special cases."""

import pytest

from repro.core.builders import chain_tree, uniform_weights
from repro.core.liu import liu_min_memory
from repro.core.pebble import (
    belady_io_volume,
    sethi_ullman_labels,
    sethi_ullman_number,
    unit_replacement_tree,
)
from repro.core.postorder import best_postorder
from repro.core.minio import run_out_of_core
from repro.core.minmem import min_mem
from repro.generators.synthetic import full_binary_expression_tree


class TestSethiUllman:
    def test_single_node(self):
        t = full_binary_expression_tree(0)
        assert sethi_ullman_number(t) == 1

    def test_balanced_binary_depth(self):
        # a perfect binary tree of depth d needs d + 1 registers
        for depth in range(0, 5):
            t = full_binary_expression_tree(depth)
            assert sethi_ullman_number(t) == depth + 1

    def test_chain(self):
        t = chain_tree(6)
        assert sethi_ullman_number(t) == 1

    def test_unbalanced(self):
        # root with a leaf child and a depth-2 subtree: labels max(1, 3)... hand-check
        from repro.core.tree import Tree

        t = Tree()
        t.add_node("r")
        t.add_node("leaf", parent="r")
        t.add_node("a", parent="r")
        t.add_node("a1", parent="a")
        t.add_node("a2", parent="a")
        labels = sethi_ullman_labels(t)
        assert labels["a"] == 2
        assert labels["leaf"] == 1
        assert labels["r"] == 2  # max(2, 1 + 1)

    def test_matches_pebble_minmemory_on_binary_trees(self):
        """The Sethi--Ullman number equals the optimal memory of the unit
        replacement-model instance (classical pebble game on trees)."""
        for depth in range(0, 5):
            shape = full_binary_expression_tree(depth)
            pebbles = unit_replacement_tree(shape)
            assert liu_min_memory(pebbles) == pytest.approx(sethi_ullman_number(shape))
            # postorder is optimal for the classical pebble game on trees
            assert best_postorder(pebbles).memory == pytest.approx(
                sethi_ullman_number(shape)
            )


class TestBelady:
    def test_no_io_when_memory_sufficient(self):
        shape = full_binary_expression_tree(3)
        t = uniform_weights(shape, f=1.0, n=0.0)
        res = min_mem(t)
        assert belady_io_volume(t, res.memory, res.traversal) == pytest.approx(0.0)

    def test_io_appears_when_memory_tight(self):
        shape = full_binary_expression_tree(3)
        t = uniform_weights(shape, f=1.0, n=0.0)
        res = min_mem(t)
        tight = max(t.max_mem_req(), res.memory - 2)
        io = belady_io_volume(t, tight, res.traversal)
        assert io > 0

    def test_belady_matches_lsnf_for_unit_files(self):
        shape = full_binary_expression_tree(4)
        t = uniform_weights(shape, f=1.0, n=0.0)
        res = min_mem(t)
        for memory in (t.max_mem_req(), t.max_mem_req() + 1, res.memory):
            belady = belady_io_volume(t, memory, res.traversal)
            lsnf = run_out_of_core(t, memory, res.traversal, "lsnf").io_volume
            assert belady == pytest.approx(lsnf)

    def test_rejects_too_small_memory(self):
        t = uniform_weights(full_binary_expression_tree(2), f=1.0, n=0.0)
        with pytest.raises(ValueError):
            belady_io_volume(t, 1.0, min_mem(t).traversal)
