"""Unit tests for tree builders and the model-variant reductions."""

import pytest

from repro.core.builders import (
    chain_tree,
    from_edges,
    from_liu_model,
    from_networkx,
    from_parent_list,
    from_replacement_model,
    star_tree,
    uniform_weights,
)
from repro.core.liu import liu_min_memory
from repro.core.tree import Tree, TreeValidationError


class TestFromParentList:
    def test_basic(self):
        t = from_parent_list([None, 0, 0, 1], f=[1, 2, 3, 4], n=[0, 1, 0, 2])
        assert t.root == 0
        assert t.children(0) == (1, 2)
        assert t.f(3) == 4 and t.n(3) == 2

    def test_minus_one_root(self):
        t = from_parent_list([-1, 0, 1])
        assert t.root == 0
        assert t.children(1) == (2,)

    def test_multiple_roots_rejected(self):
        with pytest.raises(TreeValidationError):
            from_parent_list([None, None, 0])

    def test_cycle_rejected(self):
        with pytest.raises(TreeValidationError):
            from_parent_list([None, 2, 1, 0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(TreeValidationError):
            from_parent_list([None, 0], f=[1.0])

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(TreeValidationError):
            from_parent_list([None, 7])


class TestFromEdgesAndNetworkx:
    def test_from_edges(self):
        t = from_edges([("r", "a"), ("r", "b"), ("a", "c")], root="r", f={"a": 2.0})
        assert t.root == "r"
        assert t.f("a") == 2.0
        assert t.size == 4

    def test_from_edges_disconnected_rejected(self):
        with pytest.raises(TreeValidationError):
            from_edges([("r", "a"), ("x", "y")], root="r")

    def test_networkx_roundtrip(self):
        t = from_parent_list([None, 0, 0, 2], f=[1, 2, 3, 4], n=[5, 6, 7, 8])
        g = t.to_networkx()
        back = from_networkx(g, root=0)
        assert back == t


class TestShapes:
    def test_chain(self):
        t = chain_tree(5, f=2.0, n=1.0)
        assert t.size == 5
        assert t.height() == 4
        assert all(len(t.children(v)) <= 1 for v in t.nodes())

    def test_chain_invalid(self):
        with pytest.raises(TreeValidationError):
            chain_tree(0)

    def test_star(self):
        t = star_tree(4, root_f=1.0, leaf_f=3.0)
        assert t.size == 5
        assert len(t.children(t.root)) == 4
        assert t.mem_req(t.root) == pytest.approx(1.0 + 4 * 3.0)

    def test_uniform_weights(self):
        t = star_tree(3)
        u = uniform_weights(t, f=7.0, n=2.0)
        assert all(u.f(v) == 7.0 and u.n(v) == 2.0 for v in u.nodes())
        # original untouched
        assert t.f(t.root) == 0.0


class TestReplacementModel:
    def test_figure1_weights(self, paper_figure1_tree):
        """The reduction must reproduce the right-hand weights of Figure 1."""
        reduced = from_replacement_model(paper_figure1_tree)
        # leaves keep n = 0 (min(f, 0) = 0)
        for leaf in ("B", "E", "F", "G", "H"):
            assert reduced.n(leaf) == 0.0
        # C: f=2, children files 1+2=3 -> n = -min(2,3) = -2
        assert reduced.n("C") == -2.0
        # D: f=1, children files 2+3=5 -> n = -1
        assert reduced.n("D") == -1.0
        # A: f=1, children files 1+2+1=4 -> n = -1  (figure shows -1 at the root
        # of the transformed tree up to the root file convention)
        assert reduced.n("A") == -1.0

    def test_memreq_equals_replacement_rule(self, paper_figure1_tree):
        reduced = from_replacement_model(paper_figure1_tree)
        for node in reduced.nodes():
            children_sum = sum(
                paper_figure1_tree.f(c) for c in paper_figure1_tree.children(node)
            )
            expected = max(paper_figure1_tree.f(node), children_sum)
            assert reduced.mem_req(node) == pytest.approx(expected)


class TestLiuModel:
    def test_figure2_reduction(self):
        """Check the Figure 2 example: node weights of the merged tree."""
        # Column tree:      x is the root; children b, c; b has children d, e;
        #                    c has children f, g, h (matching Figure 2 shapes).
        parents = [None, 0, 0, 1, 1, 2, 2, 2]
        #          x     b  c  d  e  f  g  h
        n_plus = [1.0, 2.0, 3.0, 5.0, 2.0, 2.0, 2.0, 3.0]
        n_minus = [0.0, 2.0, 1.0, 3.0, 3.0, 5.0, 6.0, 2.0]
        tree = from_liu_model(parents, n_plus, n_minus)
        # f_i = n_minus
        assert [tree.f(i) for i in range(8)] == n_minus
        # x: n = n+ - n- - sum(children n-) = 1 - 0 - (2 + 1) = -2
        assert tree.n(0) == pytest.approx(-2.0)
        # b: 2 - 2 - (3 + 3) = -6
        assert tree.n(1) == pytest.approx(-6.0)
        # c: 3 - 1 - (5 + 6 + 2) = -11
        assert tree.n(2) == pytest.approx(-11.0)
        # leaves: n+ - n-
        assert tree.n(3) == pytest.approx(2.0)
        assert tree.n(5) == pytest.approx(-3.0)

    def test_memreq_matches_liu_peak(self):
        """MemReq of a merged node equals the Liu-model in-processing storage
        (n_{x+}) plus nothing else, for any instance."""
        parents = [None, 0, 0, 1]
        n_plus = [4.0, 6.0, 3.0, 2.0]
        n_minus = [1.0, 2.0, 1.0, 1.5]
        tree = from_liu_model(parents, n_plus, n_minus)
        for i in range(4):
            children = [j for j, p in enumerate(parents) if p == i]
            # f_i + n_i + sum(f_children) = n_minus + (n_plus - n_minus - sum) + sum
            assert tree.mem_req(i) == pytest.approx(n_plus[i])

    def test_length_mismatch(self):
        with pytest.raises(TreeValidationError):
            from_liu_model([None, 0], [1.0], [1.0, 2.0])
