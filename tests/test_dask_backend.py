"""Tests for the optional ``pool="dask"`` backend (CI optional-deps job).

The whole module skips unless ``dask.distributed`` is importable: the
local development image deliberately omits it, and the registry tests in
``tests/test_backends.py`` cover the unavailable path.  Here a real
single-host ``LocalCluster`` exercises the other side: scatter-once
broadcasting, bit-identical parity with the serial reference, the
engine-level lifecycle, and an end-to-end campaign through the bench
planner's work-splitting dispatcher.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

distributed = pytest.importorskip("distributed")

from repro.bench.runner import run_scenarios  # noqa: E402
from repro.bench.scenario import Scenario  # noqa: E402
from repro.core.builders import chain_tree  # noqa: E402
from repro.solvers import solve, solve_many  # noqa: E402
from repro.solvers.engine import (  # noqa: E402
    EngineStoppedError,
    SolveEngine,
    shutdown_engine,
)
from repro.solvers.engine.backends.dask import DaskBackend  # noqa: E402

from _helpers import make_random_tree  # noqa: E402


@pytest.fixture(scope="module")
def dask_client():
    cluster = distributed.LocalCluster(
        n_workers=2, threads_per_worker=1, dashboard_address=None
    )
    client = distributed.Client(cluster)
    yield client
    client.close()
    cluster.close()


@pytest.fixture()
def backend(dask_client):
    backend = DaskBackend(client=dask_client)
    yield backend
    backend.shutdown()


def _cells(kerns, algorithms):
    return [(kern, name, None, {}) for kern in kerns for name in algorithms]


class TestBackendDirect:
    def test_map_cells_bit_identical_to_serial(self, backend):
        rng = random.Random(11)
        kerns = [make_random_tree(18, rng).kernel() for _ in range(2)]
        algorithms = ("postorder", "liu", "minmem")
        cells = _cells(kerns, algorithms)
        reports = backend.map_cells(cells, workers=2)
        expected = [solve(kern, name) for kern, name, _, _ in cells]
        assert reports == expected

    def test_scatter_once_per_kernel(self, backend):
        rng = random.Random(3)
        kerns = [make_random_tree(14, rng).kernel() for _ in range(2)]
        backend.map_cells(_cells(kerns, ("postorder", "minmem")), workers=2)
        assert backend.scatters == 2  # one broadcast per distinct kernel
        first_reuses = backend.reuses
        assert first_reuses >= 2  # the second algorithm reused the scatter
        # a later batch over the same kernels scatters nothing new
        backend.map_cells(_cells(kerns, ("liu",)), workers=2)
        assert backend.scatters == 2
        assert backend.reuses > first_reuses
        snap = backend.snapshot()["cluster"]
        assert snap["alive"] and snap["workers"] == 2
        assert snap["scatters"] == 2

    def test_futures_seam(self, backend):
        kern = chain_tree(8, f=2.0, n=1.0).kernel()
        future = backend.submit_cell((kern, "minmem", None, {}), workers=2)
        assert future.result(timeout=60) == solve(kern, "minmem")
        chunk = backend.submit_chunk(
            [(kern, "minmem", None, {}), (kern, "postorder", None, {})],
            workers=2,
        )
        reports = chunk.result(timeout=60)
        assert [r.algorithm for r in reports] == ["minmem", "postorder"]

    def test_injected_client_survives_shutdown(self, dask_client):
        backend = DaskBackend(client=dask_client)
        kern = chain_tree(6, f=2.0, n=1.0).kernel()
        backend.map_cells([(kern, "minmem", None, {})], workers=2)
        backend.shutdown()  # must NOT close the caller's client
        assert dask_client.scheduler_info()["workers"]

    def test_grow_rate_validation(self):
        with pytest.raises(ValueError, match="timeout_grow_rate"):
            DaskBackend(timeout_grow_rate=1.0)


class TestEngineSeam:
    def test_run_batch_and_snapshot(self, dask_client):
        rng = random.Random(5)
        kerns = [make_random_tree(16, rng).kernel() for _ in range(2)]
        cells = _cells(kerns, ("postorder", "minmem"))
        with SolveEngine(backend=DaskBackend(client=dask_client)) as engine:
            reports = engine.run_batch(cells, workers=2)
            assert reports == [solve(k, name) for k, name, _, _ in cells]
            snap = engine.snapshot()
            assert snap["backend"] == "dask"
            assert snap["cluster"]["scatters"] == 2

    def test_stop_rejects_then_shutdown_rearms(self, dask_client):
        kern = chain_tree(6, f=2.0, n=1.0).kernel()
        cells = [(kern, "minmem", None, {})] * 2
        engine = SolveEngine(backend=DaskBackend(client=dask_client))
        try:
            assert engine.run_batch(cells, workers=2)
            engine.stop()
            with pytest.raises(EngineStoppedError):
                engine.run_batch(cells, workers=2)
            engine.shutdown()
            assert not engine.stopping
            assert engine.run_batch(cells, workers=2)
        finally:
            engine.shutdown()

    def test_solve_many_pool_dask(self, dask_client):
        # route the facade through an injected-client engine so the test
        # controls the cluster's lifetime
        import repro.solvers.engine.dispatch as dispatch

        engine = SolveEngine(backend=DaskBackend(client=dask_client))
        dispatch._default_engines["dask"] = engine
        try:
            rng = random.Random(9)
            kerns = [make_random_tree(15, rng).kernel() for _ in range(2)]
            got = solve_many(kerns, ("postorder", "liu"), workers=2, pool="dask")
            want = solve_many(kerns, ("postorder", "liu"), workers=1)
            assert got == want
        finally:
            dispatch._default_engines.pop("dask", None)
            engine.shutdown()


class TestCampaign:
    def test_bench_campaign_work_splits_on_dask(self):
        # end-to-end through get_engine("dask"): the backend boots its own
        # LocalCluster sized to the worker count
        campaign = [
            Scenario(
                name="dask_smoke",
                family="synthetic",
                builder=lambda seed: [
                    (f"chain-{n}", chain_tree(n, f=2.0, n=1.0))
                    for n in (6, 8, 10, 12)
                ],
                algorithms=("postorder", "liu"),
                budget_fractions=(),
                summary="small grid for the dask campaign seam",
            )
        ]
        try:
            threaded = run_scenarios(
                campaign, seed=2, repeat=1, workers=2, pool="dask"
            )
        finally:
            shutdown_engine()  # closes the engine-owned LocalCluster
        serial = run_scenarios(campaign, seed=2, repeat=1, pool="serial")
        assert threaded.extras["backend"] == "dask"
        assert threaded.extras["work_units"] > 0
        stripped = [
            [replace(r, best_time=0.0, mean_time=0.0) for r in run.records]
            for run in (threaded, serial)
        ]
        assert stripped[0] == stripped[1]
