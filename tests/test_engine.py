"""Tests for the persistent shared-memory batch engine (repro.solvers.engine)."""

import gc
import os

import pytest

from repro.core.builders import chain_tree, star_tree
from repro.core.kernel import TreeKernel
from repro.core.traversal import BOTTOMUP, Traversal
from repro.generators.random_trees import random_attachment_tree, random_caterpillar
from repro.solvers import (
    SolveReport,
    get_engine,
    list_solvers,
    register_solver,
    shutdown_engine,
    solve_many,
)
from repro.solvers.engine import SolveEngine, TreeArena, resolve
from repro.solvers.engine.dispatch import _compute_chunksize
from repro.solvers.engine.pool import PersistentPool
from repro.solvers.facade import _solve_task


# anonymous module-level lambda: pickling fails with a genuine PicklingError
# (attribute lookup "<lambda>" fails), unlike a function-local object whose
# failure surfaces as AttributeError
_UNPICKLABLE = lambda: None  # noqa: E731


def _sample_trees():
    return [
        random_attachment_tree(90, seed=11),
        chain_tree(40, f=2.0, n=1.0),
        random_caterpillar(25, seed=3, max_leaves=3),
        star_tree(30, leaf_f=3.0, n=1.0),
    ]


@pytest.fixture(autouse=True)
def _engine_teardown():
    # every test leaves the process-wide engine shut down, so no state
    # (workers, segments, tokens) leaks across tests
    yield
    shutdown_engine()


class TestEquivalence:
    """serial vs fresh pool vs persistent engine: bit-identical reports."""

    @pytest.mark.parametrize("algorithm", list_solvers())
    def test_every_algorithm_matches_serial(self, algorithm):
        trees = _sample_trees()
        memory = max(t.max_mem_req() for t in trees) * 1.25
        serial = solve_many(trees, algorithm, memory=memory, workers=None)
        engine = solve_many(trees, algorithm, memory=memory, workers=2)
        assert serial == engine

    def test_pool_modes_identical_multi_algorithm(self):
        trees = _sample_trees()
        algorithms = ("postorder", "liu", "minmem")
        serial = solve_many(trees, algorithms, workers=2, pool="serial")
        fresh = solve_many(trees, algorithms, workers=2, pool="fresh")
        persistent = solve_many(trees, algorithms, workers=2, pool="persistent")
        assert serial == fresh == persistent

    def test_shared_arena_vs_blob_transport(self):
        trees = _sample_trees()
        cells = [(t, "minmem", None, {}) for t in trees]
        serial = [_solve_task(c) for c in cells]
        shm_engine = SolveEngine(use_shared_memory=True)
        blob_engine = SolveEngine(use_shared_memory=False)
        try:
            via_shm = shm_engine.run_batch(cells, workers=2)
            via_blob = blob_engine.run_batch(cells, workers=2)
        finally:
            shm_engine.shutdown()
            blob_engine.shutdown()
        if via_shm is None or via_blob is None:
            pytest.skip("platform cannot spawn worker processes")
        assert via_shm == serial
        assert via_blob == serial

    def test_invalid_pool_mode_rejected(self):
        with pytest.raises(ValueError, match="pool mode"):
            solve_many([chain_tree(3)], "minmem", pool="bogus")


class TestPersistence:
    def test_pool_reused_across_solve_many_calls(self):
        trees = _sample_trees()
        solve_many(trees, "minmem", workers=2)
        engine = get_engine()
        executor = engine.pool.executor
        if executor is None:
            pytest.skip("platform cannot spawn worker processes")
        solve_many(trees, "postorder", workers=2)
        assert get_engine() is engine
        assert engine.pool.executor is executor

    def test_arena_export_idempotent_per_kernel(self):
        tree = random_attachment_tree(60, seed=5)
        arena = TreeArena()
        try:
            ref_a = arena.export(tree)
            ref_b = arena.export(tree)
            assert ref_a is ref_b
            # a rebuilt kernel (mutation) gets a new token
            tree.set_f(tree.root, 1.0)
            assert arena.export(tree).token != ref_a.token
        finally:
            arena.close()

    def test_pool_grows_but_never_shrinks(self):
        pool = PersistentPool()
        try:
            two = pool.ensure(2)
            if two is None:
                pytest.skip("platform cannot spawn worker processes")
            assert pool.ensure(1) is two  # smaller request reuses
            four = pool.ensure(4)
            assert four is not two
            assert pool.workers == 4
        finally:
            pool.shutdown()

    def test_shutdown_then_reuse(self):
        trees = _sample_trees()[:2]
        first = solve_many(trees, "minmem", workers=2)
        shutdown_engine()
        second = solve_many(trees, "minmem", workers=2)
        assert first == second


class TestArenaTransport:
    def test_shm_roundtrip_in_process(self):
        tree = random_attachment_tree(120, seed=2)
        kern = tree.kernel()
        arena = TreeArena(use_shared_memory=True)
        try:
            ref = arena.export(kern)
            assert ref.kind == "shm"
            clone = resolve(ref)
            assert clone.parent == kern.parent
            assert clone.f == kern.f
            assert clone.n == kern.n
            assert clone.ids == kern.ids
            assert clone.mem_req == kern.mem_req
            assert clone.child_idx == kern.child_idx
        finally:
            arena.close()

    def test_nontrivial_ids_survive_transport(self):
        from repro.core.tree import Tree

        tree = Tree()
        tree.add_node("root", f=1.0, n=0.5)
        tree.add_node(("leaf", 1), parent="root", f=2.0, n=0.25)
        tree.add_node("other", parent="root", f=3.0, n=0.75)
        arena = TreeArena(use_shared_memory=True)
        try:
            ref = arena.export(tree)
            assert ref.ids_bytes > 0
            clone = resolve(ref)
            assert clone.ids == tree.kernel().ids
        finally:
            arena.close()

    def test_segments_cleaned_on_shutdown(self):
        from multiprocessing import shared_memory

        engine = SolveEngine(use_shared_memory=True)
        trees = _sample_trees()
        result = engine.run_batch([(t, "postorder", None, {}) for t in trees], 2)
        names = engine.arena.live_segments
        if result is None or not names:
            engine.shutdown()
            pytest.skip("shared-memory transport unavailable")
        engine.shutdown()
        assert engine.arena.live_segments == ()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_segment_released_when_tree_collected(self):
        arena = TreeArena(use_shared_memory=True)
        try:
            tree = random_attachment_tree(40, seed=1)
            ref = arena.export(tree)
            if ref.kind != "shm":
                pytest.skip("shared-memory transport unavailable")
            assert len(arena.live_segments) == 1
            del tree
            gc.collect()
            assert arena.live_segments == ()
        finally:
            arena.close()

    def test_blob_transport_when_shared_memory_unavailable(self, monkeypatch):
        import multiprocessing.shared_memory as shm_module

        def _broken(*args, **kwargs):
            raise OSError("shared memory disabled for this test")

        monkeypatch.setattr(shm_module, "SharedMemory", _broken)
        arena = TreeArena()  # probe mode: must fall back to blobs
        try:
            tree = random_attachment_tree(30, seed=8)
            ref = arena.export(tree)
            assert ref.kind == "blob"
            assert ref.blob  # the pickled flat arrays ride in the ref
            clone = resolve(ref)
            assert clone.parent == tree.kernel().parent
            # the probe failure is remembered: no second attempt
            ref2 = arena.export(chain_tree(5))
            assert ref2.kind == "blob"
        finally:
            arena.close()

    def test_forced_shm_unavailable_raises(self, monkeypatch):
        import multiprocessing.shared_memory as shm_module

        monkeypatch.setattr(
            shm_module, "SharedMemory", lambda *a, **k: (_ for _ in ()).throw(OSError())
        )
        arena = TreeArena(use_shared_memory=True)
        try:
            with pytest.raises(OSError, match="unavailable"):
                arena.export(chain_tree(4))
        finally:
            arena.close()


class TestFallbacks:
    def test_fresh_pool_warns_on_unpicklable_options(self):
        trees = _sample_trees()[:2]
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            batches = solve_many(
                trees,
                "minmem",
                workers=2,
                pool="fresh",
                probe=_UNPICKLABLE,  # -> PicklingError in the pool
            )
        # the serial fallback still produced correct reports (the unknown
        # option is dropped by lenient dispatch)
        serial = solve_many(trees, "minmem", workers=None)
        assert batches == serial

    def test_engine_warns_on_unpicklable_options(self):
        trees = _sample_trees()[:2]
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            batches = solve_many(
                trees, "minmem", workers=2, pool="persistent", probe=_UNPICKLABLE
            )
        assert batches == solve_many(trees, "minmem", workers=None)

    def test_unavailable_platform_warns_once_per_engine(self, monkeypatch):
        engine = SolveEngine()
        monkeypatch.setattr(engine.pool, "ensure", lambda workers: None)
        cells = [(chain_tree(4), "minmem", None, {})] * 2
        try:
            with pytest.warns(RuntimeWarning, match="cannot spawn worker"):
                assert engine.run_batch(cells, 2) is None
            # second batch: remembered, no warning spam
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                assert engine.run_batch(cells, 2) is None
        finally:
            engine.shutdown()

    def test_pool_growth_does_not_cancel_inflight_batches(self):
        # growing the shared pool must let the old executor drain: a batch
        # mid-map on it would otherwise die with CancelledError
        pool = PersistentPool()
        try:
            two = pool.ensure(2)
            if two is None:
                pytest.skip("platform cannot spawn worker processes")
            import time as _time

            futures = [two.submit(_time.sleep, 0.05) for _ in range(4)]
            four = pool.ensure(4)
            assert four is not two
            for future in futures:
                future.result(timeout=10)  # raises if cancelled
        finally:
            pool.shutdown()

    def test_worker_crash_recovers_and_cleans_up(self):
        # a solver that kills the process when run in a worker (but not in
        # the main process, so the serial fallback can finish the batch)
        from repro.solvers import registry

        @register_solver("crash_probe", family="test", summary="worker killer")
        def _crash_probe(tree, *, main_pid=None, **_ignored):
            if main_pid is not None and os.getpid() != int(main_pid):
                os._exit(13)
            root = tree.ids[0] if isinstance(tree, TreeKernel) else tree.root
            return SolveReport(
                algorithm="crash_probe",
                peak_memory=0.0,
                traversal=Traversal((root,), BOTTOMUP),
            )

        try:
            engine = SolveEngine()
            trees = _sample_trees()[:2]
            cells = [
                (t, "crash_probe", None, {"main_pid": os.getpid()}) for t in trees
            ]
            if engine.pool.ensure(2) is None:
                pytest.skip("platform cannot spawn worker processes")
            with pytest.warns(RuntimeWarning, match="worker pool broke"):
                result = engine.run_batch(cells, workers=2)
            assert result is None  # caller is expected to run serially
            # the engine recovered: a fresh pool serves the next batch
            healthy = engine.run_batch([(trees[0], "minmem", None, {})], 2)
            assert healthy is not None
            assert healthy == [_solve_task((trees[0], "minmem", None, {}))]
            # segments owned by the arena survive the crash and are
            # released by shutdown
            names = engine.arena.live_segments
            engine.shutdown()
            assert engine.arena.live_segments == ()
            if names:
                from multiprocessing import shared_memory

                for name in names:
                    with pytest.raises(FileNotFoundError):
                        shared_memory.SharedMemory(name=name)
        finally:
            # deregister the probe so registry-wide tests stay unaffected
            spec = registry._REGISTRY.pop("crash_probe", None)
            if spec is not None:
                for key in (spec.name, *spec.aliases):
                    registry._LOOKUP.pop(key, None)


class TestChunking:
    def test_chunksize_bounds(self):
        assert _compute_chunksize(1, 4) == 1
        assert _compute_chunksize(10, 4) == 1
        assert _compute_chunksize(640, 4) == 40
        assert _compute_chunksize(100_000, 4) == 64  # capped


class TestLifecycle:
    """Context-manager support, the stop flag and idempotent shutdown."""

    def test_context_manager_shuts_down(self):
        with SolveEngine() as engine:
            tree = chain_tree(12, f=2.0, n=1.0)
            if engine.pool.ensure(2) is not None:
                batch = engine.run_batch([(tree, "minmem", None, {})], 2)
                assert batch == [_solve_task((tree, "minmem", None, {}))]
        assert engine.pool.executor is None
        assert engine.arena.live_segments == ()

    def test_stop_flag_rejects_new_work_until_shutdown(self):
        from repro.solvers.engine import EngineStoppedError

        engine = SolveEngine()
        try:
            tree = chain_tree(8)
            engine.stop()
            assert engine.stopping
            with pytest.raises(EngineStoppedError, match="stopping"):
                engine.run_batch([(tree, "minmem", None, {})], 2)
            with pytest.raises(EngineStoppedError, match="stopping"):
                engine.submit((tree, "minmem", None, {}), 2)
            # shutdown completes the drain and clears the flag: the engine
            # accepts work again on a fresh pool
            engine.shutdown()
            assert not engine.stopping
            result = engine.run_batch([(tree, "minmem", None, {})], 2)
            if result is not None:  # platform-dependent; None = serial
                assert result == [_solve_task((tree, "minmem", None, {}))]
        finally:
            engine.shutdown()

    def test_shutdown_is_idempotent(self):
        engine = SolveEngine()
        engine.pool.ensure(2)
        engine.shutdown()
        engine.shutdown()  # second shutdown: no error, still clean
        assert engine.pool.executor is None
        # the process-wide default engine behaves the same
        get_engine()
        shutdown_engine()
        shutdown_engine()

    def test_submit_future_matches_serial(self):
        engine = SolveEngine()
        try:
            if engine.pool.ensure(2) is None:
                pytest.skip("platform cannot spawn worker processes")
            tree = random_attachment_tree(60, seed=5)
            cell = (tree, "minmem", None, {})
            future = engine.submit(cell, 2)
            assert future is not None
            assert future.result(timeout=60) == _solve_task(cell)
            # same tree, second submission: the arena ships nothing new
            exported = engine.arena.live_segments
            future2 = engine.submit((tree, "liu", None, {}), 2)
            assert future2.result(timeout=60) == _solve_task((tree, "liu", None, {}))
            assert engine.arena.live_segments == exported
        finally:
            engine.shutdown()


class TestEngineObservability:
    def test_counters_and_snapshot_after_batches(self):
        trees = [chain_tree(6, f=2.0, n=1.0), star_tree(5, n=1.0)]
        cells = [(tree, "minmem", None, {}) for tree in trees]
        engine = SolveEngine()
        try:
            first = engine.run_batch(cells, workers=2)
            second = engine.run_batch(cells, workers=2)
            snap = engine.snapshot()
            assert snap["batches"] == 2
            assert snap["cells"] == 4
            if first is not None:  # pool available on this platform
                assert second is not None
                pool = snap["pool"]
                assert pool["alive"] and pool["creations"] == 1
                arena = snap["arena"]
                # scatter-once: 2 distinct trees exported once, reused once
                assert arena["exports"] == 2
                assert arena["reuses"] == 2
                assert arena["shm_exports"] + arena["blob_exports"] == 2
            else:
                assert snap["serial_fallbacks"] >= 2
        finally:
            engine.shutdown()

    def test_submit_counts_and_fork_safe_counters(self):
        engine = SolveEngine()
        # the caller must keep the tree alive until the worker attaches:
        # segment lifetime is tied to the kernel (weakref.finalize)
        tree = chain_tree(4, f=1.0, n=1.0)
        try:
            future = engine.submit((tree, "minmem", None, {}), workers=2)
            snap = engine.snapshot()
            assert snap["submits"] == 1
            if future is not None:
                future.result(timeout=60)
        finally:
            engine.shutdown()

    def test_pool_snapshot_shape(self):
        pool = PersistentPool()
        snap = pool.snapshot()
        assert snap == {
            "workers": 0, "alive": False, "unavailable": False,
            "creations": 0, "grows": 0, "resets": 0, "kind": "process",
        }
        executor = pool.ensure(2)
        try:
            if executor is not None:
                snap = pool.snapshot()
                assert snap["alive"] and snap["workers"] == 2
                assert snap["creations"] == 1
                pool.ensure(4)  # grow
                assert pool.snapshot()["grows"] == 1
        finally:
            pool.shutdown()

    def test_reset_counts_only_live_pools(self):
        pool = PersistentPool()
        pool.reset()  # nothing live: not a reset event
        assert pool.snapshot()["resets"] == 0
        if pool.ensure(1) is not None:
            pool.reset()
            assert pool.snapshot()["resets"] == 1
        pool.shutdown()

    def test_worker_cache_stats_probe(self):
        from repro.solvers.engine.arena import worker_cache_stats

        stats = worker_cache_stats()  # also callable in-process
        assert set(stats) == {"pid", "resident", "hits", "misses", "hit_rate"}
        assert stats["pid"] == os.getpid()

        engine = SolveEngine()
        try:
            cells = [(chain_tree(5, f=1.0, n=1.0), "minmem", None, {})] * 4
            if engine.run_batch(cells, workers=2) is not None:
                samples = engine.sample_worker_caches(timeout=30.0)
                assert samples, "live pool must answer the probe"
                for sample in samples:
                    assert sample["hits"] + sample["misses"] >= 0
                    assert 0.0 <= sample["hit_rate"] <= 1.0
            else:
                assert engine.sample_worker_caches() == []
        finally:
            engine.shutdown()
