"""Unit tests for the Dolan--Moré performance profiles."""

import math

import pytest

from repro.analysis.performance_profiles import (
    ascii_profile,
    format_profile_table,
    performance_profile,
)


class TestPerformanceProfile:
    def test_simple_two_methods(self):
        results = {"a": [1.0, 2.0, 4.0], "b": [2.0, 2.0, 2.0]}
        profile = performance_profile(results)
        # 'a' is best on instances 0 and 2... wait: best values are 1, 2, 2
        # ratios a: [1, 1, 2]; b: [2, 1, 1]
        assert profile.value("a", 1.0) == pytest.approx(2 / 3)
        assert profile.value("b", 1.0) == pytest.approx(2 / 3)
        assert profile.value("a", 2.0) == pytest.approx(1.0)
        assert profile.value("b", 2.0) == pytest.approx(1.0)
        assert profile.fraction_best("a") == pytest.approx(2 / 3)

    def test_ratios_stored(self):
        profile = performance_profile({"x": [3.0], "y": [1.5]})
        assert profile.ratios["x"] == (2.0,)
        assert profile.ratios["y"] == (1.0,)

    def test_zero_best_convention(self):
        profile = performance_profile({"x": [0.0, 0.0], "y": [0.0, 3.0]})
        assert profile.value("x", 1.0) == 1.0
        assert profile.value("y", 1.0) == 0.5
        assert math.isinf(profile.ratios["y"][1])

    def test_failures_are_infinite(self):
        profile = performance_profile({"x": [math.inf, 1.0], "y": [1.0, 1.0]})
        assert profile.value("x", 1e9) == 0.5

    def test_custom_taus(self):
        profile = performance_profile({"a": [1.0, 3.0], "b": [1.0, 1.0]}, taus=[1.0, 2.0, 3.0])
        assert profile.taus == (1.0, 2.0, 3.0)
        assert profile.curves["a"] == (0.5, 0.5, 1.0)
        assert profile.curves["b"] == (1.0, 1.0, 1.0)

    def test_area_orders_methods(self):
        profile = performance_profile({"good": [1.0, 1.0, 1.0], "bad": [5.0, 5.0, 5.0]})
        assert profile.area("good") > profile.area("bad")

    def test_monotone_curves(self):
        profile = performance_profile({"a": [1.0, 4.0, 2.0, 8.0], "b": [2.0, 1.0, 1.0, 9.0]})
        for method in profile.methods:
            curve = profile.curves[method]
            assert all(x <= y + 1e-12 for x, y in zip(curve, curve[1:]))

    def test_errors(self):
        with pytest.raises(ValueError):
            performance_profile({})
        with pytest.raises(ValueError):
            performance_profile({"a": [1.0], "b": [1.0, 2.0]})
        with pytest.raises(ValueError):
            performance_profile({"a": []})


class TestRendering:
    def test_format_table_contains_methods(self):
        profile = performance_profile({"alpha": [1.0, 2.0], "beta": [2.0, 1.0]})
        table = format_profile_table(profile)
        assert "alpha" in table and "beta" in table
        assert "tau=1" in table

    def test_ascii_profile(self):
        profile = performance_profile({"m1": [1.0, 2.0], "m2": [2.0, 1.0]})
        art = ascii_profile(profile, width=30, height=6)
        assert "m1" in art and "m2" in art
        assert "tau:" in art
