"""Unit tests for the harpoon constructions (Theorems 1 and 2)."""

import math

import pytest

from repro.core.bruteforce import optimal_min_io
from repro.core.liu import liu_min_memory
from repro.core.minio import run_out_of_core
from repro.core.minmem import min_mem
from repro.core.postorder import best_postorder
from repro.generators.harpoon import (
    harpoon_tree,
    iterated_harpoon_tree,
    optimal_memory_bound,
    postorder_memory_bound,
    postorder_vs_optimal_ratio_bound,
    two_partition_harpoon,
)


class TestTheorem1:
    @pytest.mark.parametrize("branches", [2, 3, 5])
    def test_single_level_bounds(self, branches):
        t = harpoon_tree(branches, memory=1.0, epsilon=0.01)
        assert best_postorder(t).memory == pytest.approx(
            postorder_memory_bound(branches, 1, 1.0, 0.01)
        )
        assert liu_min_memory(t) == pytest.approx(
            optimal_memory_bound(branches, 1, 1.0, 0.01)
        )

    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_iterated_bounds(self, levels):
        branches = 3
        t = iterated_harpoon_tree(branches, levels, memory=1.0, epsilon=0.01)
        assert best_postorder(t).memory == pytest.approx(
            postorder_memory_bound(branches, levels, 1.0, 0.01)
        )
        assert min_mem(t).memory == pytest.approx(
            optimal_memory_bound(branches, levels, 1.0, 0.01)
        )

    def test_ratio_grows_without_bound(self):
        ratios = [
            postorder_vs_optimal_ratio_bound(4, level, 1.0, 0.001) for level in (1, 4, 16, 64)
        ]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > 10.0

    def test_node_count(self):
        # 1 + 3 * b * (b^L - 1) / (b - 1) nodes
        for b, levels in ((2, 3), (3, 2)):
            t = iterated_harpoon_tree(b, levels)
            expected = 1 + 3 * b * (b**levels - 1) // (b - 1)
            assert t.size == expected

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            iterated_harpoon_tree(0, 1)
        with pytest.raises(ValueError):
            iterated_harpoon_tree(2, 0)


class TestTheorem2:
    def test_structure(self):
        t = two_partition_harpoon([1, 2, 3])
        assert t.size == 2 * 3 + 3
        # MemReq(T_in) = sum(a_i) + f(T_big) = S + S = 2S
        assert t.mem_req("T_in") == pytest.approx(2 * 6)
        assert t.f("T_big") == pytest.approx(6.0)
        assert t.f("T_out_big") == pytest.approx(3.0)

    def test_yes_instance_reaches_io_bound(self):
        """A solvable 2-Partition instance admits I/O exactly S/2."""
        values = [1, 1, 2, 2]  # S = 6, partition {1,2} / {1,2}
        total = sum(values)
        t = two_partition_harpoon(values)
        memory = 2 * total
        opt_io = optimal_min_io(t, memory)
        assert opt_io == pytest.approx(total / 2)

    def test_no_instance_needs_more_io(self):
        """An unsolvable 2-Partition instance needs strictly more than S/2."""
        values = [1, 1, 1]  # S = 3, odd -> no perfect partition
        total = sum(values)
        t = two_partition_harpoon(values)
        opt_io = optimal_min_io(t, 2 * total)
        assert opt_io > total / 2 + 1e-9

    def test_heuristics_upper_bound_optimum(self):
        values = [2, 3, 5, 4]
        total = sum(values)
        t = two_partition_harpoon(values)
        memory = 2 * total
        opt_io = optimal_min_io(t, memory)
        trav = min_mem(t).traversal
        for heuristic in ("first_fit", "best_fit", "lsnf", "best_k_combination"):
            io = run_out_of_core(t, memory, trav, heuristic).io_volume
            assert io >= opt_io - 1e-9

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            two_partition_harpoon([])

    def test_memreq_is_2s(self):
        values = [3, 5, 2]
        t = two_partition_harpoon(values)
        total = sum(values)
        # the root requirement is sum(a_i) + S/2 + ... = 2S + S/2?  Check the
        # paper's claim that M = 2S equals the largest requirement instead:
        # leaves T_out_i need f = S plus parent's files already accounted when
        # executed; their MemReq is S.  The root's requirement dominates.
        assert t.max_mem_req() == t.mem_req("T_in")
