"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.tree import Tree


def make_random_tree(
    n_nodes: int,
    rng: random.Random,
    *,
    max_f: int = 10,
    max_n: int = 5,
    min_f: int = 0,
    window: int | None = None,
) -> Tree:
    """Random tree used across many tests (uniform or windowed attachment)."""
    tree = Tree()
    tree.add_node(0, f=rng.randint(min_f, max_f), n=rng.randint(0, max_n))
    for i in range(1, n_nodes):
        low = 0 if window is None else max(0, i - window)
        parent = rng.randint(low, i - 1)
        tree.add_node(
            i,
            parent=parent,
            f=rng.randint(max(min_f, 1), max_f),
            n=rng.randint(0, max_n),
        )
    return tree


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20110527)


@pytest.fixture
def paper_figure1_tree() -> Tree:
    """The replacement-model example of Figure 1 (left-hand side weights).

    Root A (f=1) with children B, C, D (f = 1, 2, 1); C has children E (f=1),
    F (f=2); D has children G (f=2), H (f=3).  Execution files are zero in
    the replacement model.
    """
    tree = Tree()
    tree.add_node("A", f=1.0, n=0.0)
    tree.add_node("B", parent="A", f=1.0, n=0.0)
    tree.add_node("C", parent="A", f=2.0, n=0.0)
    tree.add_node("D", parent="A", f=1.0, n=0.0)
    tree.add_node("E", parent="C", f=1.0, n=0.0)
    tree.add_node("F", parent="C", f=2.0, n=0.0)
    tree.add_node("G", parent="D", f=2.0, n=0.0)
    tree.add_node("H", parent="D", f=3.0, n=0.0)
    return tree


@pytest.fixture
def small_assembly_like_tree() -> Tree:
    """A small tree with assembly-tree-like weights (f = cb, n = front - cb)."""
    tree = Tree()
    tree.add_node(0, f=0.0, n=25.0)        # root supernode, 5x5 front, no cb
    tree.add_node(1, parent=0, f=9.0, n=16.0)
    tree.add_node(2, parent=0, f=4.0, n=12.0)
    tree.add_node(3, parent=1, f=4.0, n=5.0)
    tree.add_node(4, parent=1, f=1.0, n=3.0)
    tree.add_node(5, parent=2, f=1.0, n=3.0)
    tree.add_node(6, parent=3, f=1.0, n=1.0)
    return tree
