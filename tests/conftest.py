"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.tree import Tree

# re-exported so legacy `from conftest import make_random_tree` style imports
# keep working; the canonical home is tests/_helpers.py
from _helpers import make_random_tree  # noqa: F401


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20110527)


@pytest.fixture
def paper_figure1_tree() -> Tree:
    """The replacement-model example of Figure 1 (left-hand side weights).

    Root A (f=1) with children B, C, D (f = 1, 2, 1); C has children E (f=1),
    F (f=2); D has children G (f=2), H (f=3).  Execution files are zero in
    the replacement model.
    """
    tree = Tree()
    tree.add_node("A", f=1.0, n=0.0)
    tree.add_node("B", parent="A", f=1.0, n=0.0)
    tree.add_node("C", parent="A", f=2.0, n=0.0)
    tree.add_node("D", parent="A", f=1.0, n=0.0)
    tree.add_node("E", parent="C", f=1.0, n=0.0)
    tree.add_node("F", parent="C", f=2.0, n=0.0)
    tree.add_node("G", parent="D", f=2.0, n=0.0)
    tree.add_node("H", parent="D", f=3.0, n=0.0)
    return tree


@pytest.fixture
def small_assembly_like_tree() -> Tree:
    """A small tree with assembly-tree-like weights (f = cb, n = front - cb)."""
    tree = Tree()
    tree.add_node(0, f=0.0, n=25.0)        # root supernode, 5x5 front, no cb
    tree.add_node(1, parent=0, f=9.0, n=16.0)
    tree.add_node(2, parent=0, f=4.0, n=12.0)
    tree.add_node(3, parent=1, f=4.0, n=5.0)
    tree.add_node(4, parent=1, f=1.0, n=3.0)
    tree.add_node(5, parent=2, f=1.0, n=3.0)
    tree.add_node(6, parent=3, f=1.0, n=1.0)
    return tree
