"""Unit tests for supernode amalgamation and its weights."""

import numpy as np
import pytest

from repro.sparse.amalgamation import amalgamate
from repro.sparse.etree import elimination_tree
from repro.sparse.matrices import banded_spd, grid_laplacian_2d
from repro.sparse.symbolic import column_counts


def chain_instance(n=6):
    """Elimination chain 0 -> 1 -> ... -> n-1 with counts n, n-1, ..., 1."""
    parent = np.array([i + 1 for i in range(n - 1)] + [-1], dtype=np.int64)
    counts = np.arange(n, 0, -1, dtype=np.int64)
    return parent, counts


class TestPerfectAmalgamation:
    def test_chain_collapses_to_one_supernode(self):
        parent, counts = chain_instance(6)
        result = amalgamate(parent, counts, relaxed=0)
        assert result.size == 1
        sn = result.supernodes[0]
        assert sn.eta == 6
        assert sn.mu == 1  # count of the topmost column
        assert sn.members == tuple(range(6))

    def test_no_perfect_when_counts_do_not_shrink(self):
        parent = np.array([1, -1], dtype=np.int64)
        counts = np.array([2, 2], dtype=np.int64)  # parent count != child - 1
        result = amalgamate(parent, counts, relaxed=0)
        assert result.size == 2

    def test_no_perfect_when_two_children(self):
        parent = np.array([2, 2, -1], dtype=np.int64)
        counts = np.array([3, 3, 2], dtype=np.int64)
        result = amalgamate(parent, counts, relaxed=0)
        assert result.size == 3

    def test_disable_perfect(self):
        parent, counts = chain_instance(5)
        result = amalgamate(parent, counts, relaxed=0, perfect=False)
        assert result.size == 5


class TestRelaxedAmalgamation:
    def test_budget_merges_children(self):
        parent = np.array([2, 2, -1], dtype=np.int64)
        counts = np.array([3, 2, 2], dtype=np.int64)
        none = amalgamate(parent, counts, relaxed=0)
        one = amalgamate(parent, counts, relaxed=1)
        two = amalgamate(parent, counts, relaxed=2)
        assert none.size == 3
        assert one.size == 2
        assert two.size == 1

    def test_densest_child_absorbed_first(self):
        parent = np.array([3, 3, 3, -1], dtype=np.int64)
        counts = np.array([2, 5, 3, 1], dtype=np.int64)
        result = amalgamate(parent, counts, relaxed=1, perfect=False)
        # the root supernode must contain column 1 (the densest child)
        root_sn = [sn for sn in result.supernodes if 3 in sn.members][0]
        assert 1 in root_sn.members
        assert 0 not in root_sn.members

    def test_monotone_in_budget(self):
        a = grid_laplacian_2d(8)
        parent = elimination_tree(a)
        counts = column_counts(a, parent)
        sizes = [amalgamate(parent, counts, relaxed=r).size for r in (0, 1, 2, 4, 16)]
        assert all(x >= y for x, y in zip(sizes, sizes[1:]))


class TestWeightsAndStructure:
    def test_paper_weight_formulas(self):
        a = banded_spd(40, 3, seed=0)
        parent = elimination_tree(a)
        counts = column_counts(a, parent)
        result = amalgamate(parent, counts, relaxed=2)
        for sn in result.supernodes:
            assert sn.node_weight == pytest.approx(sn.eta**2 + 2 * sn.eta * (sn.mu - 1))
            assert sn.edge_weight == pytest.approx((sn.mu - 1) ** 2)
            assert sn.front_order == sn.eta + sn.mu - 1
            assert sn.representative == max(sn.members)
            assert sn.mu == counts[sn.representative]

    def test_members_partition_columns(self):
        a = grid_laplacian_2d(7)
        parent = elimination_tree(a)
        counts = column_counts(a, parent)
        result = amalgamate(parent, counts, relaxed=4)
        seen = sorted(m for sn in result.supernodes for m in sn.members)
        assert seen == list(range(a.shape[0]))
        for sn in result.supernodes:
            for m in sn.members:
                assert result.column_to_supernode[m] == sn.index

    def test_quotient_tree_is_consistent(self):
        a = grid_laplacian_2d(7)
        parent = elimination_tree(a)
        counts = column_counts(a, parent)
        result = amalgamate(parent, counts, relaxed=1)
        children = result.children()
        for s, p in enumerate(result.parent):
            if p >= 0:
                assert s in children[p]
                # the parent supernode contains the etree parent of s's top column
                top = max(result.supernodes[s].members)
                assert parent[top] in result.supernodes[p].members

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            amalgamate([1, -1], [1], relaxed=0)
