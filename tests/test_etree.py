"""Unit tests for the elimination tree construction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.tree import Tree
from repro.sparse.etree import (
    elimination_tree,
    etree_children,
    etree_heights,
    etree_postorder,
    etree_to_task_tree,
)
from repro.sparse.matrices import banded_spd, grid_laplacian_2d, random_spd


def reference_etree(matrix):
    """Parent array from the dense Cholesky pattern (ground truth)."""
    dense = sp.csc_matrix(matrix).toarray()
    n = dense.shape[0]
    l = np.linalg.cholesky(dense + np.eye(n) * 1e-9)
    pattern = np.abs(l) > 1e-10
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        below = np.nonzero(pattern[:, j])[0]
        below = below[below > j]
        if below.size:
            parent[j] = below.min()
    return parent


class TestEliminationTree:
    @pytest.mark.parametrize(
        "matrix",
        [grid_laplacian_2d(5), banded_spd(30, 3, seed=2), random_spd(40, 0.08, seed=9)],
        ids=["grid", "banded", "random"],
    )
    def test_matches_dense_reference(self, matrix):
        assert np.array_equal(elimination_tree(matrix), reference_etree(matrix))

    def test_parent_always_larger(self):
        parent = elimination_tree(grid_laplacian_2d(8))
        for j, p in enumerate(parent):
            assert p == -1 or p > j

    def test_chain_for_tridiagonal(self):
        n = 12
        a = sp.diags([np.ones(n - 1), 4 * np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        parent = elimination_tree(sp.csc_matrix(a))
        assert np.array_equal(parent[:-1], np.arange(1, n))
        assert parent[-1] == -1

    def test_diagonal_matrix_forest(self):
        a = sp.identity(5, format="csc")
        parent = elimination_tree(a)
        assert np.all(parent == -1)


class TestHelpers:
    def test_children_inverse_of_parent(self):
        parent = elimination_tree(grid_laplacian_2d(6))
        children = etree_children(parent)
        for v, p in enumerate(parent):
            if p >= 0:
                assert v in children[p]

    def test_postorder_is_valid(self):
        parent = elimination_tree(grid_laplacian_2d(6))
        order = etree_postorder(parent)
        assert sorted(order.tolist()) == list(range(len(parent)))
        pos = np.empty(len(parent), dtype=int)
        pos[order] = np.arange(len(parent))
        for v, p in enumerate(parent):
            if p >= 0:
                assert pos[v] < pos[p]

    def test_heights(self):
        n = 6
        a = sp.diags([np.ones(n - 1), 4 * np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        parent = elimination_tree(sp.csc_matrix(a))
        heights = etree_heights(parent)
        assert heights[-1] == n - 1
        assert heights[0] == 0

    def test_to_task_tree_single_root(self):
        parent = elimination_tree(grid_laplacian_2d(4))
        tree = etree_to_task_tree(parent, f=[1.0] * 16, n_weights=[2.0] * 16)
        assert isinstance(tree, Tree)
        assert tree.size == 16
        assert tree.f(0) == 1.0 and tree.n(0) == 2.0

    def test_to_task_tree_forest_gets_super_root(self):
        a = sp.identity(4, format="csc")
        parent = elimination_tree(a)
        tree = etree_to_task_tree(parent)
        assert tree.size == 5
        assert tree.root == -1
        assert len(tree.children(-1)) == 4
