"""Unit tests for the unified solver registry and solve()/solve_many() facade."""

import json
import random

import pytest

from _helpers import make_random_tree
from repro import (
    Comparison,
    SolveReport,
    UnknownSolverError,
    compare,
    get_solver,
    list_solvers,
    register_solver,
    solve,
    solve_many,
)
from repro.core.minio import HEURISTICS
from repro.core.serialize import (
    save_tree,
    solve_report_from_dict,
    solve_report_to_dict,
)
from repro.core.traversal import check_in_core, is_postorder, peak_memory
from repro.solvers import MINMEMORY_SOLVERS, solver_table


@pytest.fixture
def tree(rng):
    return make_random_tree(40, rng)


class TestRegistry:
    def test_all_families_registered(self):
        names = list_solvers()
        assert {"postorder", "postorder_natural", "postorder_subtree_memory"} <= set(names)
        assert {"liu", "minmem", "explore", "minio"} <= set(names)
        assert {f"minio_{h}" for h in HEURISTICS} <= set(names)

    def test_family_filter(self):
        assert set(list_solvers(family="exact")) == {"liu", "minmem"}
        assert all(name.startswith("minio") for name in list_solvers(family="minio"))

    def test_legacy_aliases_resolve(self):
        assert get_solver("PostOrder").name == "postorder"
        assert get_solver("Liu").name == "liu"
        assert get_solver("MinMem").name == "minmem"
        assert get_solver("best_postorder").name == "postorder"

    def test_lookup_is_case_insensitive(self):
        assert get_solver("MINMEM").name == "minmem"
        assert get_solver("Minio-LSNF").name == "minio_lsnf"

    def test_unknown_name_raises_value_error(self, tree):
        with pytest.raises(UnknownSolverError, match="magic"):
            get_solver("magic")
        with pytest.raises(ValueError, match="expected one of"):
            solve(tree, "magic")
        with pytest.raises(UnknownSolverError):
            solve_many([tree], ("minmem", "magic"))

    def test_custom_registration_dispatches(self, tree):
        @register_solver("test_only_dummy", family="test", summary="dummy")
        def _dummy(t, **options):
            from repro.core.postorder import best_postorder

            result = best_postorder(t)
            return SolveReport(
                algorithm="test_only_dummy",
                peak_memory=result.memory,
                traversal=result.traversal,
                extras={"options": sorted(options)},
            )

        report = solve(tree, "Test-Only-Dummy", rule="ignored")
        assert report.algorithm == "test_only_dummy"
        assert report.extras == {"options": ["rule"]}

    def test_solver_table_has_summaries(self):
        for spec in solver_table():
            assert spec.summary
            assert spec.name == spec.name.lower()

    def test_conflicting_registration_fails_atomically(self, tree):
        # re-registering 'minmem' with an alias owned by 'liu' must fail
        # without corrupting either existing entry
        with pytest.raises(ValueError, match="already registered"):
            @register_solver("minmem", family="broken", aliases=("Liu",))
            def _broken(t, **options):
                raise AssertionError("never dispatched")

        assert get_solver("minmem").family == "exact"
        assert get_solver("Liu").name == "liu"
        assert solve(tree, "minmem").algorithm == "minmem"

    def test_typo_option_rejected_not_swallowed(self, tree):
        with pytest.raises(TypeError, match="heuristc"):
            solve(tree, "minio", memory=tree.max_mem_req(), heuristc="lsnf")
        with pytest.raises(TypeError, match="unexpected option"):
            solve(tree, "postorder", rulee="natural")

    def test_facade_memory_dropped_for_in_core_solvers(self, tree):
        # `memory` is a facade-level parameter: harmless for solvers that
        # take no budget (documented), never a TypeError
        report = solve(tree, "postorder", memory=123.0)
        assert report == solve(tree, "postorder")


class TestSolveReports:
    def test_minmemory_reports_are_feasible(self, tree):
        for name in MINMEMORY_SOLVERS:
            report = solve(tree, name)
            assert isinstance(report, SolveReport)
            assert report.algorithm == name
            assert report.io_volume == 0.0
            assert report.schedule is None
            assert report.wall_time >= 0.0
            assert report.memory == report.peak_memory
            assert peak_memory(tree, report.traversal) == pytest.approx(report.peak_memory)

    def test_postorder_rules(self, tree):
        best = solve(tree, "postorder")
        for name in ("postorder_natural", "postorder_subtree_memory"):
            report = solve(tree, name)
            assert is_postorder(tree, report.traversal)
            assert report.peak_memory >= best.peak_memory - 1e-9
        via_opt = solve(tree, "postorder", rule="natural")
        natural = solve(tree, "postorder_natural")
        # same computation, but the report names the registry entry invoked
        assert via_opt.algorithm == "postorder"
        assert natural.algorithm == "postorder_natural"
        assert via_opt.peak_memory == natural.peak_memory
        assert via_opt.traversal == natural.traversal
        assert via_opt.extras == natural.extras == {"rule": "natural", "engine": "kernel"}

    def test_cross_solver_agreement_on_random_trees(self):
        rng = random.Random(1107)
        for trial in range(8):
            t = make_random_tree(30 + 5 * trial, rng, window=6 if trial % 2 else None)
            postorder = solve(t, "postorder").peak_memory
            liu = solve(t, "liu").peak_memory
            minmem = solve(t, "minmem").peak_memory
            assert liu == pytest.approx(minmem)
            assert minmem <= postorder + 1e-9

    def test_explore_with_enough_memory_completes(self, tree):
        optimal = solve(tree, "minmem")
        report = solve(tree, "explore", memory=optimal.peak_memory)
        assert report.extras["completed"] is True
        assert len(report.traversal) == tree.size
        assert check_in_core(tree, optimal.peak_memory, report.traversal)

    def test_explore_with_minimal_memory_is_partial(self, tree):
        report = solve(tree, "explore", memory=tree.max_mem_req())
        assert report.peak_memory <= tree.max_mem_req() + 1e-9
        assert len(report.traversal) <= tree.size

    def test_minio_reports_schedule_and_io(self, tree):
        optimal = solve(tree, "minmem")
        memory = tree.max_mem_req()
        for heuristic in ("first_fit", "lsnf"):
            report = solve(tree, "minio", memory=memory, heuristic=heuristic)
            assert report.schedule is not None
            assert report.io_volume >= 0.0
            assert report.peak_memory <= memory + 1e-9
            assert report.extras["heuristic"] == heuristic
            assert report.extras["memory_limit"] == memory
            pinned = solve(tree, f"minio_{heuristic}", memory=memory)
            assert pinned.io_volume == report.io_volume
        # with the optimal in-core memory no file is ever evicted
        free = solve(tree, "minio", memory=optimal.peak_memory)
        assert free.io_volume == pytest.approx(0.0)

    def test_minio_accepts_precomputed_traversal(self, tree):
        base = solve(tree, "postorder")
        report = solve(
            tree, "minio", memory=tree.max_mem_req(), traversal=base.traversal
        )
        assert report.algorithm == "minio"  # requested registry name
        assert report.extras["traversal_algorithm"] == "given"
        assert report.extras["in_core_peak"] == pytest.approx(base.peak_memory)
        # callers sweeping one traversal can hand over the known peak
        pinned = solve(
            tree,
            "minio",
            memory=tree.max_mem_req(),
            traversal=base.traversal,
            in_core_peak=base.peak_memory,
        )
        assert pinned == report

    def test_comparison_lookup_by_requested_name(self, tree):
        comparison = compare(
            tree, ("postorder", "minio"), memory=tree.max_mem_req()
        )
        assert comparison["minio"].extras["heuristic"] == "first_fit"
        assert set(comparison.algorithms) == {"postorder", "minio"}


class TestSolveMany:
    def test_parallel_matches_serial(self):
        rng = random.Random(20110527)
        trees = [make_random_tree(35, rng) for _ in range(6)]
        serial = solve_many(trees, ("postorder", "liu", "minmem"), workers=1)
        parallel = solve_many(trees, ("postorder", "liu", "minmem"), workers=4)
        assert len(serial) == len(parallel) == len(trees)
        # SolveReport equality excludes wall_time, so deterministic solvers
        # must produce identical reports on both paths
        assert serial == parallel

    def test_single_algorithm_string(self, tree):
        (reports,) = solve_many([tree], "minmem")
        assert set(reports) == {"minmem"}
        assert reports["minmem"] == solve(tree, "minmem")

    def test_aliases_canonicalised_in_keys(self, tree):
        (reports,) = solve_many([tree], ("PostOrder", "MinMem"))
        assert set(reports) == {"postorder", "minmem"}

    def test_duplicate_algorithms_rejected(self, tree):
        with pytest.raises(ValueError, match="duplicate"):
            solve_many([tree], ("minmem", "MinMem"))

    def test_empty_algorithms_rejected(self, tree):
        with pytest.raises(ValueError):
            solve_many([tree], ())

    def test_options_forwarded(self, tree):
        (reports,) = solve_many([tree], "minmem", reuse_states=False)
        assert reports["minmem"].extras["reuse_states"] is False

    def test_pool_typo_rejected_eagerly(self, tree):
        # the reserved pool= option must fail fast on unknown strings --
        # before any solving -- not silently fall back to some default
        with pytest.raises(ValueError, match="persistant"):
            solve_many([tree], "minmem", pool="persistant")
        with pytest.raises(ValueError, match="expected one of"):
            solve_many([tree], "minmem", workers=2, pool="thread")

    def test_pool_accepts_known_modes(self, tree):
        for mode in ("persistent", "fresh", "serial"):
            (reports,) = solve_many([tree], "minmem", pool=mode)
            assert reports["minmem"] == solve(tree, "minmem")


class TestCompare:
    def test_ranked_best_first(self, tree):
        comparison = compare(tree)
        assert isinstance(comparison, Comparison)
        assert len(comparison) == 3
        peaks = [report.peak_memory for report in comparison]
        assert peaks == sorted(peaks)
        assert comparison.best.peak_memory == pytest.approx(
            solve(tree, "minmem").peak_memory
        )
        assert comparison.ratios()[comparison.best.algorithm] == pytest.approx(1.0)
        assert comparison["postorder"].algorithm == "postorder"
        with pytest.raises(KeyError):
            comparison["nope"]

    def test_format_table(self, tree):
        table = compare(tree).format_table()
        assert "algorithm" in table and "peak memory" in table
        assert "minmem" in table and "liu" in table


class TestReportSerialization:
    def test_in_core_round_trip(self, tree):
        report = solve(tree, "minmem")
        data = json.loads(json.dumps(solve_report_to_dict(report)))
        back = solve_report_from_dict(data)
        assert back == report  # wall_time excluded from equality
        assert back.wall_time == pytest.approx(report.wall_time)
        assert back.extras == report.extras

    def test_out_of_core_round_trip(self, tree):
        report = solve(tree, "minio", memory=tree.max_mem_req(), heuristic="lsnf")
        back = solve_report_from_dict(json.loads(json.dumps(solve_report_to_dict(report))))
        assert back == report
        assert back.schedule.evictions == report.schedule.evictions
        assert back.schedule.io_volume(tree) == pytest.approx(report.io_volume)

    def test_bad_document_rejected(self):
        with pytest.raises(ValueError):
            solve_report_from_dict({"schema": 99, "kind": "solve_report"})
        with pytest.raises(ValueError):
            solve_report_from_dict({"schema": 1, "kind": "tree"})


class TestSolveCli:
    @pytest.fixture
    def tree_file(self, tmp_path, rng):
        path = tmp_path / "tree.json"
        save_tree(make_random_tree(25, rng), path)
        return path

    def test_solve_json_round_trips(self, tree_file, capsys):
        from repro.cli import main
        from repro.core.serialize import load_tree

        assert main(["solve", str(tree_file), "--algorithm", "minmem", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        report = solve_report_from_dict(payload["report"])
        assert report == solve(load_tree(tree_file), "minmem")

    def test_solve_text_output(self, tree_file, capsys):
        from repro.cli import main

        assert main(["solve", str(tree_file), "--algorithm", "liu"]) == 0
        out = capsys.readouterr().out
        assert "peak memory" in out and "liu" in out

    def test_solve_list_algorithms(self, capsys):
        from repro.cli import main

        assert main(["solve", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("postorder", "liu", "minmem", "minio_lsnf", "explore"):
            assert name in out

    def test_solve_unknown_algorithm_fails(self, tree_file, capsys):
        from repro.cli import main

        assert main(["solve", str(tree_file), "--algorithm", "magic"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_solve_many_trees_batch(self, tmp_path, rng, capsys):
        from repro.cli import main

        paths = []
        for i in range(3):
            path = tmp_path / f"t{i}.json"
            save_tree(make_random_tree(15, rng), path)
            paths.append(str(path))
        code = main(["solve", *paths, "--algorithm", "postorder", "--json", "--workers", "2"])
        assert code == 0
        documents = json.loads(capsys.readouterr().out)
        assert len(documents) == 3
        for document in documents:
            assert solve_report_from_dict(document["report"]).algorithm == "postorder"
