"""Unit tests for the six eviction heuristics (selection logic only)."""

import pytest

from repro.core.minio.heuristics import (
    HEURISTICS,
    get_heuristic,
    select_best_fill,
    select_best_fit,
    select_best_k_combination,
    select_first_fill,
    select_first_fit,
    select_lsnf,
)

# candidates are (node, size) pairs ordered latest-scheduled-first
CANDS = [("a", 4.0), ("b", 2.0), ("c", 7.0), ("d", 1.0), ("e", 3.0)]


def total(victims, cands=CANDS):
    sizes = dict(cands)
    return sum(sizes[v] for v in victims)


class TestLSNF:
    def test_takes_prefix(self):
        assert select_lsnf(CANDS, 5.0) == ["a", "b"]

    def test_zero_requirement(self):
        assert select_lsnf(CANDS, 0.0) == []

    def test_takes_all_if_needed(self):
        assert select_lsnf(CANDS, 100.0) == [v for v, _ in CANDS]


class TestFirstFit:
    def test_picks_first_large_enough(self):
        assert select_first_fit(CANDS, 3.5) == ["a"]
        assert select_first_fit(CANDS, 5.0) == ["c"]

    def test_falls_back_to_lsnf(self):
        assert select_first_fit(CANDS, 10.0) == select_lsnf(CANDS, 10.0)

    def test_zero_requirement(self):
        assert select_first_fit(CANDS, 0.0) == []


class TestBestFit:
    def test_picks_closest(self):
        # need 6.5 -> closest single size is 7 (c)
        assert select_best_fit(CANDS, 6.5) == ["c"]

    def test_repeats_until_enough(self):
        victims = select_best_fit(CANDS, 8.0)
        assert total(victims) >= 8.0

    def test_tie_prefers_earlier_candidate(self):
        cands = [("x", 2.0), ("y", 2.0)]
        assert select_best_fit(cands, 2.0) == ["x"]


class TestFirstFill:
    def test_picks_first_smaller(self):
        # need 3.5: first file strictly smaller is b (2.0); then need 1.5 -> d (1.0);
        # then need 0.5 -> no strictly smaller file, LSNF on remainder takes a (4.0)
        victims = select_first_fill(CANDS, 3.5)
        assert victims[:2] == ["b", "d"]
        assert total(victims) >= 3.5

    def test_falls_back_to_lsnf_when_no_small_file(self):
        cands = [("a", 5.0), ("b", 6.0)]
        assert select_first_fill(cands, 3.0) == ["a"]

    def test_enough_freed(self):
        for need in (1.0, 4.0, 9.0, 16.0):
            assert total(select_first_fill(CANDS, need)) >= min(need, total([v for v, _ in CANDS]))


class TestBestFill:
    def test_picks_largest_below_requirement(self):
        # need 6.5: files < 6.5 are 4,2,1,3 -> best fill is 4 (a); then need 2.5 -> 2 (b)...
        victims = select_best_fill(CANDS, 6.5)
        assert victims[0] == "a"
        assert total(victims) >= 6.5

    def test_falls_back_to_lsnf(self):
        cands = [("a", 10.0)]
        assert select_best_fill(cands, 2.0) == ["a"]


class TestBestKCombination:
    def test_exact_subset(self):
        # need 5 -> subset {a(4), d(1)} or {b(2), e(3)} sums exactly to 5
        victims = select_best_k_combination(CANDS, 5.0)
        assert total(victims) == pytest.approx(5.0)

    def test_k_limits_window(self):
        cands = [("a", 1.0), ("b", 1.0), ("c", 1.0), ("d", 100.0)]
        victims = select_best_k_combination(cands, 100.0, k=3)
        # the window only sees a, b, c first, so it must evict them before d
        assert set(victims) >= {"a", "b", "c"}
        assert total(victims, cands) >= 100.0

    def test_progress_and_coverage(self):
        for need in (0.5, 2.0, 6.0, 17.0):
            victims = select_best_k_combination(CANDS, need)
            assert total(victims) >= min(need, 17.0) - 1e-9


class TestRegistry:
    def test_all_registered(self):
        assert set(HEURISTICS) == {
            "lsnf",
            "first_fit",
            "best_fit",
            "first_fill",
            "best_fill",
            "best_k_combination",
        }

    def test_get_heuristic(self):
        assert get_heuristic("lsnf") is select_lsnf
        with pytest.raises(ValueError):
            get_heuristic("nope")

    def test_every_heuristic_frees_enough(self):
        for name, selector in HEURISTICS.items():
            for need in (0.5, 3.0, 8.0, 17.0):
                victims = selector(CANDS, need)
                assert total(victims) >= min(need, 17.0) - 1e-9, name


# ----------------------------------------------------------------------
# reference oracles: the original O(n^2) linear-scan implementations the
# bisect/sorted-structure versions must reproduce victim by victim
# ----------------------------------------------------------------------
_EPS = 1e-12


def _oracle_best_fit(candidates, io_req):
    remaining = list(candidates)
    victims = []
    need = io_req
    while need > _EPS and remaining:
        best_idx = min(
            range(len(remaining)), key=lambda k: (abs(remaining[k][1] - need), k)
        )
        node, size = remaining.pop(best_idx)
        victims.append(node)
        need -= size
    return victims


def _oracle_best_fill(candidates, io_req):
    remaining = list(candidates)
    victims = []
    need = io_req
    while need > _EPS and remaining:
        eligible = [
            (k, size) for k, (_, size) in enumerate(remaining) if size < need - _EPS
        ]
        if not eligible:
            victims.extend(select_lsnf(remaining, need))
            return victims
        best_idx = min(eligible, key=lambda item: (need - item[1], item[0]))[0]
        node, size = remaining.pop(best_idx)
        victims.append(node)
        need -= size
    return victims


class TestSortedStructureOracles:
    """The bisect implementations match the quadratic originals exactly."""

    def _random_cases(self, tie_heavy):
        import random

        rng = random.Random(0xBE57F17 if tie_heavy else 0xF111)
        for _ in range(1500):
            n = rng.randrange(0, 16)
            if tie_heavy:
                # small integer sizes: many equal-size runs and exactly
                # equidistant below/above pairs, the tie-break hot spots
                sizes = [float(rng.choice((0, 1, 1, 2, 3, 4, 5))) for _ in range(n)]
                need = float(rng.choice((0, 1, 2, 3, 4, 7)) + rng.choice((0, 0, 0.5)))
            else:
                sizes = [rng.random() * 10 for _ in range(n)]
                need = rng.random() * 25
            yield [(f"n{i}", size) for i, size in enumerate(sizes)], need

    @pytest.mark.parametrize("tie_heavy", (False, True))
    def test_best_fit_matches_oracle(self, tie_heavy):
        for candidates, need in self._random_cases(tie_heavy):
            assert select_best_fit(candidates, need) == _oracle_best_fit(
                candidates, need
            ), (candidates, need)

    @pytest.mark.parametrize("tie_heavy", (False, True))
    def test_best_fill_matches_oracle(self, tie_heavy):
        for candidates, need in self._random_cases(tie_heavy):
            assert select_best_fill(candidates, need) == _oracle_best_fill(
                candidates, need
            ), (candidates, need)

    def test_equidistant_tie_prefers_earlier_candidate(self):
        # need 3: sizes 2 and 4 are equidistant; the earlier candidate wins
        # regardless of which side of the need it sits on
        assert select_best_fit([("a", 4.0), ("b", 2.0)], 3.0) == ["a"]
        # "a" (2.0) wins the tie but leaves 1.0 uncovered, so "b" follows
        assert select_best_fit([("a", 2.0), ("b", 4.0)], 3.0) == ["a", "b"]

    def test_equal_size_run_prefers_earlier_candidate(self):
        cands = [("a", 2.0), ("b", 2.0), ("c", 2.0)]
        assert select_best_fit(cands, 5.0) == ["a", "b", "c"]
        # best_fill evicts a then b, and the residual 1.0 has no strictly
        # smaller file left, so the LSNF fallback takes c as well
        assert select_best_fill(cands, 5.0) == ["a", "b", "c"]

    def test_best_fill_lsnf_fallback_sees_survivors_in_order(self):
        # first eviction removes "b" (best fill for 3: largest size < 3);
        # nothing is strictly below the remaining 1.0, so LSNF takes the
        # surviving candidates in their original order, "a" first
        cands = [("a", 5.0), ("b", 2.0), ("c", 4.0)]
        assert select_best_fill(cands, 3.0) == ["b", "a"]
