"""Unit tests for the six eviction heuristics (selection logic only)."""

import pytest

from repro.core.minio.heuristics import (
    HEURISTICS,
    get_heuristic,
    select_best_fill,
    select_best_fit,
    select_best_k_combination,
    select_first_fill,
    select_first_fit,
    select_lsnf,
)

# candidates are (node, size) pairs ordered latest-scheduled-first
CANDS = [("a", 4.0), ("b", 2.0), ("c", 7.0), ("d", 1.0), ("e", 3.0)]


def total(victims, cands=CANDS):
    sizes = dict(cands)
    return sum(sizes[v] for v in victims)


class TestLSNF:
    def test_takes_prefix(self):
        assert select_lsnf(CANDS, 5.0) == ["a", "b"]

    def test_zero_requirement(self):
        assert select_lsnf(CANDS, 0.0) == []

    def test_takes_all_if_needed(self):
        assert select_lsnf(CANDS, 100.0) == [v for v, _ in CANDS]


class TestFirstFit:
    def test_picks_first_large_enough(self):
        assert select_first_fit(CANDS, 3.5) == ["a"]
        assert select_first_fit(CANDS, 5.0) == ["c"]

    def test_falls_back_to_lsnf(self):
        assert select_first_fit(CANDS, 10.0) == select_lsnf(CANDS, 10.0)

    def test_zero_requirement(self):
        assert select_first_fit(CANDS, 0.0) == []


class TestBestFit:
    def test_picks_closest(self):
        # need 6.5 -> closest single size is 7 (c)
        assert select_best_fit(CANDS, 6.5) == ["c"]

    def test_repeats_until_enough(self):
        victims = select_best_fit(CANDS, 8.0)
        assert total(victims) >= 8.0

    def test_tie_prefers_earlier_candidate(self):
        cands = [("x", 2.0), ("y", 2.0)]
        assert select_best_fit(cands, 2.0) == ["x"]


class TestFirstFill:
    def test_picks_first_smaller(self):
        # need 3.5: first file strictly smaller is b (2.0); then need 1.5 -> d (1.0);
        # then need 0.5 -> no strictly smaller file, LSNF on remainder takes a (4.0)
        victims = select_first_fill(CANDS, 3.5)
        assert victims[:2] == ["b", "d"]
        assert total(victims) >= 3.5

    def test_falls_back_to_lsnf_when_no_small_file(self):
        cands = [("a", 5.0), ("b", 6.0)]
        assert select_first_fill(cands, 3.0) == ["a"]

    def test_enough_freed(self):
        for need in (1.0, 4.0, 9.0, 16.0):
            assert total(select_first_fill(CANDS, need)) >= min(need, total([v for v, _ in CANDS]))


class TestBestFill:
    def test_picks_largest_below_requirement(self):
        # need 6.5: files < 6.5 are 4,2,1,3 -> best fill is 4 (a); then need 2.5 -> 2 (b)...
        victims = select_best_fill(CANDS, 6.5)
        assert victims[0] == "a"
        assert total(victims) >= 6.5

    def test_falls_back_to_lsnf(self):
        cands = [("a", 10.0)]
        assert select_best_fill(cands, 2.0) == ["a"]


class TestBestKCombination:
    def test_exact_subset(self):
        # need 5 -> subset {a(4), d(1)} or {b(2), e(3)} sums exactly to 5
        victims = select_best_k_combination(CANDS, 5.0)
        assert total(victims) == pytest.approx(5.0)

    def test_k_limits_window(self):
        cands = [("a", 1.0), ("b", 1.0), ("c", 1.0), ("d", 100.0)]
        victims = select_best_k_combination(cands, 100.0, k=3)
        # the window only sees a, b, c first, so it must evict them before d
        assert set(victims) >= {"a", "b", "c"}
        assert total(victims, cands) >= 100.0

    def test_progress_and_coverage(self):
        for need in (0.5, 2.0, 6.0, 17.0):
            victims = select_best_k_combination(CANDS, need)
            assert total(victims) >= min(need, 17.0) - 1e-9


class TestRegistry:
    def test_all_registered(self):
        assert set(HEURISTICS) == {
            "lsnf",
            "first_fit",
            "best_fit",
            "first_fill",
            "best_fill",
            "best_k_combination",
        }

    def test_get_heuristic(self):
        assert get_heuristic("lsnf") is select_lsnf
        with pytest.raises(ValueError):
            get_heuristic("nope")

    def test_every_heuristic_frees_enough(self):
        for name, selector in HEURISTICS.items():
            for need in (0.5, 3.0, 8.0, 17.0):
                victims = selector(CANDS, need)
                assert total(victims) >= min(need, 17.0) - 1e-9, name
