"""Plain-module test helpers, importable from any test file.

Pytest runs this suite in ``prepend`` import mode without ``__init__.py``
files, so test modules are top-level modules and ``from .conftest import ...``
relative imports fail at collection.  Helpers shared across test files
therefore live here and are imported absolutely::

    from _helpers import make_random_tree
"""

from __future__ import annotations

import random

from repro.core.tree import Tree

__all__ = ["make_random_tree"]


def make_random_tree(
    n_nodes: int,
    rng: random.Random,
    *,
    max_f: int = 10,
    max_n: int = 5,
    min_f: int = 0,
    window: int | None = None,
) -> Tree:
    """Random tree used across many tests (uniform or windowed attachment)."""
    tree = Tree()
    tree.add_node(0, f=rng.randint(min_f, max_f), n=rng.randint(0, max_n))
    for i in range(1, n_nodes):
        low = 0 if window is None else max(0, i - window)
        parent = rng.randint(low, i - 1)
        tree.add_node(
            i,
            parent=parent,
            f=rng.randint(max(min_f, 1), max_f),
            n=rng.randint(0, max_n),
        )
    return tree
