"""Unit tests for the best-postorder algorithm (Liu 1986)."""

import random

import pytest

from repro.core.bruteforce import optimal_postorder_memory
from repro.core.builders import chain_tree, from_parent_list, star_tree
from repro.core.postorder import POSTORDER_RULES, best_postorder, postorder_with_rule
from repro.core.traversal import is_postorder, peak_memory
from repro.generators.harpoon import harpoon_tree, postorder_memory_bound

from _helpers import make_random_tree


class TestSmallInstances:
    def test_single_node(self):
        t = from_parent_list([None], f=[3.0], n=[2.0])
        res = best_postorder(t)
        assert res.memory == pytest.approx(5.0)
        assert list(res.traversal.order) == [0]

    def test_chain(self):
        t = chain_tree(5, f=2.0, n=1.0)
        res = best_postorder(t)
        # every step needs f_child + n + f = 2 + 1 + 2 = 5 (except the leaf)
        assert res.memory == pytest.approx(5.0)
        assert is_postorder(t, res.traversal)

    def test_star(self):
        t = star_tree(4, root_f=1.0, leaf_f=3.0)
        res = best_postorder(t)
        # all leaf files must be present when the root runs: 1 + 4*3 = 13
        assert res.memory == pytest.approx(13.0)

    def test_two_subtrees_ordering_matters(self):
        # root with two children: one subtree peaks high but leaves a small
        # file, the other is the opposite; Liu's rule orders the high-peak,
        # small-residual subtree first.
        t = from_parent_list(
            [None, 0, 0, 1, 2],
            f=[0.0, 1.0, 5.0, 10.0, 1.0],
            n=[0.0, 0.0, 0.0, 0.0, 0.0],
        )
        res = best_postorder(t)
        assert res.memory == pytest.approx(optimal_postorder_memory(t))
        # natural order is strictly worse on this instance
        natural = postorder_with_rule(t, rule="natural")
        assert natural.memory >= res.memory

    def test_child_order_recorded(self):
        t = star_tree(3, root_f=0.0, leaf_f=1.0)
        res = best_postorder(t)
        assert set(res.child_order[t.root]) == {1, 2, 3}


class TestCorrectness:
    def test_memory_matches_witness_traversal(self, rng):
        for _ in range(60):
            t = make_random_tree(rng.randint(1, 40), rng)
            res = best_postorder(t)
            assert is_postorder(t, res.traversal)
            assert peak_memory(t, res.traversal) == pytest.approx(res.memory)

    def test_optimal_among_postorders(self, rng):
        for _ in range(60):
            t = make_random_tree(rng.randint(1, 12), rng)
            res = best_postorder(t)
            assert res.memory == pytest.approx(optimal_postorder_memory(t))

    def test_rules_never_beat_liu_rule(self, rng):
        for _ in range(40):
            t = make_random_tree(rng.randint(1, 15), rng)
            best = best_postorder(t).memory
            for rule in POSTORDER_RULES:
                assert postorder_with_rule(t, rule).memory >= best - 1e-9

    def test_unknown_rule_rejected(self):
        t = chain_tree(2)
        with pytest.raises(ValueError):
            postorder_with_rule(t, rule="does-not-exist")

    def test_subtree_peaks_monotone(self, rng):
        """A subtree peak never exceeds its parent's peak."""
        for _ in range(20):
            t = make_random_tree(rng.randint(2, 30), rng)
            res = best_postorder(t)
            for v in t.nodes():
                p = t.parent(v)
                if p is not None:
                    assert res.subtree_peak[v] <= res.subtree_peak[p] + 1e-9


class TestHarpoonWorstCase:
    def test_matches_theorem1_formula(self):
        for b in (2, 3, 5):
            t = harpoon_tree(b, memory=1.0, epsilon=0.01)
            res = best_postorder(t)
            assert res.memory == pytest.approx(postorder_memory_bound(b, 1, 1.0, 0.01))

    def test_deep_chain_no_recursion_error(self):
        t = chain_tree(5000, f=1.0, n=0.0)
        res = best_postorder(t)
        assert res.memory == pytest.approx(2.0)
        assert len(res.traversal) == 5000
