"""Unit tests for the out-of-core scheduler and the I/O lower bounds."""

import pytest

from repro.core.bruteforce import optimal_min_io
from repro.core.builders import from_parent_list, star_tree
from repro.core.liu import liu_min_memory
from repro.core.minio import (
    HEURISTICS,
    divisible_lower_bound,
    io_volume,
    memory_deficit_lower_bound,
    run_out_of_core,
)
from repro.core.minmem import min_mem
from repro.core.postorder import best_postorder
from repro.core.traversal import check_out_of_core

from _helpers import make_random_tree


def tight_tree():
    """Root with two 2-node chains; forces I/O when memory is scarce."""
    return from_parent_list(
        [None, 0, 0, 1, 2], f=[0.0, 3.0, 3.0, 4.0, 4.0], n=[0.0] * 5
    )


class TestScheduler:
    def test_no_io_when_memory_is_peak(self):
        t = tight_tree()
        res = min_mem(t)
        out = run_out_of_core(t, res.memory, res.traversal, "first_fit")
        assert out.io_volume == 0.0
        assert out.io_operations == 0

    def test_io_when_memory_tight(self):
        t = tight_tree()
        trav = min_mem(t).traversal
        out = run_out_of_core(t, t.max_mem_req(), trav, "first_fit")
        assert out.io_volume > 0
        ok, io = check_out_of_core(t, t.max_mem_req(), out.schedule)
        assert ok
        assert io == pytest.approx(out.io_volume)

    def test_schedules_always_valid(self, rng):
        for _ in range(40):
            t = make_random_tree(rng.randint(2, 15), rng, max_f=8, max_n=4)
            trav = min_mem(t).traversal
            for frac in (0.0, 0.5):
                memory = t.max_mem_req() + frac * (min_mem(t).memory - t.max_mem_req())
                for name in HEURISTICS:
                    out = run_out_of_core(t, memory, trav, name)
                    ok, io = check_out_of_core(t, memory, out.schedule)
                    assert ok, name
                    assert io == pytest.approx(out.io_volume)
                    assert out.peak_resident <= memory + 1e-9

    def test_heuristics_at_least_optimal(self, rng):
        for _ in range(25):
            t = make_random_tree(rng.randint(2, 8), rng, max_f=6, max_n=3)
            memory = t.max_mem_req()
            opt = optimal_min_io(t, memory)
            trav = min_mem(t).traversal
            for name in HEURISTICS:
                assert run_out_of_core(t, memory, trav, name).io_volume >= opt - 1e-9

    def test_memory_below_max_memreq_rejected(self):
        t = tight_tree()
        with pytest.raises(ValueError):
            run_out_of_core(t, t.max_mem_req() - 1, min_mem(t).traversal)

    def test_custom_selector(self):
        t = tight_tree()
        trav = min_mem(t).traversal
        calls = []

        def greedy_all(candidates, io_req):
            calls.append(io_req)
            return [node for node, _ in candidates]

        out = run_out_of_core(t, t.max_mem_req(), trav, greedy_all)
        assert calls, "selector should have been invoked"
        ok, _ = check_out_of_core(t, t.max_mem_req(), out.schedule)
        assert ok

    def test_io_volume_helper(self):
        t = tight_tree()
        trav = min_mem(t).traversal
        assert io_volume(t, t.max_mem_req(), trav, "lsnf") == pytest.approx(
            run_out_of_core(t, t.max_mem_req(), trav, "lsnf").io_volume
        )

    def test_bottomup_traversal_accepted(self):
        t = tight_tree()
        trav = min_mem(t).traversal.reversed()
        out = run_out_of_core(t, t.max_mem_req(), trav, "first_fit")
        ok, _ = check_out_of_core(t, t.max_mem_req(), out.schedule)
        assert ok

    def test_io_bounded_and_zero_at_peak(self, rng):
        """I/O never exceeds one write per file, and vanishes once the memory
        reaches the traversal's in-core peak."""
        for _ in range(20):
            t = make_random_tree(rng.randint(2, 12), rng, max_f=6, max_n=2)
            result = min_mem(t)
            for name in HEURISTICS:
                tight = run_out_of_core(t, t.max_mem_req(), result.traversal, name)
                assert tight.io_volume <= t.total_file_size() + 1e-9
                roomy = run_out_of_core(t, result.memory, result.traversal, name)
                assert roomy.io_volume == pytest.approx(0.0)


class TestLowerBounds:
    def test_memory_deficit_bound(self):
        t = tight_tree()
        opt_memory = liu_min_memory(t)
        assert memory_deficit_lower_bound(t, opt_memory) == 0.0
        assert memory_deficit_lower_bound(t, opt_memory - 2) == pytest.approx(2.0)

    def test_deficit_bound_below_heuristics(self, rng):
        for _ in range(20):
            t = make_random_tree(rng.randint(2, 12), rng, max_f=6, max_n=2)
            memory = t.max_mem_req()
            bound = memory_deficit_lower_bound(t, memory)
            trav = min_mem(t).traversal
            for name in HEURISTICS:
                assert run_out_of_core(t, memory, trav, name).io_volume >= bound - 1e-9

    def test_divisible_bound_below_integral(self, rng):
        for _ in range(20):
            t = make_random_tree(rng.randint(2, 12), rng, max_f=6, max_n=2)
            memory = t.max_mem_req()
            trav = min_mem(t).traversal
            frac = divisible_lower_bound(t, memory, trav)
            for name in HEURISTICS:
                assert run_out_of_core(t, memory, trav, name).io_volume >= frac - 1e-9

    def test_divisible_bound_zero_at_peak(self):
        t = tight_tree()
        res = min_mem(t)
        assert divisible_lower_bound(t, res.memory, res.traversal) == pytest.approx(0.0)

    def test_divisible_bound_rejects_small_memory(self):
        t = tight_tree()
        with pytest.raises(ValueError):
            divisible_lower_bound(t, 1.0, min_mem(t).traversal)
