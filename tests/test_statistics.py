"""Unit tests for the Table I / Table II statistics helpers."""

import math

import pytest

from repro.analysis.statistics import format_ratio_table, ratio_statistics


class TestRatioStatistics:
    def test_all_optimal(self):
        stats = ratio_statistics([10.0, 20.0], [10.0, 20.0])
        assert stats.non_optimal_fraction == 0.0
        assert stats.optimal_fraction == 1.0
        assert stats.max_ratio == pytest.approx(1.0)
        assert stats.mean_ratio == pytest.approx(1.0)
        assert stats.std_ratio == pytest.approx(0.0)
        assert stats.count == 2

    def test_paper_like_numbers(self):
        values = [1.0, 1.0, 1.0, 1.18]
        refs = [1.0, 1.0, 1.0, 1.0]
        stats = ratio_statistics(values, refs)
        assert stats.non_optimal_fraction == pytest.approx(0.25)
        assert stats.max_ratio == pytest.approx(1.18)
        assert stats.mean_ratio == pytest.approx((3 + 1.18) / 4)

    @pytest.mark.filterwarnings("error::RuntimeWarning")
    def test_zero_reference(self):
        stats = ratio_statistics([0.0, 1.0], [0.0, 0.0])
        assert stats.max_ratio == math.inf
        assert stats.mean_ratio == math.inf
        assert stats.std_ratio == math.inf
        assert stats.non_optimal_fraction == pytest.approx(0.5)

    @pytest.mark.filterwarnings("error::RuntimeWarning")
    def test_zero_reference_all_optimal(self):
        stats = ratio_statistics([0.0, 2.0], [0.0, 2.0])
        assert stats.max_ratio == pytest.approx(1.0)
        assert stats.mean_ratio == pytest.approx(1.0)
        assert stats.std_ratio == pytest.approx(0.0)
        assert stats.non_optimal_fraction == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ratio_statistics([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            ratio_statistics([], [])

    def test_tolerance(self):
        stats = ratio_statistics([1.0 + 1e-12], [1.0])
        assert stats.non_optimal_fraction == 0.0


class TestFormatting:
    def test_format_table(self):
        stats = ratio_statistics([1.0, 1.2], [1.0, 1.0])
        text = format_ratio_table(stats, method="PostOrder")
        assert "Non optimal PostOrder traversals" in text
        assert "50.0%" in text
        assert "1.20" in text
