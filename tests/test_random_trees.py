"""Unit tests for the random tree generators."""

import pytest

from repro.core.builders import chain_tree
from repro.generators.random_trees import (
    random_attachment_tree,
    random_binary_tree,
    random_caterpillar,
    random_recent_attachment_tree,
    reweight_random,
)


class TestReweight:
    def test_preserves_shape(self):
        base = chain_tree(50, f=1.0, n=0.0)
        rw = reweight_random(base, seed=3)
        assert rw.size == base.size
        for v in base.nodes():
            assert rw.parent(v) == base.parent(v)

    def test_weight_ranges(self):
        base = random_attachment_tree(600, seed=1)
        rw = reweight_random(base, seed=2)
        n_high = max(1, 600 // 500)
        for v in rw.nodes():
            assert 1 <= rw.n(v) <= n_high
            if v != rw.root:
                assert 1 <= rw.f(v) <= 600

    def test_root_zero_file_preserved(self):
        base = random_attachment_tree(100, seed=4)  # root f = 0
        rw = reweight_random(base, seed=5)
        assert rw.f(rw.root) == 0.0

    def test_deterministic(self):
        base = random_attachment_tree(80, seed=6)
        assert reweight_random(base, seed=7) == reweight_random(base, seed=7)
        assert reweight_random(base, seed=7) != reweight_random(base, seed=8)


class TestShapes:
    def test_attachment_tree_valid(self):
        t = random_attachment_tree(200, seed=1)
        t.validate()
        assert t.size == 200

    def test_recent_attachment_is_deeper(self):
        shallow = random_attachment_tree(400, seed=2)
        deep = random_recent_attachment_tree(400, seed=2, window=4)
        assert deep.height() > shallow.height()

    def test_binary_tree_structure(self):
        t = random_binary_tree(50, seed=3)
        t.validate()
        leaves = t.leaves()
        assert len(leaves) == 50
        for v in t.nodes():
            assert len(t.children(v)) in (0, 2)

    def test_caterpillar(self):
        t = random_caterpillar(30, seed=4, max_leaves=3)
        t.validate()
        assert t.size >= 30
        # the spine is a path from the root
        assert t.height() >= 29

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            random_attachment_tree(0)
        with pytest.raises(ValueError):
            random_binary_tree(0)
        with pytest.raises(ValueError):
            random_caterpillar(0)

    def test_determinism(self):
        assert random_attachment_tree(60, seed=9) == random_attachment_tree(60, seed=9)
        assert random_binary_tree(20, seed=9) == random_binary_tree(20, seed=9)
