"""The replay engine as a cross-solver oracle.

Every registered algorithm's report must survive an independent replay: the
engine re-executes the schedule with its own memory accounting and the
recomputed peak memory / I/O volume must match the solver's claim exactly.
Corrupted schedules and tampered reports must raise.
"""

import random
from dataclasses import replace

import pytest

from _helpers import make_random_tree
from repro.bench.replay import (
    ReplayError,
    ReplayMismatch,
    replay_report,
    replay_schedule,
    replay_traversal,
)
from repro.core.traversal import (
    BOTTOMUP,
    TOPDOWN,
    OutOfCoreSchedule,
    Traversal,
    check_out_of_core,
    peak_memory,
)
from repro.generators.harpoon import harpoon_tree
from repro.generators.synthetic import balanced_tree, broom_tree
from repro.solvers import list_solvers, solve


def sample_trees():
    rng = random.Random(42)
    return [
        ("balanced", balanced_tree(3, 3, f=2.0, n=1.0)),
        ("broom", broom_tree(12, 5, f=3.0, n=1.0)),
        ("harpoon", harpoon_tree(4, memory=16.0, epsilon=0.5)),
        ("random", make_random_tree(60, rng)),
    ]


def budget_for(tree):
    """A memory bound strictly between the floor and the in-core optimum."""
    floor = tree.max_mem_req()
    peak = solve(tree, "minmem").peak_memory
    return floor + 0.3 * (peak - floor)


class TestCrossSolverOracle:
    @pytest.mark.parametrize("algorithm", list_solvers())
    @pytest.mark.parametrize("name,tree", sample_trees(), ids=lambda v: v if isinstance(v, str) else "")
    def test_every_solver_replays_exactly(self, algorithm, name, tree):
        report = solve(tree, algorithm, memory=budget_for(tree))
        result = replay_report(tree, report)
        assert result.peak_memory == pytest.approx(report.peak_memory, rel=1e-9)
        assert result.io_volume == pytest.approx(report.io_volume, rel=1e-9)

    def test_partial_explore_run_replays(self):
        # two heavy stars under the root: expanding either star needs its
        # full MemReq while the other star's file stays resident, so
        # max MemReq is not enough to finish and explore stops partway
        from repro.core.tree import Tree

        tree = Tree()
        tree.add_node("root", f=0.0, n=0.0)
        for branch in ("A", "B"):
            tree.add_node(branch, parent="root", f=10.0, n=0.0)
            for leaf in range(5):
                tree.add_node(f"{branch}{leaf}", parent=branch, f=10.0, n=0.0)
        report = solve(tree, "explore", memory=tree.max_mem_req())
        assert not report.extras["completed"]
        result = replay_report(tree, report)
        assert not result.complete
        assert result.steps == len(report.traversal)

    def test_tampered_peak_raises(self, paper_figure1_tree):
        report = solve(paper_figure1_tree, "minmem")
        forged = replace(report, peak_memory=report.peak_memory - 1.0)
        with pytest.raises(ReplayMismatch):
            replay_report(paper_figure1_tree, forged)

    def test_tampered_io_volume_raises(self):
        tree = harpoon_tree(4, memory=16.0, epsilon=0.5)
        report = solve(tree, "minio", memory=budget_for(tree))
        assert report.schedule is not None and report.io_volume > 0
        forged = replace(report, io_volume=report.io_volume + 1.0)
        with pytest.raises(ReplayMismatch):
            replay_report(tree, forged)

    def test_incore_report_with_phantom_io_raises(self, paper_figure1_tree):
        report = solve(paper_figure1_tree, "liu")
        forged = replace(report, io_volume=5.0)
        with pytest.raises(ReplayMismatch):
            replay_report(paper_figure1_tree, forged)


class TestReplayTraversal:
    def test_matches_memory_profile_both_conventions(self):
        rng = random.Random(7)
        tree = make_random_tree(40, rng)
        for convention in (TOPDOWN, BOTTOMUP):
            order = (
                tree.topological_order()
                if convention == TOPDOWN
                else tree.bottom_up_order()
            )
            traversal = Traversal(tuple(order), convention)
            expected = peak_memory(tree, traversal)
            assert replay_traversal(tree, traversal).peak_memory == pytest.approx(expected)

    def test_precedence_violation_raises(self, paper_figure1_tree):
        order = list(paper_figure1_tree.topological_order())
        order[0], order[-1] = order[-1], order[0]
        with pytest.raises(ReplayError):
            replay_traversal(paper_figure1_tree, Traversal(tuple(order), TOPDOWN))

    def test_duplicate_node_raises(self, paper_figure1_tree):
        order = paper_figure1_tree.topological_order()
        order[-1] = order[0]
        with pytest.raises(ReplayError, match="twice"):
            replay_traversal(paper_figure1_tree, Traversal(tuple(order), TOPDOWN))

    def test_incomplete_order_needs_partial_flag(self, paper_figure1_tree):
        prefix = tuple(paper_figure1_tree.topological_order()[:4])
        traversal = Traversal(prefix, TOPDOWN)
        with pytest.raises(ReplayError):
            replay_traversal(paper_figure1_tree, traversal)
        result = replay_traversal(paper_figure1_tree, traversal, partial=True)
        assert result.steps == 4 and not result.complete

    def test_partial_bottomup_is_rejected(self, paper_figure1_tree):
        prefix = tuple(paper_figure1_tree.bottom_up_order()[:4])
        with pytest.raises(ReplayError):
            replay_traversal(
                paper_figure1_tree, Traversal(prefix, BOTTOMUP), partial=True
            )


class TestReplaySchedule:
    def make_schedule(self, tree):
        report = solve(tree, "minio", memory=budget_for(tree))
        return report, report.extras["memory_limit"]

    def test_agrees_with_algorithm2_checker(self):
        tree = harpoon_tree(5, memory=20.0, epsilon=0.5)
        report, memory = self.make_schedule(tree)
        feasible, io = check_out_of_core(tree, memory, report.schedule)
        assert feasible
        result = replay_schedule(tree, report.schedule, memory=memory)
        assert result.io_volume == pytest.approx(io)
        assert result.evictions == len(report.schedule.evictions)

    def test_eviction_after_execution_raises(self):
        tree = harpoon_tree(5, memory=20.0, epsilon=0.5)
        report, memory = self.make_schedule(tree)
        evictions = dict(report.schedule.evictions)
        assert evictions, "expected a schedule with at least one eviction"
        victim = next(iter(evictions))
        position = report.schedule.traversal.position()
        evictions[victim] = position[victim]  # tau(i) == sigma(i): illegal
        corrupted = OutOfCoreSchedule(report.schedule.traversal, evictions)
        with pytest.raises(ReplayError):
            replay_schedule(tree, corrupted, memory=memory)

    def test_eviction_before_production_raises(self):
        tree = harpoon_tree(5, memory=20.0, epsilon=0.5)
        report, memory = self.make_schedule(tree)
        traversal = report.schedule.traversal
        # evict a leaf's file at step 0: its parent has not executed yet
        # (unless the victim is a child of the root executed at step 0)
        deep = max(traversal.order, key=lambda v: tree.depth(v))
        corrupted = OutOfCoreSchedule(traversal, {deep: 1})
        with pytest.raises(ReplayError, match="not resident"):
            replay_schedule(tree, corrupted, memory=memory)

    def test_memory_bound_violation_raises(self):
        tree = harpoon_tree(5, memory=20.0, epsilon=0.5)
        report, memory = self.make_schedule(tree)
        # stripping all evictions makes the in-core replay exceed the bound
        bare = OutOfCoreSchedule(report.schedule.traversal, {})
        assert report.schedule.evictions
        with pytest.raises(ReplayError, match="memory bound"):
            replay_schedule(tree, bare, memory=memory)
        unbounded = replay_schedule(tree, bare, memory=None)
        assert unbounded.io_volume == 0.0

    def test_unknown_victim_raises(self, paper_figure1_tree):
        traversal = Traversal(tuple(paper_figure1_tree.topological_order()), TOPDOWN)
        corrupted = OutOfCoreSchedule(traversal, {"nope": 1})
        with pytest.raises(ReplayError, match="unknown"):
            replay_schedule(paper_figure1_tree, corrupted)

    def test_non_permutation_raises(self, paper_figure1_tree):
        order = tuple(paper_figure1_tree.topological_order()[:-1])
        corrupted = OutOfCoreSchedule(Traversal(order, TOPDOWN), {})
        with pytest.raises(ReplayError, match="permutation"):
            replay_schedule(paper_figure1_tree, corrupted)
