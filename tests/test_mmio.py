"""Unit tests for the Matrix Market reader/writer."""

import numpy as np
import pytest
import scipy.io
import scipy.sparse as sp

from repro.sparse.matrices import grid_laplacian_2d, random_spd
from repro.sparse.mmio import read_matrix_market, write_matrix_market


class TestRoundTrip:
    def test_general_roundtrip(self, tmp_path):
        a = random_spd(25, density=0.1, seed=3)
        path = tmp_path / "m.mtx"
        write_matrix_market(a, path)
        b = read_matrix_market(path)
        assert np.allclose(a.toarray(), b.toarray())

    def test_symmetric_roundtrip(self, tmp_path):
        a = grid_laplacian_2d(5)
        path = tmp_path / "sym.mtx"
        write_matrix_market(a, path, symmetric=True)
        b = read_matrix_market(path)
        assert np.allclose(a.toarray(), b.toarray())

    def test_matches_scipy_reader(self, tmp_path):
        a = random_spd(20, density=0.15, seed=9)
        path = tmp_path / "cmp.mtx"
        write_matrix_market(a, path, symmetric=True)
        ours = read_matrix_market(path)
        scipys = sp.csc_matrix(scipy.io.mmread(str(path)))
        assert np.allclose(ours.toarray(), scipys.toarray())

    def test_reads_scipy_output(self, tmp_path):
        a = random_spd(20, density=0.15, seed=10)
        path = tmp_path / "scipy.mtx"
        scipy.io.mmwrite(str(path), sp.coo_matrix(a))
        ours = read_matrix_market(path)
        assert np.allclose(ours.toarray(), a.toarray())


class TestFormats:
    def test_pattern_field(self, tmp_path):
        path = tmp_path / "pattern.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 4\n"
            "1 1\n2 2\n3 3\n3 1\n"
        )
        a = read_matrix_market(path)
        assert a[0, 0] == 1.0
        assert a[2, 0] == 1.0 and a[0, 2] == 1.0

    def test_integer_field_and_comments(self, tmp_path):
        path = tmp_path / "int.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n"
            "% a comment line\n"
            "2 2 3\n"
            "1 1 4\n2 2 5\n2 1 -1\n"
        )
        a = read_matrix_market(path)
        assert a[1, 0] == -1.0
        assert a[0, 0] == 4.0

    def test_skew_symmetric(self, tmp_path):
        path = tmp_path / "skew.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        a = read_matrix_market(path)
        assert a[1, 0] == 3.0 and a[0, 1] == -3.0

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix market file\n1 1 1\n1 1 1\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_rejects_array_format(self, tmp_path):
        path = tmp_path / "arr.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_rejects_wrong_entry_count(self, tmp_path):
        path = tmp_path / "short.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_rejects_too_many_entries(self, tmp_path):
        # used to escape as a raw IndexError from the preallocated arrays
        path = tmp_path / "overlong.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 1 1.0\n2 2 2.0\n2 1 3.0\n"
        )
        with pytest.raises(ValueError, match="overlong.mtx"):
            read_matrix_market(path)

    def test_rejects_nonzero_skew_diagonal(self, tmp_path):
        # a_ii = -a_ii forces a zero diagonal; nonzero entries were silently kept
        path = tmp_path / "skewdiag.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 2\n"
            "2 1 3.0\n1 1 5.0\n"
        )
        with pytest.raises(ValueError, match="skewdiag.mtx"):
            read_matrix_market(path)

    def test_accepts_explicit_zero_skew_diagonal(self, tmp_path):
        path = tmp_path / "skewzero.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 2\n"
            "2 1 3.0\n1 1 0.0\n"
        )
        a = read_matrix_market(path)
        assert a[1, 0] == 3.0 and a[0, 1] == -3.0 and a[0, 0] == 0.0

    def test_reads_explicit_zero_fixture(self):
        from pathlib import Path

        path = Path(__file__).parent / "data" / "explicit_zero.mtx"
        a = read_matrix_market(path)
        assert a.shape == (4, 4)
        # the explicitly stored zero at (4, 2) survives the round trip
        assert a.nnz > np.count_nonzero(a.toarray())
