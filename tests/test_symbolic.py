"""Unit tests for the symbolic Cholesky factorization."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.etree import elimination_tree
from repro.sparse.matrices import banded_spd, grid_laplacian_2d, random_spd
from repro.sparse.symbolic import column_counts, column_patterns, symbolic_stats


def dense_factor_pattern(matrix):
    dense = sp.csc_matrix(matrix).toarray()
    l = np.linalg.cholesky(dense)
    return np.abs(l) > 1e-10


class TestColumnCounts:
    @pytest.mark.parametrize(
        "matrix",
        [grid_laplacian_2d(5), banded_spd(25, 3, seed=1), random_spd(35, 0.08, seed=2)],
        ids=["grid", "banded", "random"],
    )
    def test_matches_dense_factor(self, matrix):
        pattern = dense_factor_pattern(matrix)
        expected = pattern.sum(axis=0)
        assert np.array_equal(column_counts(matrix), expected)

    def test_accepts_precomputed_parent(self):
        a = grid_laplacian_2d(6)
        parent = elimination_tree(a)
        assert np.array_equal(column_counts(a), column_counts(a, parent))

    def test_diagonal_matrix(self):
        a = sp.identity(7, format="csc")
        assert np.array_equal(column_counts(a), np.ones(7, dtype=np.int64))

    def test_last_column_count_is_one(self):
        a = grid_laplacian_2d(5)
        assert column_counts(a)[-1] == 1


class TestColumnPatterns:
    @pytest.mark.parametrize(
        "matrix",
        [grid_laplacian_2d(4), banded_spd(20, 2, seed=3)],
        ids=["grid", "banded"],
    )
    def test_matches_dense_factor(self, matrix):
        ref = dense_factor_pattern(matrix)
        patterns = column_patterns(matrix)
        for j, rows in enumerate(patterns):
            expected = np.nonzero(ref[:, j])[0]
            expected = expected[expected > j]
            assert np.array_equal(rows, expected), f"column {j}"

    def test_consistent_with_counts(self):
        a = grid_laplacian_2d(5)
        counts = column_counts(a)
        patterns = column_patterns(a)
        for j in range(a.shape[0]):
            assert len(patterns[j]) + 1 == counts[j]


class TestStats:
    def test_nnz_and_flops(self):
        a = grid_laplacian_2d(5)
        stats = symbolic_stats(a)
        counts = column_counts(a)
        assert stats.nnz_l == counts.sum()
        assert stats.flops == pytest.approx(float(np.sum(counts.astype(float) ** 2)))
        assert stats.max_column_count == counts.max()
        assert stats.n == 25

    def test_fill_ratio_at_least_one(self):
        for matrix in (grid_laplacian_2d(6), random_spd(30, 0.1, seed=5)):
            assert symbolic_stats(matrix).fill_ratio >= 1.0
