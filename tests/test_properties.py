"""Property-based tests (hypothesis) on the core invariants of the library.

Each property mirrors a structural fact used in the paper:

* reversal maps valid bottom-up traversals to valid top-down traversals with
  the same peak memory (Section III-C);
* ``PostOrder >= Liu = MinMem >= max MemReq`` on every tree;
* the replacement-model and Liu-model reductions preserve the memory
  semantics they encode;
* out-of-core schedules produced by every heuristic are accepted by the
  paper's Algorithm 2 with the advertised I/O volume, which never drops below
  the lower bounds;
* serialization round-trips.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.builders import from_parent_list, from_replacement_model
from repro.core.liu import liu_min_memory, liu_optimal_traversal
from repro.core.minio import (
    HEURISTICS,
    divisible_lower_bound,
    memory_deficit_lower_bound,
    run_out_of_core,
)
from repro.core.minmem import min_mem
from repro.core.postorder import best_postorder, postorder_with_rule
from repro.core.serialize import tree_from_dict, tree_to_dict
from repro.core.traversal import (
    check_in_core,
    check_out_of_core,
    is_postorder,
    is_topological,
    peak_memory,
)
from repro.core.tree import Tree


@st.composite
def task_trees(draw, max_nodes: int = 24, max_f: int = 12, max_n: int = 6):
    """Random task trees: random parent attachment plus integer weights."""
    size = draw(st.integers(min_value=1, max_value=max_nodes))
    f = [draw(st.integers(min_value=0, max_value=max_f))]
    n = [draw(st.integers(min_value=0, max_value=max_n))]
    parents = [None]
    for i in range(1, size):
        parents.append(draw(st.integers(min_value=0, max_value=i - 1)))
        f.append(draw(st.integers(min_value=0, max_value=max_f)))
        n.append(draw(st.integers(min_value=0, max_value=max_n)))
    return from_parent_list(parents, f=f, n=n)


@st.composite
def trees_with_memory(draw):
    """A tree plus a feasible main-memory size for out-of-core experiments."""
    tree = draw(task_trees(max_nodes=16))
    slack = draw(st.integers(min_value=0, max_value=20))
    return tree, tree.max_mem_req() + slack


class TestMinMemoryProperties:
    @given(task_trees())
    @settings(max_examples=120, deadline=None)
    def test_algorithm_ordering(self, tree: Tree):
        """max MemReq <= Liu = MinMem <= PostOrder for every tree."""
        liu = liu_min_memory(tree)
        minmem = min_mem(tree).memory
        postorder = best_postorder(tree).memory
        assert liu == min(liu, minmem, postorder)
        assert abs(liu - minmem) <= 1e-9 * max(1.0, liu)
        assert tree.max_mem_req() <= liu + 1e-9
        assert postorder >= liu - 1e-9

    @given(task_trees())
    @settings(max_examples=80, deadline=None)
    def test_witness_traversals(self, tree: Tree):
        """Every solver returns a feasible traversal matching its value."""
        for result_memory, traversal in (
            (best_postorder(tree).memory, best_postorder(tree).traversal),
            (liu_optimal_traversal(tree).memory, liu_optimal_traversal(tree).traversal),
            (min_mem(tree).memory, min_mem(tree).traversal),
        ):
            assert is_topological(tree, traversal)
            assert peak_memory(tree, traversal) == peak_memory(tree, traversal.reversed())
            assert abs(peak_memory(tree, traversal) - result_memory) <= 1e-9
            assert check_in_core(tree, result_memory, traversal)
            assert not check_in_core(tree, result_memory - 1e-3, traversal) or (
                result_memory - 1e-3 >= peak_memory(tree, traversal)
            )

    @given(task_trees())
    @settings(max_examples=80, deadline=None)
    def test_postorder_traversals_are_postorders(self, tree: Tree):
        for rule in ("liu", "subtree_memory", "natural"):
            result = postorder_with_rule(tree, rule)
            assert is_postorder(tree, result.traversal)

    @given(task_trees(max_nodes=16))
    @settings(max_examples=60, deadline=None)
    def test_replacement_model_reduction(self, tree: Tree):
        """MemReq under the reduction equals max(f_i, sum of children files)."""
        reduced = from_replacement_model(tree)
        for node in tree.nodes():
            expected = max(tree.f(node), sum(tree.f(c) for c in tree.children(node)))
            assert reduced.mem_req(node) == expected

    @given(task_trees(max_nodes=20))
    @settings(max_examples=60, deadline=None)
    def test_uniform_scaling(self, tree: Tree):
        """Scaling every file size by a constant scales the optimum."""
        scaled = tree.copy()
        for node in scaled.nodes():
            scaled.set_f(node, 3.0 * tree.f(node))
            scaled.set_n(node, 3.0 * tree.n(node))
        assert liu_min_memory(scaled) == 3.0 * liu_min_memory(tree)


class TestMinIOProperties:
    @given(trees_with_memory(), st.sampled_from(sorted(HEURISTICS)))
    @settings(max_examples=100, deadline=None)
    def test_schedules_valid_and_bounded(self, tree_memory, heuristic):
        tree, memory = tree_memory
        result = min_mem(tree)
        out = run_out_of_core(tree, memory, result.traversal, heuristic)
        ok, io = check_out_of_core(tree, memory, out.schedule)
        assert ok
        assert io == out.io_volume
        assert out.io_volume <= tree.total_file_size() + 1e-9
        assert out.io_volume >= memory_deficit_lower_bound(tree, memory) - 1e-9
        assert out.io_volume >= divisible_lower_bound(tree, memory, result.traversal) - 1e-9
        if memory >= result.memory:
            assert out.io_volume == 0.0

    @given(trees_with_memory())
    @settings(max_examples=60, deadline=None)
    def test_lsnf_matches_divisible_bound_for_unit_files(self, tree_memory):
        """With unit files the divisible bound is achieved exactly by LSNF."""
        tree, _ = tree_memory
        unit = tree.copy()
        for node in unit.nodes():
            unit.set_f(node, 1.0)
            unit.set_n(node, 0.0)
        traversal = min_mem(unit).traversal
        memory = unit.max_mem_req()
        lsnf = run_out_of_core(unit, memory, traversal, "lsnf").io_volume
        bound = divisible_lower_bound(unit, memory, traversal)
        assert lsnf == bound


class TestSerializationProperties:
    @given(task_trees())
    @settings(max_examples=80, deadline=None)
    def test_tree_roundtrip(self, tree: Tree):
        assert tree_from_dict(tree_to_dict(tree)) == tree
