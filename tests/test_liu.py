"""Unit tests for Liu's exact MinMemory algorithm (hill--valley segments)."""

import pytest

from repro.core.bruteforce import optimal_min_memory
from repro.core.builders import chain_tree, from_parent_list, star_tree
from repro.core.liu import flatten_nodes, liu_min_memory, liu_optimal_traversal
from repro.core.postorder import best_postorder
from repro.core.traversal import check_in_core, is_topological, peak_memory
from repro.generators.harpoon import harpoon_tree, optimal_memory_bound

from _helpers import make_random_tree


class TestBasics:
    def test_single_node(self):
        t = from_parent_list([None], f=[2.0], n=[3.0])
        res = liu_optimal_traversal(t)
        assert res.memory == pytest.approx(5.0)
        assert list(res.traversal.order) == [0]
        assert len(res.segments) == 1

    def test_chain(self):
        t = chain_tree(6, f=2.0, n=0.0)
        assert liu_min_memory(t) == pytest.approx(4.0)

    def test_star(self):
        t = star_tree(5, root_f=1.0, leaf_f=2.0)
        assert liu_min_memory(t) == pytest.approx(11.0)

    def test_traversal_is_witness(self, rng):
        for _ in range(40):
            t = make_random_tree(rng.randint(1, 30), rng)
            res = liu_optimal_traversal(t)
            assert is_topological(t, res.traversal)
            assert peak_memory(t, res.traversal) == pytest.approx(res.memory)
            assert check_in_core(t, res.memory, res.traversal)

    def test_flatten_nodes(self):
        nested = ((1, (2, 3)), 4, ((5,),))
        assert flatten_nodes(nested) == [1, 2, 3, 4, 5]


class TestOptimality:
    def test_matches_bruteforce(self, rng):
        for _ in range(80):
            t = make_random_tree(rng.randint(1, 10), rng)
            assert liu_min_memory(t) == pytest.approx(optimal_min_memory(t))

    def test_never_worse_than_postorder(self, rng):
        for _ in range(40):
            t = make_random_tree(rng.randint(1, 40), rng)
            assert liu_min_memory(t) <= best_postorder(t).memory + 1e-9

    def test_beats_postorder_on_harpoon(self):
        t = harpoon_tree(4, memory=1.0, epsilon=0.01)
        liu = liu_min_memory(t)
        post = best_postorder(t).memory
        assert liu == pytest.approx(optimal_memory_bound(4, 1, 1.0, 0.01))
        assert liu < post


class TestSegments:
    def test_canonical_shape(self, rng):
        """Hills are non-increasing and valleys non-decreasing."""
        for _ in range(30):
            t = make_random_tree(rng.randint(1, 25), rng)
            res = liu_optimal_traversal(t)
            hills = [s.hill for s in res.segments]
            valleys = [s.valley for s in res.segments]
            assert hills == sorted(hills, reverse=True)
            assert valleys == sorted(valleys)
            # the last valley is the root file left in memory
            assert valleys[-1] == pytest.approx(t.f(t.root))
            assert hills[0] == pytest.approx(res.memory)

    def test_segment_nodes_partition_tree(self, rng):
        for _ in range(20):
            t = make_random_tree(rng.randint(1, 25), rng)
            res = liu_optimal_traversal(t)
            nodes = [v for seg in res.segments for v in flatten_nodes(seg.nodes)]
            assert sorted(nodes, key=str) == sorted(t.nodes(), key=str)

    def test_subtree_peaks_consistent(self, rng):
        for _ in range(20):
            t = make_random_tree(rng.randint(1, 20), rng)
            res = liu_optimal_traversal(t)
            assert res.subtree_peak[t.root] == pytest.approx(res.memory)
            for v in t.nodes():
                assert res.subtree_peak[v] >= t.f(v) - 1e-9


class TestScalability:
    def test_deep_chain(self):
        t = chain_tree(20000, f=1.0, n=0.0)
        assert liu_min_memory(t) == pytest.approx(2.0)

    def test_wide_star(self):
        t = star_tree(5000, root_f=0.0, leaf_f=1.0)
        assert liu_min_memory(t) == pytest.approx(5000.0)
