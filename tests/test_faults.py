"""Tests for the deterministic fault-injection layer (repro.faults).

Three tiers, mirroring the package:

* unit tests of the plan / retry-policy / circuit-breaker primitives;
* injector semantics (position bookkeeping, re-submission immunity,
  worker-kill degradation, submit-side delivery);
* end-to-end chaos campaigns through ``bench.run_scenarios`` -- seeded
  faults on the threads and persistent pools, checkpoint/resume -- whose
  acceptance criterion is always the same: exactly one record per cell,
  bit-identical to the fault-free run, counters matching the injected plan.
"""

import pickle
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.bench import JournalError, run_scenarios, select_scenarios
from repro.core.builders import chain_tree
from repro.faults import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    FaultyBackend,
    RetryBudget,
    RetryPolicy,
    TransientSolverError,
    classify_fault,
    parse_faults,
)
from repro.faults.injector import FAULT_OPTION_KEY
from repro.solvers.engine.backends import ExecutorUnavailable, create_backend
from repro.solvers.engine.pool import PersistentPool


def _can_spawn_workers() -> bool:
    pool = PersistentPool()
    try:
        return pool.ensure(2) is not None
    finally:
        pool.shutdown()


def _stable(record):
    """A record's identity minus wall-clock noise (timings vary per run)."""
    return (
        record.key, record.nodes, record.peak_memory, record.io_volume,
        record.optimality_ratio, record.memory_limit, record.budget_fraction,
        record.replay_ok, record.replay_error, record.repeats,
    )


# ----------------------------------------------------------------------
# plan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_seeded_plans_are_deterministic(self):
        a = FaultPlan.seeded(42, 100, worker_kill=1, straggler=2, transient=3)
        b = FaultPlan.seeded(42, 100, worker_kill=1, straggler=2, transient=3)
        assert a.specs == b.specs
        assert a.counts() == {"worker_kill": 1, "straggler": 2, "transient": 3}
        # distinct positions (sampling is without replacement)
        positions = [s.at for s in a.specs]
        assert len(set(positions)) == len(positions)
        different = FaultPlan.seeded(43, 100, worker_kill=1, straggler=2,
                                     transient=3)
        assert different.specs != a.specs

    def test_seeded_rejects_overfull_plans(self):
        with pytest.raises(ValueError, match="cannot place"):
            FaultPlan.seeded(0, 2, transient=3)

    def test_parse_round_trips_describe(self):
        plan = parse_faults("kill@3,straggler@5:0.2,transient@9")
        assert plan.counts() == {"worker_kill": 1, "straggler": 1,
                                 "transient": 1}
        assert [s.at for s in plan.specs] == [3, 5, 9]
        assert parse_faults(plan.describe()).specs == plan.specs

    @pytest.mark.parametrize("bad,match", [
        ("kill", "kind@position"),
        ("kill@x", "position"),
        ("kill@3:soon", "delay"),
        ("nope@1", "unknown fault kind"),
        (" , ", "names no faults"),
    ])
    def test_parse_rejects_malformed_specs(self, bad, match):
        with pytest.raises(ValueError, match=match):
            parse_faults(bad)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode", 0)
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec("transient", -1)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_classify_fault_taxonomy(self):
        assert classify_fault(BrokenProcessPool("x")) == "broken_pool"
        assert classify_fault(pickle.PicklingError("x")) == "pickling"
        assert classify_fault(TransientSolverError("x")) == "transient"
        assert classify_fault(TimeoutError("x")) == "timeout"
        assert classify_fault(ExecutorUnavailable("x")) == "unavailable"
        assert classify_fault(ValueError("x")) == "solver"

    def test_retryability_and_attempt_cap(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry("transient", 1)
        assert policy.should_retry("broken_pool", 2)
        assert not policy.should_retry("transient", 3)   # attempts exhausted
        assert not policy.should_retry("pickling", 1)    # deterministic fault
        assert not policy.should_retry("solver", 1)      # caller's problem

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.5, multiplier=2.0,
                             jitter=0.5)
        first = policy.delay(1, key="unit:0-10")
        assert first == policy.delay(1, key="unit:0-10")  # same key, same jitter
        assert first != policy.delay(1, key="unit:10-20")
        assert 0.0 < first <= 0.5
        # exponential growth until the cap
        assert policy.delay(6, key="k") <= 0.5 * 1.25

    def test_budget_bounds_total_retries(self):
        budget = RetryBudget(2)
        policy = RetryPolicy(max_attempts=10)
        taken = [policy.should_retry("transient", 1, budget) for _ in range(4)]
        assert taken == [True, True, False, False]
        assert budget.exhausted


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _stepped(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0,
                                 clock=lambda: clock[0])
        return breaker, clock

    def test_opens_after_consecutive_failures_only(self):
        breaker, _ = self._stepped()
        breaker.record_failure()
        breaker.record_success()  # success resets the consecutive count
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.rejections == 1

    def test_cooldown_half_open_probe_then_close(self):
        breaker, clock = self._stepped()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock[0] = 5.0
        assert not breaker.allow()  # cooldown not yet expired
        clock[0] = 10.0
        assert breaker.allow()      # the half-open probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # only one probe in flight
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.snapshot()["transitions"] == {
            "closed->open": 1, "open->half_open": 1, "half_open->closed": 1,
        }

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        breaker, clock = self._stepped()
        breaker.record_failure()
        breaker.record_failure()
        clock[0] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock[0] = 19.0
        assert not breaker.allow()  # cooldown restarted at t=10
        clock[0] = 20.0
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_state_codes_are_stable(self):
        breaker, _ = self._stepped()
        assert breaker.state_code == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state_code == 1


# ----------------------------------------------------------------------
# injector
# ----------------------------------------------------------------------
class TestFaultyBackend:
    def _cells(self, n):
        return [(chain_tree(4), "minmem", None, {}) for _ in range(n)]

    def test_worker_fault_rides_in_options_and_solves(self):
        plan = FaultPlan([FaultSpec("straggler", 1, 0.0)])
        backend = FaultyBackend(create_backend("serial"), plan)
        cells = self._cells(3)
        reports = backend.map_cells(cells, workers=1)
        assert len(reports) == 3
        assert backend.injected == {"straggler": 1}
        # the armed option never leaks into the caller's cells
        assert all(FAULT_OPTION_KEY not in cell[3] for cell in cells)
        backend.shutdown()

    def test_resubmission_neither_advances_nor_refires(self):
        plan = FaultPlan([FaultSpec("transient", 0)])
        backend = FaultyBackend(create_backend("serial"), plan)
        cells = self._cells(2)
        with pytest.raises(TransientSolverError):
            backend.map_cells(cells, workers=1)
        # the retry (same cell objects) sails through: the fault was
        # consumed, and positions did not advance past the plan
        reports = backend.map_cells(cells, workers=1)
        assert len(reports) == 2
        assert backend.injected == {"transient": 1}
        assert backend.snapshot()["faults"]["cells_seen"] == 2
        backend.shutdown()

    def test_worker_kill_degrades_on_in_process_backends(self):
        plan = FaultPlan([FaultSpec("worker_kill", 0)])
        backend = FaultyBackend(create_backend("serial"), plan)
        # an in-process backend cannot lose a worker: the kill becomes a
        # transient solver error instead of os._exit
        with pytest.raises(TransientSolverError):
            backend.map_cells(self._cells(1), workers=1)
        backend.shutdown()

    def test_submit_side_faults_surface_as_planned(self):
        plan = FaultPlan([
            FaultSpec("pickling", 0), FaultSpec("shm", 1),
            FaultSpec("broken_pool", 2),
        ])
        backend = FaultyBackend(create_backend("threads"), plan)
        cells = self._cells(3)
        failed = backend.submit_cell(cells[0], workers=1)
        assert isinstance(failed, Future)
        with pytest.raises(pickle.PicklingError):
            failed.result()
        with pytest.raises(ExecutorUnavailable):
            backend.submit_cell(cells[1], workers=1)  # shm raises eagerly
        broken = backend.submit_cell(cells[2], workers=1)
        with pytest.raises(BrokenProcessPool):
            broken.result()
        assert backend.injected == {"pickling": 1, "shm": 1, "broken_pool": 1}
        backend.shutdown()

    def test_mirrors_inner_identity(self):
        backend = FaultyBackend(create_backend("threads"), FaultPlan())
        inner = backend.inner
        assert (backend.name, backend.releases_gil, backend.service) == (
            inner.name, inner.releases_gil, inner.service
        )
        backend.shutdown()


# ----------------------------------------------------------------------
# chaos campaigns (the tentpole acceptance check)
# ----------------------------------------------------------------------
class TestChaosCampaigns:
    SCENARIOS = select_scenarios("assembly")

    def _baseline(self):
        return run_scenarios(self.SCENARIOS, seed=0, repeat=1)

    def test_threads_campaign_bit_identical_under_chaos(self):
        baseline = self._baseline()
        plan = FaultPlan.seeded(7, 40, transient=2, straggler=1,
                                straggler_delay=0.01)
        chaotic = run_scenarios(
            self.SCENARIOS, seed=0, repeat=1, workers=2, pool="threads",
            fault_plan=plan,
        )
        assert [_stable(r) for r in chaotic.records] == [
            _stable(r) for r in baseline.records
        ]
        faults = chaotic.extras["faults"]
        assert faults["injected"] == plan.counts()
        assert faults["plan"] == plan.describe()
        assert chaotic.extras["unit_retries"] >= 2  # both transients retried

    @pytest.mark.skipif(not _can_spawn_workers(),
                        reason="platform cannot spawn worker processes")
    def test_persistent_campaign_survives_worker_kill(self):
        baseline = self._baseline()
        plan = FaultPlan.seeded(11, 40, worker_kill=1, transient=1)
        chaotic = run_scenarios(
            self.SCENARIOS, seed=0, repeat=1, workers=2, pool="persistent",
            fault_plan=plan,
        )
        assert [_stable(r) for r in chaotic.records] == [
            _stable(r) for r in baseline.records
        ]
        assert chaotic.extras["faults"]["injected"] == plan.counts()
        assert chaotic.extras["unit_retries"] >= 1

    def test_shm_fault_degrades_in_process_with_one_warning(self):
        # the shm fault raises ExecutorUnavailable at submit: the engine
        # warns exactly once, completes the unit in-process, and the run
        # stays bit-identical
        baseline = self._baseline()
        plan = FaultPlan([FaultSpec("shm", 0)])
        with pytest.warns(RuntimeWarning) as caught:
            chaotic = run_scenarios(
                self.SCENARIOS, seed=0, repeat=1, workers=2, pool="threads",
                fault_plan=plan,
            )
        unavailable = [w for w in caught
                       if "warned once per engine" in str(w.message)]
        assert len(unavailable) == 1
        assert [_stable(r) for r in chaotic.records] == [
            _stable(r) for r in baseline.records
        ]
        assert chaotic.extras["faults"]["injected"] == {"shm": 1}


# ----------------------------------------------------------------------
# warn-once degradation + engine retry loop, per backend
# ----------------------------------------------------------------------
class TestEngineDegradation:
    def _cells(self, n):
        return [(chain_tree(4 + i), "minmem", None, {}) for i in range(n)]

    def test_threads_backend_warns_once_then_stays_silent(self):
        from repro.solvers.engine import SolveEngine
        from repro.solvers.facade import _solve_task

        plan = FaultPlan([FaultSpec("shm", 0), FaultSpec("shm", 2)])
        engine = SolveEngine(
            backend=FaultyBackend(create_backend("threads"), plan)
        )
        try:
            cells = self._cells(6)
            with pytest.warns(RuntimeWarning, match="warned once per engine"):
                assert engine.run_batch(cells[0:2], 2) is None
            # second unavailable batch: counted, not warned again
            import warnings as _warnings

            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                assert engine.run_batch(cells[2:4], 2) is None
            assert engine.serial_fallbacks == 2
            # the engine stays usable once the plan is spent, and its
            # reports match in-process execution bit for bit
            healthy = engine.run_batch(cells[4:6], 2)
            assert healthy == [_solve_task(c) for c in cells[4:6]]
        finally:
            engine.shutdown()

    def test_run_batch_retries_transient_faults(self):
        from repro.solvers.engine import SolveEngine
        from repro.solvers.facade import _solve_task

        plan = FaultPlan([FaultSpec("transient", 1)])
        engine = SolveEngine(
            backend=FaultyBackend(create_backend("threads"), plan)
        )
        try:
            cells = self._cells(3)
            reports = engine.run_batch(cells, 2)
            assert reports == [_solve_task(c) for c in cells]
            assert engine.retries == 1
            assert engine.snapshot()["retries"] == 1
        finally:
            engine.shutdown()

    def test_dask_unavailable_raises_typed_error_eagerly(self):
        try:
            import distributed  # noqa: F401

            pytest.skip("dask.distributed is installed")
        except ImportError:
            pass
        from repro.solvers import BackendUnavailableError, solve_many
        from repro.core.builders import star_tree

        # a missing optional dependency is a configuration mistake, not a
        # runtime degradation: it raises the typed error instead of the
        # warn-once serial fallback reserved for platform unavailability
        with pytest.raises(BackendUnavailableError, match="distributed"):
            solve_many([chain_tree(5), star_tree(6)], "minmem",
                       workers=2, pool="dask")


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    SCENARIOS = select_scenarios("assembly")

    def test_resume_skips_cells_and_stays_bit_identical(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        full = run_scenarios(self.SCENARIOS, seed=0, repeat=1,
                             checkpoint=journal)
        lines = journal.read_text().splitlines()
        cells = full.extras["checkpoint_cells"]
        assert len(lines) == cells + 1  # header + one line per cell
        # simulate an interrupt: keep the header and the first 10 cells
        journal.write_text("\n".join(lines[:11]) + "\n")
        resumed = run_scenarios(self.SCENARIOS, seed=0, repeat=1,
                                resume=journal)
        assert resumed.extras["resumed_cells"] == 10
        assert resumed.extras["checkpoint_cells"] == cells - 10
        assert [_stable(r) for r in resumed.records] == [
            _stable(r) for r in full.records
        ]
        # the journal grew back to a complete record of the campaign
        assert len(journal.read_text().splitlines()) == cells + 1

    def test_resume_tolerates_a_torn_tail(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        full = run_scenarios(self.SCENARIOS, seed=0, repeat=1,
                             checkpoint=journal)
        text = journal.read_text()
        torn = text[: len(text) - 40]  # cut mid-JSON through the last line
        journal.write_text(torn)
        resumed = run_scenarios(self.SCENARIOS, seed=0, repeat=1,
                                resume=journal)
        assert [_stable(r) for r in resumed.records] == [
            _stable(r) for r in full.records
        ]

    def test_resume_refuses_mismatched_params(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        run_scenarios(self.SCENARIOS, seed=0, repeat=1, checkpoint=journal)
        with pytest.raises(JournalError, match="seed"):
            run_scenarios(self.SCENARIOS, seed=1, repeat=1, resume=journal)

    def test_conflicting_checkpoint_and_resume_paths_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="different files"):
            run_scenarios(self.SCENARIOS, seed=0, repeat=1,
                          checkpoint=tmp_path / "a.jsonl",
                          resume=tmp_path / "b.jsonl")


# ----------------------------------------------------------------------
# exactly-one-reset under concurrency (PersistentPool.invalidate)
# ----------------------------------------------------------------------
class TestPoolInvalidate:
    def test_concurrent_observers_reset_exactly_once(self):
        import threading

        pool = PersistentPool()
        executor = pool.ensure(2)
        if executor is None:
            pytest.skip("platform cannot spawn worker processes")
        try:
            results = []
            barrier = threading.Barrier(4)

            def observer():
                barrier.wait()
                results.append(pool.invalidate(executor))

            threads = [threading.Thread(target=observer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # every observer saw the same broken executor, one reset won
            assert sorted(results) == [False, False, False, True]
            assert pool.snapshot()["resets"] == 1
            # a stale invalidation (executor already replaced) is a no-op
            replacement = pool.ensure(2)
            assert replacement is not executor
            assert pool.invalidate(executor) is False
            assert pool.snapshot()["resets"] == 1
        finally:
            pool.shutdown()
