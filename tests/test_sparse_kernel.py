"""Kernel-vs-reference equivalence of the vectorized sparse symbolic layer.

The ``engine="kernel"`` implementations of :func:`elimination_tree`,
:func:`column_counts`, :func:`column_patterns` and :func:`amalgamate` must be
bit-identical to the per-entry reference oracles on every matrix: random
SPD patterns (property-based via hypothesis), regular grids, and the
deterministic paper-suite matrices of :func:`repro.analysis.datasets.matrix_suite`.
The counts/patterns cross-validation ``counts[j] == len(patterns[j]) + 1``
closes the loop between the two independent algorithms.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.analysis.datasets import matrix_suite
from repro.sparse.amalgamation import amalgamate
from repro.sparse.assembly import build_assembly_tree
from repro.sparse.etree import elimination_tree, etree_levels, etree_to_task_tree
from repro.sparse.matrices import (
    anisotropic_laplacian_2d,
    banded_spd,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_spd,
)
from repro.sparse.symbolic import column_counts, column_patterns, symbolic_stats


def _assert_engines_agree(matrix, relaxed=(0, 1, 4)):
    """All four symbolic stages must match the reference bit for bit."""
    parent_k = elimination_tree(matrix, engine="kernel")
    parent_r = elimination_tree(matrix, engine="reference")
    assert np.array_equal(parent_k, parent_r)

    counts_k = column_counts(matrix, parent_k, engine="kernel")
    counts_r = column_counts(matrix, parent_r, engine="reference")
    assert np.array_equal(counts_k, counts_r)

    patterns_k = column_patterns(matrix, parent_k, engine="kernel")
    patterns_r = column_patterns(matrix, parent_r, engine="reference")
    assert len(patterns_k) == len(patterns_r)
    for col_k, col_r in zip(patterns_k, patterns_r):
        assert col_k.dtype == col_r.dtype == np.int64
        assert np.array_equal(col_k, col_r)

    # cross-validation between the two independent symbolic algorithms
    for j in range(matrix.shape[0]):
        assert counts_k[j] == len(patterns_k[j]) + 1

    for budget in relaxed:
        am_k = amalgamate(parent_k, counts_k, relaxed=budget, engine="kernel")
        am_r = amalgamate(parent_r, counts_r, relaxed=budget, engine="reference")
        assert am_k.supernodes == am_r.supernodes
        assert np.array_equal(am_k.parent, am_r.parent)
        assert np.array_equal(am_k.column_to_supernode, am_r.column_to_supernode)


@st.composite
def random_symmetric_patterns(draw):
    """Random sparse symmetric matrices, sometimes reducible (forests)."""
    n = draw(st.integers(min_value=1, max_value=40))
    density = draw(st.floats(min_value=0.0, max_value=0.3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    b = sp.random(n, n, density=density, random_state=rng, format="coo")
    return sp.csc_matrix(b + b.T + sp.identity(n))


class TestEngineEquivalenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(matrix=random_symmetric_patterns())
    def test_random_matrices(self, matrix):
        _assert_engines_agree(matrix, relaxed=(1,))

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=8, max_value=60),
        bandwidth=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_banded_matrices(self, n, bandwidth, seed):
        _assert_engines_agree(banded_spd(n, bandwidth, seed=seed), relaxed=(0, 2))


class TestEngineEquivalenceSuites:
    @pytest.mark.parametrize(
        "matrix",
        [
            grid_laplacian_2d(7),
            grid_laplacian_2d(6, stencil=9),
            grid_laplacian_3d(4),
            anisotropic_laplacian_2d(6),
            random_spd(48, density=0.08, seed=11),
            sp.identity(9, format="csc"),  # diagonal: a forest of singletons
        ],
        ids=["grid2d", "grid2d-9pt", "grid3d", "aniso", "random", "diagonal"],
    )
    def test_grid_and_structured(self, matrix):
        _assert_engines_agree(matrix)

    def test_paper_suite(self):
        for name, matrix in matrix_suite("tiny"):
            _assert_engines_agree(matrix, relaxed=(1,))

    def test_counts_match_stats_both_engines(self):
        matrix = grid_laplacian_2d(8)
        stats_k = symbolic_stats(matrix, engine="kernel")
        stats_r = symbolic_stats(matrix, engine="reference")
        assert stats_k == stats_r

    def test_unknown_engine_rejected(self):
        matrix = grid_laplacian_2d(3)
        with pytest.raises(ValueError, match="engine"):
            elimination_tree(matrix, engine="numpy")
        with pytest.raises(ValueError, match="engine"):
            column_counts(matrix, engine="")
        with pytest.raises(ValueError, match="engine"):
            column_patterns(matrix, engine="Kernel")
        with pytest.raises(ValueError, match="engine"):
            amalgamate([-1], [1], engine="fast")


class TestEtreeLevels:
    def test_cycle_raises_instead_of_hanging(self):
        from repro.core.tree import TreeValidationError

        # the historical builder raised TreeValidationError, so callers
        # catching it (or plain ValueError) must keep working
        with pytest.raises(TreeValidationError, match="cycle"):
            etree_levels([1, 2, 0])  # 3-cycle: no fixed point to converge to
        with pytest.raises(ValueError, match="cycle"):
            etree_levels([0])  # self-loop
        with pytest.raises(TreeValidationError, match="cycle"):
            etree_levels([1, 0])  # even cycle: converges to a bogus fixed point
        with pytest.raises(TreeValidationError, match="cycle"):
            etree_levels([-1, 0, 3, 2])  # valid tree + detached even cycle
        with pytest.raises(TreeValidationError, match="cycle"):
            etree_to_task_tree([1, 2, 0])

    def test_postorder_roots_increasing_for_any_negative_marker(self):
        from repro.sparse.etree import etree_postorder

        # any negative parent value marks a root; roots must still come out
        # in increasing vertex order (as the historical implementation did)
        assert list(etree_postorder([-1, -2])) == [0, 1]
        assert list(etree_postorder([-3, 2, -1])) == [0, 1, 2]

    def test_levels_match_reference_climb(self):
        parent = elimination_tree(random_spd(40, density=0.1, seed=5))
        levels = etree_levels(parent)
        for v in range(len(parent)):
            depth, u = 0, v
            while parent[u] >= 0:
                depth += 1
                u = parent[u]
            assert levels[v] == depth


class TestTaskTreeKernelCache:
    def test_from_parents_precaches_kernel(self):
        parent = elimination_tree(grid_laplacian_2d(5))
        tree = etree_to_task_tree(parent, f=[1.0] * 25, n_weights=[2.0] * 25)
        assert tree._kernel is not None  # cached at construction time
        kern = tree.kernel()
        assert kern is tree._kernel
        # the pre-cached kernel must agree with a fresh BFS relabeling
        from repro.core.kernel import TreeKernel

        fresh = TreeKernel.from_tree(tree)
        by_id = {kern.ids[i]: i for i in range(kern.size)}
        for node in tree.nodes():
            i, j = by_id[node], fresh.index[node]
            assert kern.f[i] == fresh.f[j] and kern.n[i] == fresh.n[j]
            assert kern.mem_req[i] == fresh.mem_req[j]

    def test_forest_gets_cached_kernel_too(self):
        parent = elimination_tree(sp.identity(6, format="csc"))
        tree = etree_to_task_tree(parent)
        assert tree._kernel is not None
        assert tree.root == -1


class TestPipelineEngines:
    def test_build_assembly_tree_engines_identical(self):
        matrix = grid_laplacian_2d(12)
        for ordering in ("natural", "rcm"):
            res_k = build_assembly_tree(matrix, ordering=ordering, relaxed=2,
                                        engine="kernel")
            res_r = build_assembly_tree(matrix, ordering=ordering, relaxed=2,
                                        engine="reference")
            assert res_k.tree == res_r.tree
            assert np.array_equal(res_k.etree_parent, res_r.etree_parent)
            assert np.array_equal(res_k.counts, res_r.counts)
            assert res_k.symbolic == res_r.symbolic
            assert res_k.amalgamated.supernodes == res_r.amalgamated.supernodes
