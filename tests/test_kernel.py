"""Tests for the array-backed tree kernel (:mod:`repro.core.kernel`).

Three layers of coverage:

* representation: ``TreeKernel`` construction, caching on :class:`Tree`,
  round-trips, and the bulk :meth:`Tree.from_parents` builder;
* equivalence: every registered solver run with ``engine="kernel"`` and
  ``engine="reference"`` on random and adversarial trees must agree on peak
  memory, I/O volume and the traversal itself, and both engines' schedules
  must validate under both replay engines;
* scale regression: a 100k-node chain and a ~100k-node iterated harpoon
  solve with every registered algorithm under the default interpreter
  recursion limit (the hot paths are explicit-stack iterative).
"""

from __future__ import annotations

import math
import pickle
import random
import sys

import pytest

from _helpers import make_random_tree
from repro.bench.replay import ReplayError, replay_report
from repro.core.builders import chain_tree, star_tree
from repro.core.explore import ExploreSolver
from repro.core.kernel import KernelExploreSolver, TreeKernel
from repro.core.liu import liu_optimal_traversal
from repro.core.minmem import min_mem
from repro.core.postorder import postorder_with_rule
from repro.core.tree import Tree, TreeValidationError
from repro.generators.harpoon import iterated_harpoon_tree
from repro.generators.random_trees import (
    random_attachment_tree,
    random_binary_tree,
    random_caterpillar,
    random_recent_attachment_tree,
)
from repro.solvers import list_solvers, solve


def sample_trees():
    """A diverse bag of small trees exercising every structural corner."""
    rng = random.Random(20110527)
    trees = [
        chain_tree(1, f=3.0, n=1.0),
        chain_tree(60, f=2.0, n=1.0),
        star_tree(40, leaf_f=3.0, n=1.0),
        iterated_harpoon_tree(3, levels=3, memory=27.0, epsilon=0.5),
        random_attachment_tree(130, seed=7),
        random_recent_attachment_tree(130, seed=8, window=5),
        random_binary_tree(33, seed=9),
        random_caterpillar(25, seed=10),
    ]
    trees += [make_random_tree(60, rng) for _ in range(4)]
    trees += [make_random_tree(60, rng, window=4) for _ in range(4)]
    return trees


# ----------------------------------------------------------------------
# representation
# ----------------------------------------------------------------------
class TestTreeKernel:
    def test_from_tree_layout(self):
        tree = Tree()
        tree.add_node("r", f=1.0, n=0.5)
        tree.add_node("a", parent="r", f=2.0, n=0.0)
        tree.add_node("b", parent="r", f=3.0, n=0.25)
        tree.add_node("c", parent="a", f=4.0, n=0.0)
        kern = tree.kernel()
        assert kern.size == 4
        assert kern.ids[0] == "r" and kern.parent[0] == -1
        # children keep insertion order
        assert [kern.ids[i] for i in kern.children(0)] == ["a", "b"]
        assert kern.f[kern.index["c"]] == 4.0
        assert kern.mem_req[0] == pytest.approx(1.0 + 0.5 + 2.0 + 3.0)
        assert kern.child_f_sum[kern.index["a"]] == pytest.approx(4.0)
        assert kern.max_mem_req() == pytest.approx(tree.max_mem_req())

    def test_cache_and_invalidation(self):
        tree = chain_tree(5, f=1.0, n=1.0)
        kern = tree.kernel()
        assert tree.kernel() is kern  # cached
        tree.set_f(3, 7.0)
        kern2 = tree.kernel()
        assert kern2 is not kern
        assert kern2.f[3] == 7.0
        tree.add_node(5, parent=4, f=1.0, n=0.0)
        assert tree.kernel().size == 6

    def test_to_tree_round_trip(self):
        for tree in sample_trees():
            back = tree.kernel().to_tree()
            assert back == tree

    def test_pickle_round_trip(self):
        tree = random_attachment_tree(40, seed=3)
        kern = tree.kernel()
        clone = pickle.loads(pickle.dumps(kern))
        assert clone.ids == kern.ids
        assert clone.parent == kern.parent
        assert clone.f == kern.f
        # a pickled tree ships its cached kernel (workers skip the rebuild)
        tree2 = pickle.loads(pickle.dumps(tree))
        assert tree2.kernel().parent == kern.parent

    def test_rejects_non_topological_parents(self):
        with pytest.raises(ValueError):
            TreeKernel([-1, 2, 1], [0.0] * 3, [0.0] * 3)
        with pytest.raises(ValueError):
            TreeKernel([0, -1], [0.0] * 2, [0.0] * 2)
        with pytest.raises(ValueError):
            TreeKernel([-1, 0], [0.0], [0.0, 0.0])

    def test_validate_weights(self):
        kern = TreeKernel([-1, 0], [1.0, 2.0], [0.0, 0.0])
        kern.validate_weights()  # fine
        with pytest.raises(ValueError, match="negative file size"):
            TreeKernel([-1, 0], [1.0, -2.0], [5.0, 0.0]).validate_weights()
        with pytest.raises(ValueError, match="non-finite"):
            TreeKernel([-1, 0], [1.0, math.nan], [0.0, 0.0]).validate_weights()
        with pytest.raises(ValueError, match="negative memory requirement"):
            TreeKernel([-1, 0], [1.0, 1.0], [0.0, -5.0]).validate_weights()


class TestFromParents:
    def test_bulk_matches_add_node(self):
        bulk = Tree.from_parents([-1, 0, 0, 1], f=[1.0, 2.0, 3.0, 4.0], n=[0.5] * 4)
        manual = Tree()
        manual.add_node(0, f=1.0, n=0.5)
        manual.add_node(1, parent=0, f=2.0, n=0.5)
        manual.add_node(2, parent=0, f=3.0, n=0.5)
        manual.add_node(3, parent=1, f=4.0, n=0.5)
        assert bulk == manual
        bulk.validate()

    def test_custom_ids(self):
        tree = Tree.from_parents([-1, 0, 1], f=[1, 2, 3], ids=["x", "y", "z"])
        assert tree.root == "x"
        assert tree.parent("z") == "y"
        assert tree.f("y") == 2.0

    def test_rejects_malformed(self):
        with pytest.raises(TreeValidationError):
            Tree.from_parents([])
        with pytest.raises(TreeValidationError):
            Tree.from_parents([-1, 2, 1])  # forward reference
        with pytest.raises(TreeValidationError):
            Tree.from_parents([-1, -1])  # two roots
        with pytest.raises(TreeValidationError):
            Tree.from_parents([-1, 0], f=[1.0])  # length mismatch
        with pytest.raises(TreeValidationError):
            Tree.from_parents([-1, 0], ids=["a", "a"])  # duplicate ids


# ----------------------------------------------------------------------
# kernel vs reference equivalence
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    @pytest.mark.parametrize("algorithm", sorted(set(list_solvers())))
    def test_identical_reports_and_valid_replays(self, algorithm):
        for tree in sample_trees():
            kernel = solve(tree, algorithm, engine="kernel")
            reference = solve(tree, algorithm, engine="reference")
            assert kernel.peak_memory == pytest.approx(reference.peak_memory)
            assert kernel.io_volume == pytest.approx(reference.io_volume)
            assert kernel.traversal.order == reference.traversal.order
            assert kernel.traversal.convention == reference.traversal.convention
            if kernel.schedule is not None:
                assert kernel.schedule.evictions == reference.schedule.evictions
            # both engines' outputs validate under both replay engines
            replay_report(tree, kernel, engine="reference")
            replay_report(tree, reference, engine="kernel")

    def test_solver_entry_points_accept_kernels(self):
        tree = random_attachment_tree(60, seed=5)
        kern = tree.kernel()
        assert liu_optimal_traversal(kern).memory == pytest.approx(
            liu_optimal_traversal(tree).memory
        )
        assert min_mem(kern).memory == pytest.approx(min_mem(tree).memory)
        assert postorder_with_rule(kern).memory == pytest.approx(
            postorder_with_rule(tree).memory
        )

    def test_result_shapes_match_reference(self):
        tree = random_attachment_tree(60, seed=6)
        for rule in ("liu", "natural", "subtree_memory"):
            kernel = postorder_with_rule(tree, rule=rule, engine="kernel")
            reference = postorder_with_rule(tree, rule=rule, engine="reference")
            assert kernel.subtree_peak == pytest.approx(reference.subtree_peak)
            assert kernel.child_order == reference.child_order
        kernel = liu_optimal_traversal(tree, engine="kernel")
        reference = liu_optimal_traversal(tree, engine="reference")
        assert kernel.subtree_peak == pytest.approx(reference.subtree_peak)
        assert len(kernel.segments) == len(reference.segments)
        for seg_k, seg_r in zip(kernel.segments, reference.segments):
            assert seg_k.hill == pytest.approx(seg_r.hill)
            assert seg_k.valley == pytest.approx(seg_r.valley)

    def test_explore_solver_parity_under_memory_pressure(self):
        rng = random.Random(99)
        for trial in range(6):
            tree = make_random_tree(50, rng, window=5 if trial % 2 else None)
            floor = tree.max_mem_req()
            optimum = min_mem(tree).memory
            for fraction in (1.0, 0.5, 0.0):
                memory = floor + fraction * (optimum - floor)
                ref = ExploreSolver(tree).explore(tree.root, memory)
                kern = tree.kernel()
                solver = KernelExploreSolver(kern)
                resident, cut, _, peak, required = solver.explore(0, memory)
                assert resident == pytest.approx(ref.resident)
                assert peak == pytest.approx(ref.peak)
                assert required == pytest.approx(ref.required)
                assert [kern.ids[j] for j in cut] == list(ref.cut)

    def test_unknown_engine_rejected(self):
        tree = chain_tree(3)
        with pytest.raises(ValueError):
            liu_optimal_traversal(tree, engine="bogus")
        with pytest.raises(ValueError):
            min_mem(tree, engine="bogus")
        with pytest.raises(ValueError):
            postorder_with_rule(tree, engine="bogus")
        with pytest.raises(ValueError):
            solve(tree, "minio", engine="bogus")
        with pytest.raises(ReplayError):
            replay_report(tree, solve(tree, "liu"), engine="bogus")


# ----------------------------------------------------------------------
# scale regression: deep and wide 100k-node instances, no recursion
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def deep_chain():
    return chain_tree(100_000, f=2.0, n=1.0)


@pytest.fixture(scope="module")
def big_harpoon():
    # 1 + 3*2*(2^14 - 1) = 98_299 nodes, 42 levels of nested harpoons
    return iterated_harpoon_tree(2, levels=14, memory=1.0, epsilon=0.01)


class TestHundredThousandNodes:
    @pytest.fixture(autouse=True)
    def default_recursion_limit(self):
        # the hot paths must not recurse: solving 100k-node instances has to
        # succeed without ever touching the interpreter recursion limit
        old = sys.getrecursionlimit()
        sys.setrecursionlimit(1000)
        yield
        sys.setrecursionlimit(old)

    @pytest.mark.parametrize("algorithm", sorted(set(list_solvers())))
    def test_chain_100k_solves(self, deep_chain, algorithm):
        report = solve(deep_chain, algorithm)
        assert report.peak_memory > 0
        assert replay_report(deep_chain, report).peak_memory == pytest.approx(
            report.peak_memory
        )

    @pytest.mark.parametrize("algorithm", sorted(set(list_solvers())))
    def test_harpoon_100k_solves(self, big_harpoon, algorithm):
        report = solve(big_harpoon, algorithm)
        assert report.peak_memory > 0
        assert replay_report(big_harpoon, report).peak_memory == pytest.approx(
            report.peak_memory
        )

    def test_chain_100k_known_optimum(self, deep_chain):
        # uniform chain f=2, n=1: every traversal needs f_parent+n+f = 5
        assert min_mem(deep_chain).memory == pytest.approx(5.0)
        assert liu_optimal_traversal(deep_chain).memory == pytest.approx(5.0)
        assert postorder_with_rule(deep_chain).memory == pytest.approx(5.0)

    def test_harpoon_100k_matches_theorem_bounds(self, big_harpoon):
        from repro.generators.harpoon import (
            optimal_memory_bound,
            postorder_memory_bound,
        )

        optimum = liu_optimal_traversal(big_harpoon).memory
        postorder = postorder_with_rule(big_harpoon).memory
        assert optimum == pytest.approx(optimal_memory_bound(2, 14, 1.0, 0.01))
        assert postorder == pytest.approx(postorder_memory_bound(2, 14, 1.0, 0.01))


class TestFlatArrays:
    """to_flat_arrays / from_flat_arrays: the engine arena's transport."""

    def _trees(self):
        from repro.core.builders import chain_tree, star_tree
        from repro.generators.random_trees import random_attachment_tree

        return [
            chain_tree(1),
            chain_tree(6, f=2.0, n=1.0),
            star_tree(12, leaf_f=3.0, n=0.5),
            random_attachment_tree(150, seed=17),
        ]

    def test_round_trip_is_bit_identical(self):
        for tree in self._trees():
            kern = tree.kernel()
            parent, f, n = kern.to_flat_arrays()
            ids = None if kern.has_trivial_ids() else kern.ids
            clone = TreeKernel.from_flat_arrays(parent, f, n, ids=ids)
            for attr in (
                "size", "ids", "index", "parent", "child_ptr", "child_idx",
                "f", "n", "mem_req", "child_f_sum",
            ):
                assert getattr(clone, attr) == getattr(kern, attr), attr
            # plain python scalars, exactly like the __init__ path
            assert all(type(x) is int for x in clone.parent)
            assert all(type(x) is float for x in clone.mem_req)

    def test_non_trivial_ids(self):
        tree = Tree()
        tree.add_node("r", f=1.0, n=0.5)
        tree.add_node("a", parent="r", f=2.0, n=0.25)
        tree.add_node(("b", 3), parent="r", f=3.0, n=0.75)
        kern = tree.kernel()
        assert not kern.has_trivial_ids()
        parent, f, n = kern.to_flat_arrays()
        clone = TreeKernel.from_flat_arrays(parent, f, n, ids=kern.ids)
        assert clone.ids == kern.ids
        assert clone.index == kern.index

    def test_validation_errors(self):
        import numpy as np

        with pytest.raises(ValueError, match="root"):
            TreeKernel.from_flat_arrays(np.array([0]), np.ones(1), np.ones(1))
        with pytest.raises(ValueError, match="topological"):
            TreeKernel.from_flat_arrays(
                np.array([-1, 2, 1]), np.zeros(3), np.zeros(3)
            )
        with pytest.raises(ValueError, match="same length"):
            TreeKernel.from_flat_arrays(np.array([-1, 0]), np.zeros(1), np.zeros(2))
        with pytest.raises(ValueError, match="empty"):
            TreeKernel.from_flat_arrays(
                np.array([], dtype=np.int64), np.array([]), np.array([])
            )
        with pytest.raises(ValueError, match="duplicates"):
            TreeKernel.from_flat_arrays(
                np.array([-1, 0]), np.zeros(2), np.zeros(2), ids=["x", "x"]
            )

    def test_solvers_agree_on_attached_kernel(self):
        from repro.solvers import solve

        tree = self._trees()[-1]
        kern = tree.kernel()
        parent, f, n = kern.to_flat_arrays()
        ids = None if kern.has_trivial_ids() else kern.ids
        clone = TreeKernel.from_flat_arrays(parent, f, n, ids=ids)
        for algorithm in ("postorder", "liu", "minmem"):
            assert solve(clone, algorithm) == solve(kern, algorithm)
