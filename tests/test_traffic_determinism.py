"""Cross-process determinism: traffic streams and scenario builders.

Benchmark reproducibility rests on two promises: a seeded scenario
builder constructs byte-identical trees wherever it runs, and a traffic
cell's request stream (docs + arrival schedule) is byte-identical
however the generating interpreter was started.  Both could silently
break through ``hash()``-dependent iteration, inherited globals, or
fork-copied RNG state -- so these tests compute crc32 digests of the
full byte content in the parent, in a ``spawn``-started child (fresh
interpreter, nothing inherited) and in a ``fork``-started child
(everything inherited), and require all three to agree.

The expected digests are additionally *pinned*: the streams are part of
the benchmark contract (committed artifacts reference them), so an
unintentional change to a generator, a scenario registration, or the
seed plumbing fails here first.
"""

from __future__ import annotations

import multiprocessing

import pytest

# pinned digests (seed 0): regenerate deliberately with
#   python -c "from repro.bench.scenario import scenario_digest; ..."
# when a scenario or generator changes on purpose
SCENARIO_DIGESTS = {
    ("synthetic", 0): 3574407774,
    ("random", 0): 3916465406,
    ("harpoon", 0): 2184761751,
}
TRAFFIC_DIGESTS = {
    ("service_open_smoke", 0, 0): 3148967656,
    ("service_poisson", 0, 0): 4253055526,
    ("service_auto", 0, 0): 1333542915,
    ("service_auto", 1, 0): 161844272,
}


def _scenario_digest(args):
    """Child-process entry point (importable, hence picklable by spawn)."""
    name, seed = args
    import repro.bench.scenarios  # noqa: F401  (registers the scenarios)
    from repro.bench.scenario import scenario_digest

    return scenario_digest(name, seed)


def _traffic_digest(args):
    name, cell_index, seed = args
    from repro.bench.traffic import request_stream_digest

    return request_stream_digest(name, cell_index, seed)


def _run_in_child(start_method: str, func, args):
    ctx = multiprocessing.get_context(start_method)
    with ctx.Pool(1) as pool:
        return pool.apply(func, (args,))


def start_methods():
    available = multiprocessing.get_all_start_methods()
    return [m for m in ("spawn", "fork") if m in available]


@pytest.fixture(scope="module")
def child_methods():
    methods = start_methods()
    if not methods:
        pytest.skip("no multiprocessing start methods available")
    try:
        _run_in_child(methods[0], _scenario_digest, ("synthetic", 0))
    except OSError:
        pytest.skip("platform cannot start subprocesses")
    return methods


def test_scenario_digests_are_pinned():
    for (name, seed), expected in SCENARIO_DIGESTS.items():
        assert _scenario_digest((name, seed)) == expected, (name, seed)


def test_traffic_digests_are_pinned():
    for (name, cell, seed), expected in TRAFFIC_DIGESTS.items():
        assert _traffic_digest((name, cell, seed)) == expected, (name, cell)


def test_scenario_builders_identical_across_start_methods(child_methods):
    for (name, seed), expected in SCENARIO_DIGESTS.items():
        for method in child_methods:
            got = _run_in_child(method, _scenario_digest, (name, seed))
            assert got == expected, (name, seed, method)


def test_traffic_streams_identical_across_start_methods(child_methods):
    for (name, cell, seed), expected in TRAFFIC_DIGESTS.items():
        for method in child_methods:
            got = _run_in_child(method, _traffic_digest, (name, cell, seed))
            assert got == expected, (name, cell, method)


def test_digest_depends_on_seed():
    """The digest machinery is not constant: a different seed moves it."""
    assert _scenario_digest(("random", 1)) != SCENARIO_DIGESTS[("random", 0)]
    assert _traffic_digest(("service_auto", 0, 1)) != TRAFFIC_DIGESTS[
        ("service_auto", 0, 0)
    ]


def test_synthetic_digest_seed_independent():
    """Deterministic families ignore the seed entirely (documented)."""
    assert _scenario_digest(("synthetic", 5)) == SCENARIO_DIGESTS[("synthetic", 0)]
