"""Unit tests for the synthetic sparse matrix generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.matrices import (
    anisotropic_laplacian_2d,
    banded_spd,
    graph_laplacian,
    grid_laplacian_2d,
    grid_laplacian_3d,
    is_symmetric,
    make_spd,
    random_spd,
)


def assert_spd(matrix: sp.spmatrix, n_expected: int):
    assert matrix.shape == (n_expected, n_expected)
    assert is_symmetric(matrix)
    # smallest eigenvalue positive (dense check; matrices in tests are small)
    eigvals = np.linalg.eigvalsh(matrix.toarray())
    assert eigvals.min() > 0


class TestGrids:
    def test_grid2d_5point(self):
        a = grid_laplacian_2d(5)
        assert_spd(a, 25)
        # interior vertex has 4 neighbours
        assert a[12].getnnz() == 5

    def test_grid2d_9point(self):
        a = grid_laplacian_2d(4, stencil=9)
        assert_spd(a, 16)
        assert a.nnz > grid_laplacian_2d(4, stencil=5).nnz

    def test_grid2d_rectangular(self):
        a = grid_laplacian_2d(3, 7)
        assert a.shape == (21, 21)

    def test_grid2d_invalid_stencil(self):
        with pytest.raises(ValueError):
            grid_laplacian_2d(4, stencil=7)

    def test_grid3d(self):
        a = grid_laplacian_3d(3)
        assert_spd(a, 27)
        # interior vertex of a 3x3x3 grid has 6 neighbours
        assert a[13].getnnz() == 7

    def test_anisotropic(self):
        a = anisotropic_laplacian_2d(5, ratio=10.0)
        assert_spd(a, 25)


class TestRandomAndBanded:
    def test_random_spd(self):
        a = random_spd(40, density=0.05, seed=1)
        assert_spd(a, 40)

    def test_random_spd_deterministic(self):
        a = random_spd(30, density=0.05, seed=2)
        b = random_spd(30, density=0.05, seed=2)
        assert (a != b).nnz == 0

    def test_banded(self):
        a = banded_spd(50, bandwidth=3, seed=0)
        assert_spd(a, 50)
        rows, cols = a.nonzero()
        assert np.max(np.abs(rows - cols)) <= 3

    def test_make_spd_preserves_pattern(self):
        base = sp.random(20, 20, density=0.1, random_state=np.random.default_rng(0))
        sym = base + base.T
        a = make_spd(sym)
        assert_spd(a, 20)


class TestGraphLaplacians:
    @pytest.mark.parametrize("kind", ["watts_strogatz", "barabasi_albert", "random_geometric"])
    def test_kinds(self, kind):
        a = graph_laplacian(kind, 30, seed=3)
        assert a.shape == (30, 30)
        assert is_symmetric(a)
        eigvals = np.linalg.eigvalsh(a.toarray())
        assert eigvals.min() > 0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            graph_laplacian("petersen", 10)
