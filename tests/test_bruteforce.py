"""Unit tests for the exhaustive reference solvers."""

import math

import pytest

from repro.core.bruteforce import (
    enumerate_topological_orders,
    optimal_min_io,
    optimal_min_memory,
    optimal_postorder_memory,
)
from repro.core.builders import chain_tree, from_parent_list, star_tree
from repro.core.traversal import TOPDOWN, Traversal, peak_memory


class TestOptimalMinMemory:
    def test_single_node(self):
        t = from_parent_list([None], f=[2.0], n=[1.0])
        assert optimal_min_memory(t) == pytest.approx(3.0)

    def test_chain(self):
        t = chain_tree(4, f=1.0, n=0.0)
        assert optimal_min_memory(t) == pytest.approx(2.0)

    def test_star(self):
        t = star_tree(3, root_f=1.0, leaf_f=2.0)
        assert optimal_min_memory(t) == pytest.approx(7.0)

    def test_matches_enumeration(self):
        t = from_parent_list([None, 0, 0, 1, 1, 2], f=[1, 3, 2, 4, 1, 2], n=[0, 1, 0, 2, 0, 1])
        best = min(
            peak_memory(t, Traversal(order, TOPDOWN))
            for order in enumerate_topological_orders(t)
        )
        assert optimal_min_memory(t) == pytest.approx(best)

    def test_size_limit(self):
        t = chain_tree(30)
        with pytest.raises(ValueError):
            optimal_min_memory(t)


class TestOptimalPostorder:
    def test_postorder_at_least_optimal(self):
        t = from_parent_list([None, 0, 0, 1, 2], f=[0, 1, 5, 10, 1], n=[0] * 5)
        assert optimal_postorder_memory(t) >= optimal_min_memory(t) - 1e-9

    def test_chain_equals_optimal(self):
        t = chain_tree(6, f=2.0, n=1.0)
        assert optimal_postorder_memory(t) == pytest.approx(optimal_min_memory(t))

    def test_arity_limit(self):
        t = star_tree(9)
        with pytest.raises(ValueError):
            optimal_postorder_memory(t)


class TestEnumerateOrders:
    def test_count_for_star(self):
        # root + 3 leaves: the root is first, the leaves in any order -> 3! = 6
        t = star_tree(3)
        assert len(enumerate_topological_orders(t)) == 6

    def test_count_for_chain(self):
        t = chain_tree(4)
        assert len(enumerate_topological_orders(t)) == 1

    def test_size_limit(self):
        with pytest.raises(ValueError):
            enumerate_topological_orders(chain_tree(11))


class TestOptimalMinIO:
    def test_zero_when_memory_suffices(self):
        t = star_tree(3, root_f=0.0, leaf_f=2.0)
        assert optimal_min_io(t, optimal_min_memory(t)) == pytest.approx(0.0)

    def test_positive_when_memory_tight(self):
        # root f=0 with 3 leaves of size 2: MemReq(root)=6, leaves need 2.
        # With M=6 exactly, no I/O is needed.  Shrinking to the leaves-only
        # memory is impossible (M must be >= 6), so test with a two-level tree.
        t = from_parent_list(
            [None, 0, 0, 1, 2], f=[0.0, 3.0, 3.0, 4.0, 4.0], n=[0.0] * 5
        )
        # MemReq: root 6, node1 3+4=7, node2 7, leaves 4
        m = 7.0
        io = optimal_min_io(t, m)
        # processing node 1 with node 2's file (3) resident overflows by 3 ->
        # the optimal is to evict node 2's file (3), and symmetric case never
        # does better
        assert io == pytest.approx(3.0)

    def test_infeasible_memory(self):
        t = star_tree(2, root_f=0.0, leaf_f=5.0)
        assert optimal_min_io(t, 5.0) == math.inf

    def test_monotone_in_memory(self):
        t = from_parent_list(
            [None, 0, 0, 1, 2], f=[0.0, 3.0, 2.0, 4.0, 5.0], n=[0.0] * 5
        )
        ms = [t.max_mem_req() + k for k in range(0, 6)]
        ios = [optimal_min_io(t, m) for m in ms]
        assert all(a >= b - 1e-9 for a, b in zip(ios, ios[1:]))

    def test_size_limit(self):
        with pytest.raises(ValueError):
            optimal_min_io(chain_tree(20), 10.0)
