"""Tests for the open-loop traffic benchmarks (repro.bench.traffic)."""

import time

import pytest

from repro.bench import (
    TrafficCell,
    TrafficScenario,
    UnknownTrafficScenarioError,
    get_traffic_scenario,
    list_traffic_scenarios,
    load_artifact,
    run_traffic_scenarios,
    select_traffic_scenarios,
    write_artifact,
)
from repro.bench.runner import run_scenarios
from repro.bench.traffic import arrival_schedule, build_request_docs
from repro.core.kernel import TreeKernel
from repro.core.traversal import BOTTOMUP, Traversal
from repro.solvers import SolveReport, register_solver


@pytest.fixture(scope="module", autouse=True)
def _slow_solver():
    # registered at fixture time so collection-time list_solvers() calls in
    # other modules never see it (same pattern as test_service)
    @register_solver("traffic_slow", family="test", summary="fixed-delay solver")
    def _slow(tree, *, seconds=0.03, **_ignored):
        time.sleep(float(seconds))
        root = tree.ids[0] if isinstance(tree, TreeKernel) else tree.root
        return SolveReport(
            algorithm="traffic_slow",
            peak_memory=1.0,
            traversal=Traversal((root,), BOTTOMUP),
        )

    yield


def _tiny_scenario(**overrides):
    defaults = dict(
        name="test_tiny",
        summary="tiny deterministic scenario for tests",
        tree_count=4,
        cells=(TrafficCell(name="poisson-fast", arrival="poisson",
                           requests=12, rate=300.0, deadline=30.0),),
        algorithms=("postorder", "minmem"),
    )
    defaults.update(overrides)
    return TrafficScenario(**defaults)


class TestRegistry:
    def test_builtin_scenarios_registered(self):
        names = list_traffic_scenarios()
        for expected in ("service_open_smoke", "service_poisson",
                         "service_burst_open"):
            assert expected in names
        assert get_traffic_scenario("Service-Open-Smoke").smoke

    def test_unknown_scenario_raises(self):
        with pytest.raises(UnknownTrafficScenarioError, match="expected one of"):
            get_traffic_scenario("nope")

    def test_select_by_smoke_and_pattern(self):
        smoke = select_traffic_scenarios(smoke=True)
        assert all(s.smoke for s in smoke)
        assert any(s.name == "service_open_smoke" for s in smoke)
        burst = select_traffic_scenarios("burst")
        assert any(s.name == "service_burst_open" for s in burst)

    def test_cell_validation(self):
        with pytest.raises(ValueError, match="arrival"):
            TrafficCell(name="x", arrival="uniform", requests=10)
        with pytest.raises(ValueError, match="requests"):
            TrafficCell(name="x", arrival="poisson", requests=0)
        with pytest.raises(ValueError, match="rate"):
            TrafficCell(name="x", arrival="poisson", requests=10, rate=0.0)


class TestSchedulesAndStreams:
    def test_poisson_schedule_deterministic_and_monotonic(self):
        cell = TrafficCell(name="p", arrival="poisson", requests=50, rate=100.0)
        a = arrival_schedule(cell, seed=7)
        b = arrival_schedule(cell, seed=7)
        assert a == b
        assert len(a) == 50
        assert all(t2 > t1 for t1, t2 in zip(a, a[1:]))
        assert arrival_schedule(cell, seed=8) != a
        # mean rate in the right ballpark (seeded, so this is stable)
        assert 50 / a[-1] == pytest.approx(100.0, rel=0.5)

    def test_burst_schedule_groups_arrivals(self):
        cell = TrafficCell(name="b", arrival="burst", requests=10, rate=100.0,
                           burst_size=4)
        times = arrival_schedule(cell, seed=0)
        assert len(times) == 10
        assert times[0] == times[1] == times[2] == times[3] == 0.0
        assert times[4] == times[7] == pytest.approx(0.04)  # 4 / 100 rps
        assert times[8] == pytest.approx(0.08)

    def test_closed_cells_have_no_schedule(self):
        cell = TrafficCell(name="c", arrival="closed", requests=10)
        assert arrival_schedule(cell, seed=0) == []

    def test_request_docs_full_payload_once_then_tokens(self):
        scenario = _tiny_scenario()
        cell = scenario.cells[0]
        docs = build_request_docs(scenario, cell, seed=3)
        assert docs == build_request_docs(scenario, cell, seed=3)
        assert len(docs) == cell.requests
        full = [d for d in docs if "parents" in d["tree"]]
        tokens = [d for d in docs if "token" in d["tree"]]
        assert len(full) + len(tokens) == len(docs)
        assert 1 <= len(full) <= scenario.tree_count  # first sight only
        assert len(tokens) >= len(docs) - scenario.tree_count
        assert all(d["deadline"] == 30.0 for d in docs)
        assert all(d["algorithm"] in scenario.algorithms for d in docs)
        ids = [d["id"] for d in docs]
        assert len(set(ids)) == len(ids)


class TestRunner:
    def test_inproc_run_produces_artifact_ready_records(self, tmp_path):
        run = run_traffic_scenarios(
            [_tiny_scenario()], seed=0, pool="serial", transport="inproc"
        )
        assert len(run.records) == 1
        record = run.records[0]
        assert record.family == "traffic"
        assert record.algorithm == "service"
        e = record.extras
        assert e["requests"] == 12
        assert e["completed"] == 12
        assert e["rejected"] == 0 and e["deadline_missed"] == 0
        assert e["latency_p50"] <= e["latency_p95"] <= e["latency_p99"]
        assert e["latency_p50"] > 0 and e["throughput_rps"] > 0
        assert record.best_time == e["latency_p50"]
        # traffic runs persist and reload through the v1 artifact pipeline
        path = write_artifact(run, tmp_path / "BENCH_traffic.json")
        loaded = load_artifact(path)
        assert loaded["records"][0]["extras"]["completed"] == 12
        assert loaded["records"][0]["scenario"] == record.scenario
        assert loaded["records"][0]["instance"] == record.instance

    def test_stdio_transport_equivalent_counts(self):
        run = run_traffic_scenarios(
            [_tiny_scenario()], seed=0, pool="serial", transport="stdio"
        )
        e = run.records[0].extras
        assert e["transport"] == "stdio"
        assert e["completed"] == 12 and e["rejected"] == 0

    def test_closed_loop_cell(self):
        scenario = _tiny_scenario(cells=(
            TrafficCell(name="closed-c3", arrival="closed", requests=9,
                        concurrency=3),
        ))
        run = run_traffic_scenarios([scenario], pool="serial")
        e = run.records[0].extras
        assert e["arrival"] == "closed"
        assert e["offered_rate"] is None
        assert e["concurrency"] == 3
        assert e["completed"] == 9

    def test_overload_sheds_via_admission_control(self):
        # a slow solver, one inflight slot, queue bound 2, arrivals far
        # faster than service: the open-loop generator must see rejections
        scenario = _tiny_scenario(
            algorithms=("traffic_slow",),
            tree_count=2,
            cells=(TrafficCell(name="overload", arrival="burst", requests=12,
                               rate=2000.0, burst_size=12),),
        )
        run = run_traffic_scenarios([scenario], pool="serial", max_pending=2)
        e = run.records[0].extras
        assert e["completed"] + e["rejected"] == 12
        assert e["rejected"] >= 8  # bound 2 + a burst of 12 back-to-back
        assert e["completed"] >= 2

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            run_traffic_scenarios([_tiny_scenario()], transport="smoke-signals")


class TestPoolValidationRegression:
    """Eager pool= validation stays eager (satellite lock-in)."""

    def test_run_scenarios_rejects_pool_typo(self):
        with pytest.raises(ValueError, match="persistant"):
            run_scenarios([], pool="persistant")
