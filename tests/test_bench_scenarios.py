"""Scenario registry, seed determinism and the benchmark runner."""

import pytest

from repro.bench.runner import run_scenarios
from repro.bench.scenario import (
    Scenario,
    UnknownScenarioError,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_table,
    select_scenarios,
)
from repro.core.builders import chain_tree
from repro.generators.random_trees import random_attachment_tree
from repro.solvers import UnknownSolverError


def make_scenario(**overrides) -> Scenario:
    defaults = dict(
        name="unit",
        family="synthetic",
        builder=lambda seed: [("chain-8", chain_tree(8, f=2.0, n=1.0))],
        algorithms=("postorder", "liu", "minmem"),
        budget_fractions=(0.5,),
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestRegistry:
    def test_builtin_campaign_registered(self):
        # importing repro.bench registers the five default families
        import repro.bench  # noqa: F401

        names = list_scenarios()
        for expected in (
            "synthetic", "random", "harpoon", "assembly", "etree",
            "sparse_pipeline",
        ):
            assert expected in names
        families = {s.family for s in scenario_table()}
        assert len(families) >= 4

    def test_sparse_pipeline_scenario_metadata(self):
        import repro.bench  # noqa: F401

        scenario = get_scenario("sparse_pipeline")
        # too large for the smoke gate; CI runs it explicitly on the kernel
        # engine (the builder itself is exercised by test_sparse_kernel.py)
        assert not scenario.smoke
        assert scenario.family == "sparse_pipeline"
        assert "minmem" in scenario.algorithms
        assert "scale" in scenario.tags

    def test_register_and_get(self):
        @register_scenario(
            "Unit-Test-Scenario",
            family="synthetic",
            algorithms=("MinMem",),  # aliases canonicalise at registration
            summary="one chain",
        )
        def _build(seed):
            return [("chain", chain_tree(4))]

        scenario = get_scenario("unit_test_scenario")
        assert scenario.algorithms == ("minmem",)
        assert scenario.build(0)[0][0] == "chain"

    def test_unknown_scenario_raises(self):
        with pytest.raises(UnknownScenarioError):
            get_scenario("no-such-scenario")

    def test_unknown_algorithm_fails_at_registration(self):
        with pytest.raises(UnknownSolverError):
            register_scenario(
                "broken", family="synthetic", algorithms=("not_an_algorithm",)
            )(lambda seed: [])

    def test_select_by_filter_and_smoke(self):
        import repro.bench  # noqa: F401

        assert [s.name for s in select_scenarios("harpoon")] == ["harpoon"]
        # filters also match family names, tags and algorithm names
        assert {s.name for s in select_scenarios("minmem")} >= {"harpoon", "random"}
        smoke = select_scenarios(smoke=True)
        assert smoke and all(s.smoke for s in smoke)
        assert select_scenarios("zzz-no-match") == []

    def test_empty_builder_rejected(self):
        scenario = make_scenario(builder=lambda seed: [])
        with pytest.raises(ValueError, match="no instances"):
            scenario.build(0)


class TestSeedDeterminism:
    def test_same_seed_identical_instances(self):
        import repro.bench  # noqa: F401

        scenario = get_scenario("random")
        first = scenario.build(seed=123)
        second = scenario.build(seed=123)
        assert [name for name, _ in first] == [name for name, _ in second]
        for (_, a), (_, b) in zip(first, second):
            assert a == b  # Tree equality covers structure and weights

    def test_different_seed_different_instances(self):
        import repro.bench  # noqa: F401

        scenario = get_scenario("random")
        trees_a = dict(scenario.build(seed=1))
        trees_b = dict(scenario.build(seed=2))
        assert any(trees_a[name] != trees_b[name] for name in trees_a)


class TestRunner:
    def test_records_and_ratios(self):
        run = run_scenarios([make_scenario()], seed=0, repeat=2)
        assert run.repeat == 2
        by_alg = {r.algorithm: r for r in run.records}
        assert set(by_alg) == {"postorder", "liu", "minmem"}
        for record in run.records:
            assert record.repeats == 2
            assert record.replay_ok, record.replay_error
            assert record.best_time <= record.mean_time
            assert record.optimality_ratio >= 1.0 - 1e-9
            assert record.key == f"unit/chain-8/{record.algorithm}"
        assert by_alg["minmem"].optimality_ratio == pytest.approx(1.0)

    def test_budgeted_sweep(self):
        scenario = make_scenario(
            algorithms=("minmem", "minio_first_fit"),
            budget_fractions=(0.25, 0.75),
            builder=lambda seed: [
                ("rand-40", random_attachment_tree(40, seed=seed))
            ],
        )
        run = run_scenarios([scenario], seed=5)
        budgeted = [r for r in run.records if r.algorithm == "minio_first_fit"]
        assert [r.budget_fraction for r in budgeted] == [0.25, 0.75]
        for record in budgeted:
            assert record.memory_limit is not None
            assert record.replay_ok, record.replay_error
            assert record.peak_memory <= record.memory_limit * (1 + 1e-9)
        # a tighter budget can only cost more I/O
        assert budgeted[0].io_volume >= budgeted[1].io_volume - 1e-9
        # the scheduler replays the reference traversal rather than hiding a
        # re-run of the in-core base solver inside the timed rounds
        assert all(
            r.extras.get("traversal_algorithm") == "given" for r in budgeted
        )

    def test_budgeted_records_carry_no_optimality_ratio(self):
        # a budget-limited run (possibly a partial explore prefix) must not
        # be ranked against the in-core optimum: a prefix peak below the
        # MinMem optimum would read as "better than optimal"
        scenario = make_scenario(
            algorithms=("minmem", "explore", "minio_first_fit"),
            budget_fractions=(0.25,),
            builder=lambda seed: [
                ("rand-40", random_attachment_tree(40, seed=seed))
            ],
        )
        run = run_scenarios([scenario], seed=3)
        for record in run.records:
            if record.budget_fraction is None:
                assert record.optimality_ratio is not None
            else:
                assert record.optimality_ratio is None

    def test_degenerate_budget_labeled_unconstrained(self):
        # chain trees have floor == in-core peak: every fraction collapses
        # to the same unconstrained bound, which must be labeled 1.0
        scenario = make_scenario(
            algorithms=("minmem", "minio_first_fit"),
            budget_fractions=(0.25, 0.75),
        )
        run = run_scenarios([scenario])
        budgeted = [r for r in run.records if r.algorithm == "minio_first_fit"]
        (record,) = budgeted
        assert record.budget_fraction == 1.0
        assert record.io_volume == 0.0

    def test_reference_added_when_missing(self):
        scenario = make_scenario(algorithms=("postorder",))
        run = run_scenarios([scenario])
        assert {r.algorithm for r in run.records} == {"postorder"}
        (record,) = run.records
        assert record.optimality_ratio >= 1.0 - 1e-9

    def test_identical_seeds_identical_metrics(self):
        scenario = make_scenario(
            builder=lambda seed: [("rand-30", random_attachment_tree(30, seed=seed))]
        )
        run_a = run_scenarios([scenario], seed=9)
        run_b = run_scenarios([scenario], seed=9)
        for a, b in zip(run_a.records, run_b.records):
            assert (a.key, a.peak_memory, a.io_volume) == (b.key, b.peak_memory, b.io_volume)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            run_scenarios([make_scenario()], repeat=0)
        with pytest.raises(ValueError):
            run_scenarios([make_scenario()], warmup=-1)

    def test_format_table_mentions_every_record(self):
        run = run_scenarios([make_scenario()])
        table = run.format_table()
        for record in run.records:
            assert record.key in table


class TestCampaignPlanner:
    """The planned (persistent-engine) path vs the legacy loop structure."""

    def _campaign(self):
        return [
            make_scenario(
                name="planner-a",
                algorithms=("postorder", "liu", "minmem", "minio_first_fit", "explore"),
                budget_fractions=(0.25, 0.75),
                builder=lambda seed: [
                    ("rand-40", random_attachment_tree(40, seed=seed)),
                    ("rand-55", random_attachment_tree(55, seed=seed + 1)),
                    ("chain-30", chain_tree(30, f=2.0, n=1.0)),
                ],
            ),
            make_scenario(name="planner-b"),
        ]

    @pytest.mark.parametrize("workers", (None, 2))
    def test_pool_modes_bit_identical_records(self, workers):
        from dataclasses import replace

        runs = {
            pool: run_scenarios(
                self._campaign(), seed=3, repeat=2, warmup=1,
                workers=workers, pool=pool,
            )
            for pool in ("serial", "fresh", "persistent")
        }
        stripped = {
            pool: [replace(r, best_time=0.0, mean_time=0.0) for r in run.records]
            for pool, run in runs.items()
        }
        assert stripped["serial"] == stripped["fresh"] == stripped["persistent"]
        # record order (and therefore keys) is also identical
        keys = [r.key for r in runs["serial"].records]
        assert [r.key for r in runs["persistent"].records] == keys
        for run in runs.values():
            assert not run.replay_failures
            assert run.campaign_seconds > 0.0
        assert runs["persistent"].pool == "persistent"

    def test_invalid_pool_rejected(self):
        with pytest.raises(ValueError, match="pool mode"):
            run_scenarios([make_scenario()], pool="bogus")

    def test_planned_timings_per_round(self):
        run = run_scenarios([make_scenario()], seed=0, repeat=3, warmup=1)
        for record in run.records:
            assert record.repeats == 3
            assert record.best_time > 0.0


class TestServiceScenarios:
    def test_service_metadata(self):
        scenario = get_scenario("service")
        assert scenario.smoke  # part of the CI bench-smoke gate
        assert scenario.family == "service"
        # the request-traffic mix runs every in-core algorithm + the portfolio
        assert set(scenario.algorithms) == {
            "postorder",
            "postorder_natural",
            "postorder_subtree_memory",
            "liu",
            "minmem",
            "auto",
        }
        burst = get_scenario("service_burst")
        assert not burst.smoke  # 10k records: artifact-size, not CI, bound
        assert burst.family == "service"
        assert burst.algorithms == scenario.algorithms

    def test_service_builder_traffic_shape(self):
        scenario = get_scenario("service")
        instances = scenario.build(7)
        assert len(instances) == 320
        sizes = [tree.size for _, tree in instances]
        # small heterogeneous trees around the 50-500 band (caterpillar
        # leaf counts are random, so allow a little slack at the edges)
        assert min(sizes) >= 40
        assert max(sizes) <= 550
        labels = {name.split("-")[2] for name, _ in instances}
        assert {"attach", "deep", "caterpillar", "harpoon", "chain"} <= labels
        # deterministic in the seed, different across seeds
        again = scenario.build(7)
        assert [name for name, _ in again] == [name for name, _ in instances]
        other = scenario.build(8)
        assert [t.size for _, t in other] != sizes

    def test_service_burst_is_thousands(self):
        assert len(get_scenario("service_burst").build(0)) == 2000
