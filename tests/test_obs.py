"""Tests for the observability layer (repro.obs)."""

import json
import logging
import math
import random
from io import StringIO

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    JsonFormatter,
    KeyValueFormatter,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    REQUEST_STAGES,
    SpanTimeline,
    configure_logging,
    default_latency_bounds,
    exponential_bounds,
    get_logger,
    log_event,
    parse_exposition,
    percentile,
    render_prometheus,
)


# ----------------------------------------------------------------------
# exact percentile helper
# ----------------------------------------------------------------------
class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50.0) == 0.0

    def test_single_sample_is_the_sample(self):
        for q in (0.0, 50.0, 99.0, 100.0):
            assert percentile([3.5], q) == 3.5

    def test_two_samples_interpolate(self):
        assert percentile([1.0, 3.0], 50.0) == 2.0
        assert percentile([1.0, 3.0], 0.0) == 1.0
        assert percentile([1.0, 3.0], 100.0) == 3.0
        assert percentile([1.0, 3.0], 25.0) == pytest.approx(1.5)

    def test_matches_known_quartiles(self):
        values = [float(i) for i in range(1, 101)]  # 1..100
        assert percentile(values, 50.0) == pytest.approx(50.5)
        assert percentile(values, 25.0) == pytest.approx(25.75)


# ----------------------------------------------------------------------
# bucket ladders
# ----------------------------------------------------------------------
class TestBounds:
    def test_exponential_bounds_shape(self):
        bounds = exponential_bounds(1e-3, 1.0, per_decade=4)
        assert bounds[0] == pytest.approx(1e-3)
        assert bounds[-1] >= 1.0
        assert len(bounds) == 13  # 3 decades * 4 + 1
        assert all(b < c for b, c in zip(bounds, bounds[1:]))

    def test_exponential_bounds_validation(self):
        with pytest.raises(ValueError):
            exponential_bounds(0.0, 1.0)
        with pytest.raises(ValueError):
            exponential_bounds(1.0, 1.0)
        with pytest.raises(ValueError):
            exponential_bounds(1e-3, 1.0, per_decade=0)

    def test_default_ladder_covers_service_latencies(self):
        bounds = default_latency_bounds()
        assert bounds[0] <= 1e-5 and bounds[-1] >= 100.0


# ----------------------------------------------------------------------
# counters and gauges
# ----------------------------------------------------------------------
class TestScalars:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge(5.0)
        g.dec(2.0)
        g.inc()
        assert g.value == 4.0
        g.set(-1.5)
        assert g.value == -1.5


# ----------------------------------------------------------------------
# streaming histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.quantile(50.0) == 0.0
        assert h.mean == 0.0

    def test_single_sample_is_exact(self):
        h = Histogram()
        h.observe(0.0123)
        for q in (1.0, 50.0, 99.0):
            assert h.quantile(q) == pytest.approx(0.0123)

    def test_two_samples_stay_in_range(self):
        h = Histogram()
        h.observe(0.001)
        h.observe(0.1)
        assert 0.001 <= h.quantile(50.0) <= 0.1
        assert h.quantile(0.0) == 0.001
        assert h.quantile(100.0) == 0.1

    def test_bucket_boundary_value_lands_le(self):
        # Prometheus convention: value == bound counts in that bucket
        h = Histogram(bounds=[1.0, 2.0])
        h.observe(1.0)
        h.observe(2.0)
        h.observe(3.0)  # overflow
        cumulative = h.cumulative_buckets()
        assert cumulative == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[])
        with pytest.raises(ValueError):
            Histogram(bounds=[1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram(bounds=[2.0, 1.0])

    def test_quantiles_track_the_stream(self):
        rng = random.Random(7)
        h = Histogram()
        samples = [rng.expovariate(20.0) + 1e-4 for _ in range(20000)]
        for s in samples:
            h.observe(s)
        ordered = sorted(samples)
        for q in (50.0, 95.0, 99.0):
            exact = percentile(ordered, q)
            approx = h.quantile(q)
            assert abs(approx - exact) / exact < 0.22  # ladder error bound
        assert h.count == len(samples)
        assert h.mean == pytest.approx(sum(samples) / len(samples))

    def test_percentiles_never_freeze(self):
        # the regression the histogram design exists for: after any volume
        # of samples, new observations keep moving the estimate
        h = Histogram()
        for _ in range(250_000):
            h.observe(0.001)
        frozen_p99 = h.quantile(99.0)
        for _ in range(250_000):
            h.observe(1.0)
        assert h.quantile(99.0) > frozen_p99 * 10
        # exactly half the mass is high: anything past the median moves too
        assert h.quantile(60.0) > frozen_p99 * 10

    def test_merge_is_exact(self):
        a, b = Histogram(), Histogram()
        rng = random.Random(3)
        both = Histogram()
        for i in range(500):
            value = rng.uniform(1e-4, 2.0)
            (a if i % 2 else b).observe(value)
            both.observe(value)
        a.merge(b)
        assert a.count == both.count
        assert a.counts == both.counts
        assert a.sum == pytest.approx(both.sum)
        assert a.min == both.min and a.max == both.max

    def test_merge_rejects_mismatched_ladders(self):
        with pytest.raises(ValueError, match="ladder"):
            Histogram(bounds=[1.0]).merge(Histogram(bounds=[1.0, 2.0]))

    def test_cumulative_buckets_monotone(self):
        h = Histogram()
        rng = random.Random(11)
        for _ in range(1000):
            h.observe(rng.uniform(1e-5, 10.0))
        cumulative = h.cumulative_buckets()
        counts = [c for _, c in cumulative]
        assert counts == sorted(counts)
        assert cumulative[-1] == (math.inf, 1000)


# ----------------------------------------------------------------------
# registry + exposition
# ----------------------------------------------------------------------
class TestRegistry:
    def test_rejects_bad_names_and_labels(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="metric name"):
            reg.counter("0bad", "help")
        with pytest.raises(ValueError, match="label name"):
            reg.counter("ok_name", "help", labels={"0bad": "x"})

    def test_rejects_kind_conflicts_and_duplicates(self):
        reg = MetricsRegistry()
        reg.counter("m", "help", labels={"a": "1"})
        with pytest.raises(ValueError, match="already registered as"):
            reg.gauge("m", "help")
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("m", "help", labels={"a": "1"})
        reg.counter("m", "help", labels={"a": "2"})  # new label set is fine

    def test_attach_live_object(self):
        reg = MetricsRegistry()
        h = Histogram(bounds=[1.0])
        assert reg.attach("lat", "help", h) is h
        h.observe(0.5)
        families = {name: kids for name, _, _, kids in reg.collect()}
        assert families["lat"][0][1].count == 1


class TestExposition:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("svc_requests_total", "Requests.", value=7,
                    labels={"outcome": "ok"})
        reg.counter("svc_requests_total", "Requests.", value=2,
                    labels={"outcome": 'we"ird\\path\n'})
        reg.gauge("svc_pending", "Pending now.", value=3)
        h = reg.histogram("svc_latency_seconds", "Latency.",
                          bounds=[0.01, 0.1, 1.0])
        for value in (0.005, 0.05, 0.5, 5.0):
            h.observe(value)
        return reg

    def test_renders_and_parses(self):
        text = render_prometheus(self._registry())
        assert text.endswith("\n")
        assert "# HELP svc_requests_total Requests." in text
        assert "# TYPE svc_requests_total counter" in text
        assert "# TYPE svc_latency_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert "svc_latency_seconds_sum" in text
        assert "svc_latency_seconds_count 4" in text
        families = parse_exposition(text)
        assert families["svc_requests_total"]["type"] == "counter"
        assert families["svc_latency_seconds"]["type"] == "histogram"

    def test_label_escaping(self):
        text = render_prometheus(self._registry())
        assert r'outcome="we\"ird\\path\n"' in text

    def test_histogram_ladder_monotone_in_text(self):
        text = render_prometheus(self._registry())
        buckets = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("svc_latency_seconds_bucket")
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 4  # +Inf == count

    def test_parser_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_exposition("# TYPE m sometype\nm 1\n")
        with pytest.raises(ValueError):
            parse_exposition("# TYPE m counter\n# TYPE m counter\nm 1\n")
        with pytest.raises(ValueError):
            parse_exposition("orphan_sample 1\n")

    def test_content_type_is_prometheus_text(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestSpanTimeline:
    def test_begin_end_durations(self):
        t = SpanTimeline(origin=100.0)
        t.begin("parse", at=100.0)
        t.end("parse", at=100.5)
        t.begin("solve", at=100.5)
        t.end("solve", at=102.0)
        durations = t.durations()
        assert durations["parse"] == pytest.approx(0.5)
        assert durations["solve"] == pytest.approx(1.5)
        assert list(durations) == ["parse", "solve"]  # recording order
        assert t.elapsed == pytest.approx(2.0)
        assert "parse" in t and "nope" not in t and len(t) == 2

    def test_repeated_spans_sum(self):
        t = SpanTimeline(origin=0.0)
        t.record("parse", 0.0, 1.0)
        t.record("parse", 2.0, 2.5)
        assert t.durations()["parse"] == pytest.approx(1.5)

    def test_end_clamps_negative_durations(self):
        t = SpanTimeline(origin=0.0)
        t.record("x", 5.0, 4.0)
        assert t.durations()["x"] == 0.0

    def test_end_if_open_only_closes_open(self):
        t = SpanTimeline(origin=0.0)
        t.begin("a", at=1.0)
        assert t.end_if_open("a", at=2.0) is True
        assert t.end_if_open("a", at=9.0) is False
        assert t.durations() == {"a": pytest.approx(1.0)}

    def test_close_open_settles_everything(self):
        t = SpanTimeline(origin=0.0)
        t.begin("queued", at=1.0)
        t.begin("solve", at=2.0)
        t.close_open(at=3.0)
        durations = t.durations()
        assert durations["queued"] == pytest.approx(2.0)
        assert durations["solve"] == pytest.approx(1.0)
        t.close_open(at=9.0)  # idempotent: nothing left open
        assert t.durations() == durations

    def test_to_list_offsets_from_origin(self):
        t = SpanTimeline(origin=10.0)
        t.record("solve", 11.0, 11.5)
        (span,) = t.to_list()
        assert span == {
            "stage": "solve",
            "offset_seconds": pytest.approx(1.0),
            "duration_seconds": pytest.approx(0.5),
        }

    def test_request_stage_catalogue(self):
        assert REQUEST_STAGES == (
            "parse", "intern", "queued", "dispatch", "solve", "report"
        )


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestStructLog:
    def _capture(self, **kwargs):
        stream = StringIO()
        root = configure_logging(stream=stream, **kwargs)
        return root, stream

    def test_key_value_lines(self):
        root, stream = self._capture(level="debug")
        log = get_logger("service")
        log_event(log, "request_complete", id="r-1", status="ok",
                  total_seconds=0.012345678, note="two words", flag=True,
                  missing=None)
        line = stream.getvalue().strip()
        assert " INFO repro.service request_complete " in line
        assert "id=r-1" in line
        assert "total_seconds=0.0123457" in line
        assert 'note="two words"' in line
        assert "flag=true" in line and "missing=null" in line

    def test_json_lines(self):
        root, stream = self._capture(level="info", json_lines=True)
        log_event(get_logger("bench"), "round_done", round=3, ok=True)
        doc = json.loads(stream.getvalue())
        assert doc["logger"] == "repro.bench"
        assert doc["event"] == "round_done"
        assert doc["round"] == 3 and doc["ok"] is True
        assert doc["level"] == "info"
        assert doc["ts"].endswith("Z")

    def test_level_threshold(self):
        root, stream = self._capture(level="warning")
        log = get_logger("service")
        log_event(log, "quiet")  # INFO, below threshold
        log_event(log, "loud", level=logging.ERROR)
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_reconfigure_never_stacks_handlers(self):
        root, _ = self._capture(level="info")
        for _ in range(3):
            root, _ = self._capture(level="debug")
        own = [h for h in root.handlers
               if getattr(h, "_repro_obs_handler", False)]
        assert len(own) == 1

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("verbose")

    def test_formatters_survive_plain_records(self):
        # records without a fields dict (foreign callers) still format
        record = logging.LogRecord("repro.x", logging.INFO, __file__, 1,
                                   "plain message", (), None)
        assert "plain message" in KeyValueFormatter().format(record)
        assert json.loads(JsonFormatter().format(record))["event"] == "plain message"


# ----------------------------------------------------------------------
# the dashboard renderer
# ----------------------------------------------------------------------
class TestDashboard:
    @staticmethod
    def _artifact(name, created, records):
        return {
            "schema": 1, "kind": "bench", "created_utc": created,
            "version": "1.7.0",
            "platform": {"python": "3.11"},
            "run": {"seed": 0, "workers": 2, "campaign_seconds": 1.25},
            "records": records,
            "_path": name, "_name": name,
        }

    @staticmethod
    def _record(family, best_time, **extras):
        return {
            "scenario": f"{family}_scn", "family": family, "instance": "i0",
            "algorithm": "minmem", "nodes": 10, "best_time": best_time,
            "mean_time": best_time, "repeats": 1, "peak_memory": 1.0,
            "io_volume": None, "optimality_ratio": extras.pop("ratio", None),
            "memory_limit": None, "budget_fraction": None,
            "replay_ok": True, "replay_error": None, "extras": extras,
        }

    def _docs(self):
        traffic_extras = dict(
            latency_p50=0.010, latency_p95=0.025, latency_p99=0.040,
            requests=100, completed=100, rejected=0, deadline_missed=0,
            throughput_rps=50.0,
        )
        return [
            self._artifact("BENCH_a.json", "2026-08-01T00:00:00Z", [
                self._record("assembly", 0.002, ratio=1.15),
                self._record("random", 0.004, ratio=1.02),
            ]),
            self._artifact("BENCH_b.json", "2026-08-02T00:00:00Z", [
                self._record("assembly", 0.0015, ratio=1.10),
                self._record("traffic", 0.010, **traffic_extras),
            ]),
        ]

    def test_renders_all_sections(self):
        from repro.obs.report import render_dashboard

        page = render_dashboard(self._docs())
        assert page.startswith("<!DOCTYPE html>")
        assert "BENCH trajectory" in page
        assert "assembly" in page and "traffic" in page
        assert "<svg" in page and "<title>" in page
        assert "prefers-color-scheme" in page  # dark mode tokens
        assert "p99" in page and "Table view" in page
        assert "BENCH_b.json" in page
        # text never wears series color: labels use ink tokens
        assert 'class="label"' in page

    def test_empty_input_still_renders(self):
        from repro.obs.report import render_dashboard

        page = render_dashboard([])
        assert "no artifacts found" in page

    def test_write_dashboard_round_trip(self, tmp_path):
        from repro.obs.report import load_artifacts, write_dashboard

        paths = []
        for doc in self._docs():
            doc = {k: v for k, v in doc.items() if not k.startswith("_")}
            path = tmp_path / f"BENCH_{len(paths)}.json"
            path.write_text(json.dumps(doc))
            paths.append(path)
        output = write_dashboard(paths, tmp_path / "report.html")
        assert output.is_file()
        text = output.read_text()
        assert "<svg" in text and "assembly" in text
        docs = load_artifacts(paths)
        assert [d["_name"] for d in docs] == ["BENCH_0.json", "BENCH_1.json"]

    def test_load_artifacts_rejects_non_artifacts(self, tmp_path):
        from repro.obs.report import load_artifacts

        bogus = tmp_path / "nope.json"
        bogus.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="records"):
            load_artifacts([bogus])
