"""Unit tests for the matrix -> assembly tree pipeline."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.liu import liu_min_memory
from repro.core.postorder import best_postorder
from repro.sparse.assembly import assembly_tree_from_etree, build_assembly_tree
from repro.sparse.matrices import grid_laplacian_2d, random_spd
from repro.sparse.ordering import ORDERINGS


class TestBuildAssemblyTree:
    @pytest.mark.parametrize("ordering", sorted(ORDERINGS))
    def test_pipeline_all_orderings(self, ordering):
        result = build_assembly_tree(grid_laplacian_2d(8), ordering=ordering, relaxed=1)
        tree = result.tree
        tree.validate()
        assert result.ordering == ordering
        assert sorted(result.permutation.tolist()) == list(range(64))
        # every supernode appears exactly once as a tree node (plus perhaps
        # an artificial super-root)
        supernode_ids = {sn.index for sn in result.amalgamated.supernodes}
        tree_ids = set(tree.nodes())
        assert supernode_ids <= tree_ids
        assert tree_ids - supernode_ids <= {-1}

    def test_weights_follow_paper_formulas(self):
        result = build_assembly_tree(grid_laplacian_2d(8), ordering="rcm", relaxed=2)
        tree = result.tree
        for sn in result.amalgamated.supernodes:
            assert tree.n(sn.index) == pytest.approx(sn.node_weight)
            if tree.parent(sn.index) is not None and tree.parent(sn.index) != -1:
                assert tree.f(sn.index) == pytest.approx(sn.edge_weight)
        # root carries no output file
        assert tree.f(tree.root) == 0.0

    def test_explicit_permutation(self):
        a = grid_laplacian_2d(6)
        perm = np.arange(36)[::-1].copy()
        result = build_assembly_tree(a, ordering=perm, relaxed=1)
        assert result.ordering == "custom"
        assert np.array_equal(result.permutation, perm)

    def test_unknown_ordering(self):
        with pytest.raises(ValueError):
            build_assembly_tree(grid_laplacian_2d(4), ordering="magic")

    def test_relaxation_shrinks_tree(self):
        a = grid_laplacian_2d(10)
        sizes = [
            build_assembly_tree(a, ordering="nested_dissection", relaxed=r).tree.size
            for r in (0, 1, 4, 16)
        ]
        assert all(x >= y for x, y in zip(sizes, sizes[1:]))

    def test_traversal_algorithms_consume_result(self):
        result = build_assembly_tree(random_spd(80, 0.05, seed=21), ordering="minimum_degree")
        tree = result.tree
        post = best_postorder(tree).memory
        opt = liu_min_memory(tree)
        assert post >= opt - 1e-9
        assert opt >= tree.max_mem_req() - 1e-9

    def test_forest_handled(self):
        # block-diagonal matrix -> forest of assembly trees under a super-root
        a = sp.block_diag([grid_laplacian_2d(3), grid_laplacian_2d(3)]).tocsc()
        result = build_assembly_tree(a, ordering="natural", relaxed=0)
        tree = result.tree
        assert tree.root == -1
        assert tree.f(-1) == 0.0 and tree.n(-1) == 0.0
        assert len(tree.children(-1)) >= 2

    def test_metadata_statistics(self):
        result = build_assembly_tree(grid_laplacian_2d(8), ordering="nested_dissection")
        assert result.symbolic.n == 64
        assert result.symbolic.nnz_l >= result.symbolic.nnz_a
        assert result.counts.shape == (64,)
        assert result.etree_parent.shape == (64,)
