"""BENCH JSON artifacts, the regression compare mode, and the bench CLI."""

import json

import pytest

from repro import __version__
from repro.bench import (
    BENCH_SCHEMA_VERSION,
    ArtifactError,
    compare_artifacts,
    load_artifact,
    run_to_dict,
    write_artifact,
)
from repro.bench.runner import run_scenarios
from repro.bench.scenario import Scenario
from repro.cli import main
from repro.core.builders import chain_tree, star_tree


@pytest.fixture(scope="module")
def small_run():
    scenario = Scenario(
        name="unit",
        family="synthetic",
        builder=lambda seed: [
            ("chain-8", chain_tree(8, f=2.0, n=1.0)),
            ("star-6", star_tree(6, leaf_f=3.0, n=1.0)),
        ],
        algorithms=("postorder", "minmem", "minio_first_fit"),
        budget_fractions=(0.5,),
    )
    return run_scenarios([scenario], seed=0, repeat=1)


class TestArtifact:
    def test_document_header(self, small_run):
        doc = run_to_dict(small_run)
        assert doc["schema"] == BENCH_SCHEMA_VERSION
        assert doc["kind"] == "bench"
        assert doc["version"] == __version__
        assert doc["platform"]["python"]
        assert doc["run"]["seed"] == 0
        assert doc["run"]["scenarios"] == ["unit"]
        assert doc["created_utc"].endswith("Z")

    def test_records_shape(self, small_run):
        doc = run_to_dict(small_run)
        assert len(doc["records"]) == len(small_run.records)
        record = doc["records"][0]
        for field in (
            "key", "scenario", "family", "instance", "algorithm", "nodes",
            "peak_memory", "io_volume", "best_time", "mean_time", "repeats",
            "optimality_ratio", "memory_limit", "budget_fraction",
            "replay_ok", "replay_error", "extras",
        ):
            assert field in record
        keys = [r["key"] for r in doc["records"]]
        assert len(keys) == len(set(keys)), "record keys must be unique"

    def test_write_load_roundtrip(self, small_run, tmp_path):
        path = write_artifact(small_run, root=tmp_path)
        assert path.name.startswith("BENCH_") and path.suffix == ".json"
        doc = load_artifact(path)
        assert doc == run_to_dict(small_run, created_utc=doc["created_utc"])

    def test_explicit_path(self, small_run, tmp_path):
        path = write_artifact(small_run, tmp_path / "custom.json")
        assert path == tmp_path / "custom.json"
        assert load_artifact(path)["records"]

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ArtifactError):
            load_artifact(bad)
        bad.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ArtifactError):
            load_artifact(bad)
        bad.write_text(json.dumps({"kind": "bench", "schema": 999, "records": []}))
        with pytest.raises(ArtifactError, match="schema"):
            load_artifact(bad)


class TestCompare:
    def test_identical_is_ok(self, small_run):
        doc = run_to_dict(small_run)
        comparison = compare_artifacts(doc, doc)
        assert comparison.ok
        assert comparison.compared == len(small_run.records)
        assert not comparison.regressions and not comparison.improvements

    def test_peak_regression_flagged(self, small_run):
        old = run_to_dict(small_run)
        new = json.loads(json.dumps(old))
        new["records"][0]["peak_memory"] *= 1.01
        comparison = compare_artifacts(old, new)
        assert not comparison.ok
        (delta,) = comparison.regressions
        assert delta.metric == "peak_memory"
        assert "REGRESSION" in comparison.format_report()

    def test_io_improvement_flagged(self, small_run):
        old = run_to_dict(small_run)
        old["records"][0]["io_volume"] = 4.0
        new = json.loads(json.dumps(old))
        new["records"][0]["io_volume"] = 2.0
        comparison = compare_artifacts(old, new)
        assert comparison.ok
        assert [d.metric for d in comparison.improvements] == ["io_volume"]

    def test_time_threshold(self, small_run):
        old = run_to_dict(small_run)
        new = json.loads(json.dumps(old))
        for record in new["records"]:
            record["best_time"] *= 1.5
        assert not compare_artifacts(old, new, time_threshold=0.25).ok
        assert compare_artifacts(old, new, time_threshold=1.0).ok

    def test_missing_record_is_a_regression(self, small_run):
        old = run_to_dict(small_run)
        new = json.loads(json.dumps(old))
        dropped = new["records"].pop()
        comparison = compare_artifacts(old, new)
        assert not comparison.ok
        assert comparison.missing == (dropped["key"],)

    def test_mismatched_seeds_not_comparable(self, small_run):
        old = run_to_dict(small_run)
        new = json.loads(json.dumps(old))
        new["run"]["seed"] = 1  # same keys, but different seeded instances
        with pytest.raises(ArtifactError, match="seed"):
            compare_artifacts(old, new)

    def test_malformed_record_raises_artifact_error(self, small_run):
        old = run_to_dict(small_run)
        new = json.loads(json.dumps(old))
        del new["records"][0]["peak_memory"]
        with pytest.raises(ArtifactError, match="peak_memory"):
            compare_artifacts(old, new)

    def test_broken_replay_is_a_regression(self, small_run):
        old = run_to_dict(small_run)
        new = json.loads(json.dumps(old))
        new["records"][0]["replay_ok"] = False
        comparison = compare_artifacts(old, new)
        assert [d.metric for d in comparison.regressions] == ["replay"]


class TestBenchCli:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("synthetic", "random", "harpoon", "assembly", "etree"):
            assert name in out

    def test_no_match_filter(self, capsys):
        assert main(["bench", "--filter", "zzz-no-match"]) == 2
        assert "no scenario matches" in capsys.readouterr().err

    def test_invalid_repeat_warmup(self, capsys):
        assert main(["bench", "--repeat", "0"]) == 2
        assert "--repeat" in capsys.readouterr().err
        assert main(["bench", "--warmup", "-1"]) == 2
        assert "--warmup" in capsys.readouterr().err

    def test_run_writes_artifact(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--filter", "harpoon", "--json"]) == 0
        out = capsys.readouterr().out
        assert "harpoon/" in out
        (path,) = tmp_path.glob("BENCH_*.json")
        doc = load_artifact(path)
        algorithms = {r["algorithm"] for r in doc["records"]}
        assert algorithms == {"postorder", "liu", "minmem", "auto"}
        assert all(r["replay_ok"] for r in doc["records"])

    def test_smoke_covers_families_and_algorithms(self, tmp_path, capsys):
        target = tmp_path / "smoke.json"
        assert main(["bench", "--smoke", "--output", str(target)]) == 0
        capsys.readouterr()
        doc = load_artifact(target)
        families = {r["family"] for r in doc["records"]}
        algorithms = {r["algorithm"] for r in doc["records"]}
        assert len(families) >= 4
        assert len(algorithms) >= 3
        assert all(r["replay_ok"] for r in doc["records"])

    def test_compare_exit_codes(self, tmp_path, capsys, small_run):
        old = run_to_dict(small_run)
        new = json.loads(json.dumps(old))
        new["records"][0]["peak_memory"] *= 2.0  # injected regression
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        path_a.write_text(json.dumps(old))
        path_b.write_text(json.dumps(new))
        assert main(["bench", "--compare", str(path_a), str(path_a)]) == 0
        assert main(["bench", "--compare", str(path_a), str(path_b)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["bench", "--compare", str(path_a), "/no/such/file.json"]) == 2
