"""Tests for the solver service daemon (repro.service)."""

import asyncio
import json
import time

import pytest

from repro.core.builders import chain_tree
from repro.core.kernel import TreeKernel
from repro.core.serialize import tree_to_dict
from repro.core.traversal import BOTTOMUP, Traversal
from repro.solvers import SolveReport, register_solver, solve
from repro.service import (
    BadRequestError,
    DeadlineError,
    QueueFullError,
    ServiceClosedError,
    SolverService,
    TreeInterner,
    UnknownTreeTokenError,
    error_from_dict,
    parse_request,
    serve_stdio,
    start_http_server,
    tree_payload_token,
)
from repro.service.errors import SolverFailedError


def run(coro):
    """Drive one async test body (the suite has no asyncio plugin)."""
    return asyncio.run(coro)


PARENTS = {"parents": [-1, 0, 0, 1, 1], "f": [0.0, 2.0, 3.0, 1.0, 2.0],
           "n": [1.0, 2.0, 1.0, 1.0, 3.0]}


@pytest.fixture(scope="module", autouse=True)
def _sleepy_solver():
    # registered at fixture time (never at import), so parametrized tests
    # that enumerate list_solvers() at collection never see it
    @register_solver("svc_sleepy", family="test", summary="sleeps then answers")
    def _sleepy(tree, *, seconds=0.2, **_ignored):
        time.sleep(float(seconds))
        root = tree.ids[0] if isinstance(tree, TreeKernel) else tree.root
        return SolveReport(
            algorithm="svc_sleepy",
            peak_memory=1.0,
            traversal=Traversal((root,), BOTTOMUP),
        )

    yield


# ----------------------------------------------------------------------
# protocol: tokens, interner, request parsing
# ----------------------------------------------------------------------
class TestProtocol:
    def test_token_is_content_addressed(self):
        assert tree_payload_token(PARENTS) == tree_payload_token(dict(PARENTS))
        other = dict(PARENTS, f=[0.0, 2.0, 3.0, 1.0, 2.5])
        assert tree_payload_token(other) != tree_payload_token(PARENTS)
        assert tree_payload_token(PARENTS).startswith("t-")

    def test_parse_request_builds_tree_and_canonicalises(self):
        interner = TreeInterner()
        request = parse_request(
            {"tree": PARENTS, "algorithm": "MinMem", "memory": 12,
             "options": {"engine": "kernel"}},
            interner,
        )
        assert request.algorithm == "minmem"  # canonical registry name
        assert request.memory == 12.0
        assert request.tree.size == 5
        assert request.tree_token == tree_payload_token(PARENTS)
        assert request.id.startswith("req-")

    def test_parse_request_accepts_stored_tree_documents(self):
        interner = TreeInterner()
        doc = {"tree": tree_to_dict(chain_tree(6, f=2.0, n=1.0))}
        request = parse_request(doc, interner)
        assert request.tree.size == 6

    def test_parse_request_accepts_unordered_parent_arrays(self):
        interner = TreeInterner()
        # root last: the topological fast path must hand over to the
        # validating builder instead of rejecting the request
        request = parse_request(
            {"tree": {"parents": [2, 2, -1], "f": [1.0, 2.0, 0.0]}}, interner
        )
        assert request.tree.size == 3

    @pytest.mark.parametrize("doc,match", [
        ("not a dict", "JSON object"),
        ({}, "'tree'"),
        ({"tree": {"parents": []}}, "non-empty"),
        ({"tree": {"parents": [-1, 0], "f": [1.0]}}, "entries"),
        ({"tree": {"wrong": 1}}, "parents"),
        ({"tree": PARENTS, "id": ""}, "non-empty string"),
        ({"tree": PARENTS, "algorithm": "nope"}, "nope"),
        ({"tree": PARENTS, "memory": "much"}, "number"),
        ({"tree": PARENTS, "deadline": 0}, "> 0"),
        ({"tree": PARENTS, "deadline": "soon"}, "number"),
        ({"tree": PARENTS, "options": [1]}, "object"),
        ({"tree": PARENTS, "options": {"pool": "persistent"}}, "reserved"),
        ({"tree": PARENTS, "report": "verbose"}, "report"),
    ])
    def test_parse_request_rejects_malformed(self, doc, match):
        with pytest.raises(BadRequestError, match=match):
            parse_request(doc, TreeInterner())

    def test_parse_request_applies_default_deadline(self):
        interner = TreeInterner()
        request = parse_request({"tree": PARENTS}, interner, default_deadline=2.5)
        assert request.deadline == 2.5
        explicit = parse_request(
            {"tree": PARENTS, "deadline": 0.5}, interner, default_deadline=2.5
        )
        assert explicit.deadline == 0.5

    def test_interner_lru_evicts_and_counts(self):
        interner = TreeInterner(capacity=2)
        token_a, tree_a = interner.intern(PARENTS)
        token_b, _ = interner.intern({"parents": [-1, 0], "f": [0.0, 1.0]})
        assert interner.misses == 2
        # re-intern a: a hit, and it becomes most-recently-used
        token_a2, tree_a2 = interner.intern(PARENTS)
        assert (token_a2, tree_a2) == (token_a, tree_a)
        assert interner.hits == 1
        # third distinct payload evicts b (least recently used)
        interner.intern({"parents": [-1, 0, 1], "f": [0.0, 1.0, 2.0]})
        assert len(interner) == 2
        assert interner.lookup(token_a) is tree_a
        with pytest.raises(UnknownTreeTokenError, match="re-send"):
            interner.lookup(token_b)

    def test_error_from_dict_round_trips_types(self):
        for error in (QueueFullError("full"), ServiceClosedError("bye"),
                      BadRequestError("bad"), SolverFailedError("boom")):
            rebuilt = error_from_dict(error.to_dict())
            assert type(rebuilt) is type(error)
            assert str(rebuilt) == str(error)
        deadline = error_from_dict(
            DeadlineError("late", stage="executing").to_dict()
        )
        assert isinstance(deadline, DeadlineError)
        assert deadline.stage == "executing"


# ----------------------------------------------------------------------
# the daemon core
# ----------------------------------------------------------------------
class TestDaemon:
    def test_ok_path_matches_direct_solve(self):
        async def body():
            async with SolverService(pool="serial") as svc:
                response = await svc.handle(
                    {"tree": PARENTS, "algorithm": "minmem"}
                )
                assert response.ok
                assert response.total_seconds >= response.solve_seconds
                return response.report

        report = run(body())
        from repro.core.tree import Tree

        direct = solve(
            Tree.from_parents(PARENTS["parents"], f=PARENTS["f"], n=PARENTS["n"]),
            "minmem",
        )
        assert report == direct

    def test_token_reuse_and_report_modes(self):
        async def body():
            async with SolverService(pool="serial") as svc:
                full = await svc.handle({"tree": PARENTS, "report": "full"})
                token = full.tree_token
                summary = await svc.handle(
                    {"tree": {"token": token}, "report": "summary"}
                )
                none = await svc.handle(
                    {"tree": {"token": token}, "report": "none"}
                )
                unknown = await svc.handle({"tree": {"token": "t-feedfacedeadbeef"}})
                return full, summary, none, unknown, svc.snapshot()

        full, summary, none, unknown, snap = run(body())
        assert "traversal" in full.to_dict()["report"]
        assert "traversal" not in summary.to_dict()["report"]
        assert summary.to_dict()["report"]["peak_memory"] == full.report.peak_memory
        assert "report" not in none.to_dict()
        assert unknown.status == "unknown_tree_token"
        assert snap["interned_trees"] == 1
        assert snap["interner_hits"] == 2

    def test_unknown_service_pool_mode_rejected_eagerly(self):
        with pytest.raises(ValueError, match="fresh"):
            SolverService(pool="fresh")

    def test_queue_full_rejects_synchronously(self):
        async def body():
            async with SolverService(
                pool="serial", max_pending=2, max_inflight=1
            ) as svc:
                interner = svc.interner
                doc = {"tree": PARENTS, "algorithm": "svc_sleepy",
                       "options": {"seconds": 0.15}}
                first = svc.submit_nowait(parse_request(dict(doc), interner))
                second = svc.submit_nowait(parse_request(dict(doc), interner))
                with pytest.raises(QueueFullError, match="retry"):
                    svc.submit_nowait(parse_request(dict(doc), interner))
                # the typed rejection also surfaces as a response document
                rejected = await svc.handle(dict(doc))
                assert rejected.status == "rejected"
                assert rejected.error.http_status == 429
                with pytest.raises(QueueFullError):
                    rejected.raise_for_status()
                results = await asyncio.gather(first, second)
                assert [r.status for r in results] == ["ok", "ok"]
                assert svc.stats.rejected == 2
                assert svc.stats.completed == 2

        run(body())

    def test_queue_full_under_concurrent_submitters(self):
        async def body():
            async with SolverService(
                pool="serial", max_pending=3, max_inflight=1
            ) as svc:
                doc = {"tree": PARENTS, "algorithm": "svc_sleepy",
                       "options": {"seconds": 0.05}}
                responses = await asyncio.gather(
                    *(svc.handle(dict(doc)) for _ in range(8))
                )
                ok = [r for r in responses if r.ok]
                rejected = [r for r in responses if r.status == "rejected"]
                assert len(ok) + len(rejected) == 8
                assert len(ok) == 3  # the admission bound, exactly
                assert svc.stats.rejected == 5
                assert svc.stats.max_queue_depth <= 3

        run(body())

    def test_deadline_expires_while_queued(self):
        async def body():
            async with SolverService(pool="serial", max_inflight=1) as svc:
                interner = svc.interner
                blocker = svc.submit_nowait(parse_request(
                    {"tree": PARENTS, "algorithm": "svc_sleepy",
                     "options": {"seconds": 0.3}}, interner))
                doomed = svc.submit_nowait(parse_request(
                    {"tree": PARENTS, "algorithm": "minmem", "deadline": 0.05},
                    interner))
                t0 = time.perf_counter()
                response = await doomed
                waited = time.perf_counter() - t0
                assert response.status == "deadline"
                assert response.error.stage == "queued"
                assert response.solve_seconds == 0.0
                # the response arrived at the deadline, not after the queue
                assert waited < 0.25
                await blocker
                assert svc.stats.deadline_miss_queued == 1
                assert svc.stats.deadline_miss_executing == 0

        run(body())

    def test_deadline_expires_while_executing(self):
        async def body():
            async with SolverService(pool="serial", max_inflight=1) as svc:
                t0 = time.perf_counter()
                response = await svc.handle(
                    {"tree": PARENTS, "algorithm": "svc_sleepy",
                     "deadline": 0.08, "options": {"seconds": 0.4}}
                )
                waited = time.perf_counter() - t0
                assert response.status == "deadline"
                assert response.error.stage == "executing"
                assert response.solve_seconds > 0.0
                assert waited < 0.35  # responded at the deadline, mid-solve
                assert svc.stats.deadline_miss_executing == 1
                with pytest.raises(DeadlineError):
                    response.raise_for_status()

        run(body())

    def test_close_drains_admitted_requests(self):
        async def body():
            svc = await SolverService(pool="serial", max_inflight=1).start()
            futures = [
                svc.submit_nowait(parse_request({"tree": PARENTS}, svc.interner))
                for _ in range(4)
            ]
            await svc.close()  # drain=True: every admitted request answers
            responses = [f.result() for f in futures]
            assert all(r.ok for r in responses)
            assert svc.stats.completed == 4
            with pytest.raises(ServiceClosedError):
                svc.submit_nowait(parse_request({"tree": PARENTS}, svc.interner))
            closed = await svc.handle({"tree": PARENTS})
            assert closed.status == "closed"

        run(body())

    def test_close_abort_flushes_queue_with_typed_responses(self):
        async def body():
            svc = await SolverService(pool="serial", max_inflight=1).start()
            doc = {"tree": PARENTS, "algorithm": "svc_sleepy",
                   "options": {"seconds": 0.1}}
            futures = [
                svc.submit_nowait(parse_request(dict(doc), svc.interner))
                for _ in range(3)
            ]
            await asyncio.sleep(0.02)  # let the first reach the executor
            await svc.close(drain=False)
            statuses = [f.result().status for f in futures]
            assert statuses[0] == "ok"  # already executing: runs out
            assert statuses[1:] == ["closed", "closed"]
            assert svc.stats.drained == 2

        run(body())

    def test_solver_failure_is_a_typed_response(self):
        async def body():
            async with SolverService(pool="serial") as svc:
                response = await svc.handle(
                    {"tree": PARENTS, "algorithm": "svc_sleepy",
                     "options": {"seconds": "not-a-number"}}
                )
                assert response.status == "solver_error"
                assert response.error.cause_type
                assert svc.stats.solver_errors == 1

        run(body())

    def test_engine_backed_service_matches_serial_and_shuts_down(self):
        async def body():
            svc = SolverService(workers=2, pool="persistent")
            async with svc:
                assert svc._engine is not None
                responses = await asyncio.gather(*(
                    svc.handle({"tree": PARENTS, "algorithm": name})
                    for name in ("minmem", "liu", "postorder")
                ))
                assert all(r.ok for r in responses)
                reports = {r.algorithm: r.report for r in responses}
            # drained close released the workers and the shared segments
            assert svc._engine.pool.executor is None
            return reports

        reports = run(body())
        from repro.core.tree import Tree

        tree = Tree.from_parents(PARENTS["parents"], f=PARENTS["f"], n=PARENTS["n"])
        for name, report in reports.items():
            assert report == solve(tree, name)

    def test_stats_snapshot_shape(self):
        async def body():
            async with SolverService(pool="serial") as svc:
                await svc.handle({"tree": PARENTS})
                return svc.snapshot()

        snap = run(body())
        for key in ("accepted", "completed", "rejected", "deadline_misses",
                    "latency_seconds", "pending", "max_pending", "pool",
                    "accepting"):
            assert key in snap
        assert snap["latency_seconds"]["p99"] >= snap["latency_seconds"]["p50"] >= 0


# ----------------------------------------------------------------------
# front ends
# ----------------------------------------------------------------------
class TestStdioFrontEnd:
    def _drive(self, lines):
        """Feed lines to serve_stdio; (response docs, final snapshot)."""
        async def body():
            feed = asyncio.Queue()
            for line in lines:
                await feed.put(line)
            await feed.put(None)  # EOF
            out = []

            async def read_line():
                return await feed.get()

            async def write_line(text):
                out.append(json.loads(text))

            async with SolverService(pool="serial") as svc:
                snapshot = await serve_stdio(svc, read_line, write_line)
            return out, snapshot

        return run(body())

    def test_requests_stats_and_garbage(self):
        out, snapshot = self._drive([
            json.dumps({"id": "a", "tree": PARENTS, "algorithm": "minmem"}),
            "",                      # blank lines are ignored
            "{not json",
            json.dumps({"op": "stats"}),
            json.dumps({"id": "b", "tree": {"token": tree_payload_token(PARENTS)},
                        "algorithm": "liu"}),
        ])
        by_id = {doc.get("id"): doc for doc in out if "op" not in doc}
        assert by_id["a"]["status"] == "ok"
        assert by_id["b"]["status"] == "ok"
        garbage = [d for d in out if d.get("status") == "bad_request"]
        assert len(garbage) == 1 and "JSON" in garbage[0]["error"]["message"]
        stats_docs = [d for d in out if d.get("op") == "stats"]
        assert len(stats_docs) == 1
        assert snapshot["completed"] == 2
        assert snapshot["bad_requests"] == 1

    def test_shutdown_op_stops_reading(self):
        out, snapshot = self._drive([
            json.dumps({"id": "a", "tree": PARENTS}),
            json.dumps({"op": "shutdown"}),
            json.dumps({"id": "never", "tree": PARENTS}),
        ])
        ids = {doc.get("id") for doc in out}
        assert "a" in ids and "never" not in ids
        assert snapshot["accepted"] == 1


class TestHttpFrontEnd:
    @staticmethod
    async def _request(host, port, method, path, body=None):
        reader, writer = await asyncio.open_connection(host, port)
        payload = b"" if body is None else json.dumps(body).encode()
        writer.write(
            f"{method} {path} HTTP/1.1\r\nContent-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload
        )
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = (await reader.readline()).decode().strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.lower()] = value.strip()
        doc = json.loads(await reader.readexactly(int(headers["content-length"])))
        writer.close()
        return status, doc

    def test_routes_and_status_mapping(self):
        async def body():
            async with SolverService(pool="serial") as svc:
                server = await start_http_server(svc, port=0)
                host, port = server.sockets[0].getsockname()[:2]
                results = {}
                results["ok"] = await self._request(
                    host, port, "POST", "/solve",
                    {"id": "h1", "tree": PARENTS, "algorithm": "minmem"})
                results["bad"] = await self._request(
                    host, port, "POST", "/solve", {"tree": {"parents": []}})
                results["health"] = await self._request(host, port, "GET", "/healthz")
                results["stats"] = await self._request(host, port, "GET", "/stats")
                results["missing"] = await self._request(host, port, "GET", "/nope")
                results["method"] = await self._request(host, port, "GET", "/solve")
                server.close()
                await server.wait_closed()
                return results

        results = run(body())
        status, doc = results["ok"]
        assert (status, doc["status"], doc["id"]) == (200, "ok", "h1")
        assert results["bad"][0] == 400
        assert results["health"] == (200, {"status": "ok", "accepting": True})
        assert results["stats"][0] == 200
        assert results["stats"][1]["completed"] == 1
        assert results["missing"][0] == 404
        assert results["method"][0] == 405

    def test_keep_alive_serves_sequential_requests(self):
        async def body():
            async with SolverService(pool="serial") as svc:
                server = await start_http_server(svc, port=0)
                host, port = server.sockets[0].getsockname()[:2]
                reader, writer = await asyncio.open_connection(host, port)
                for i in range(2):  # two requests, one connection
                    payload = json.dumps(
                        {"id": f"k{i}", "tree": PARENTS}).encode()
                    writer.write(
                        f"POST /solve HTTP/1.1\r\n"
                        f"Content-Length: {len(payload)}\r\n\r\n".encode()
                        + payload
                    )
                    await writer.drain()
                    status = int((await reader.readline()).split()[1])
                    assert status == 200
                    headers = {}
                    while True:
                        line = (await reader.readline()).decode().strip()
                        if not line:
                            break
                        name, _, value = line.partition(":")
                        headers[name.lower()] = value.strip()
                    doc = json.loads(await reader.readexactly(
                        int(headers["content-length"])))
                    assert doc["id"] == f"k{i}"
                writer.close()
                server.close()
                await server.wait_closed()

        run(body())


# ----------------------------------------------------------------------
# observability: streaming latencies, spans, /metrics
# ----------------------------------------------------------------------
class TestObservability:
    def test_latency_percentiles_move_past_any_sample_volume(self):
        # regression: the old list-backed stats capped recording at 200k
        # samples, freezing p50/p95/p99 for the rest of the daemon's life
        from repro.service.daemon import ServiceStats

        stats = ServiceStats()
        for _ in range(210_000):
            stats.record_latency(0.001)
        frozen = stats.latency_percentiles()
        for _ in range(60_000):
            stats.record_latency(2.0)
        moved = stats.latency_percentiles()
        assert moved["p99"] > frozen["p99"] * 100
        assert moved["p95"] > frozen["p95"] * 100
        assert stats.latency.count == 270_000

    def test_response_carries_stage_breakdown(self):
        from repro.obs import REQUEST_STAGES

        async def body():
            async with SolverService(pool="serial") as svc:
                return await svc.handle({"id": "t1", "tree": PARENTS})

        response = run(body())
        doc = response.to_dict()
        stages = doc["timing"]["stages"]
        assert set(stages) == set(REQUEST_STAGES)
        assert all(value >= 0.0 for value in stages.values())
        # the daemon-side stages nest inside the reported total
        daemon_side = stages["queued"] + stages["dispatch"] + stages["solve"]
        assert daemon_side <= doc["timing"]["total_seconds"] * 1.5 + 1e-6

    def test_deadline_response_still_reports_stages(self):
        async def body():
            async with SolverService(pool="serial") as svc:
                return await svc.handle({
                    "id": "d1", "tree": PARENTS, "algorithm": "svc_sleepy",
                    "deadline": 0.05, "options": {"seconds": 0.5},
                })

        response = run(body())
        assert response.status == "deadline"
        stages = response.stages
        assert stages is not None and "queued" in stages

    def test_render_metrics_matches_stats(self):
        from repro.obs import parse_exposition

        async def body():
            async with SolverService(pool="serial") as svc:
                await svc.handle({"id": "m1", "tree": PARENTS})
                await svc.handle({"id": "m2", "tree": {"parents": []}})
                return svc.render_metrics(), svc.snapshot()

        text, snap = run(body())
        families = parse_exposition(text)
        assert families["repro_service_latency_seconds"]["type"] == "histogram"
        samples = families["repro_service_requests_total"]["samples"]
        by_outcome = {
            labels.get("outcome"): value for _, labels, value in samples
        }
        assert by_outcome["completed"] == snap["completed"] == 1
        assert by_outcome["bad_request"] == snap["bad_requests"] == 1
        assert "repro_build_info" in families
        assert "repro_service_stage_seconds" in families

    def test_engine_backed_metrics_include_engine_families(self):
        from repro.obs import parse_exposition

        async def body():
            svc = SolverService(workers=2, pool="persistent")
            async with svc:
                await svc.handle({"id": "e1", "tree": PARENTS})
                return svc.render_metrics(), svc.snapshot()

        text, snap = run(body())
        families = parse_exposition(text)
        assert "repro_engine_submits_total" in families
        assert "repro_engine_arena_exports_total" in families
        assert "engine" in snap and snap["engine"]["submits"] >= 1

    def test_http_metrics_endpoint(self):
        from repro.obs import parse_exposition

        async def body():
            async with SolverService(pool="serial") as svc:
                server = await start_http_server(svc, port=0)
                host, port = server.sockets[0].getsockname()[:2]
                await self._post_solve(host, port)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                await writer.drain()
                status = int((await reader.readline()).split()[1])
                headers = {}
                while True:
                    line = (await reader.readline()).decode().strip()
                    if not line:
                        break
                    name, _, value = line.partition(":")
                    headers[name.lower()] = value.strip()
                body_bytes = await reader.readexactly(
                    int(headers["content-length"])
                )
                writer.close()
                server.close()
                await server.wait_closed()
                return status, headers, body_bytes.decode()

        status, headers, text = run(body())
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert "version=0.0.4" in headers["content-type"]
        families = parse_exposition(text)
        assert "repro_service_latency_seconds" in families

    @staticmethod
    async def _post_solve(host, port):
        payload = json.dumps({"id": "warm", "tree": PARENTS}).encode()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            f"POST /solve HTTP/1.1\r\nContent-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload
        )
        await writer.drain()
        await reader.read()
        writer.close()

    def test_stdio_metrics_op(self):
        async def body():
            feed = asyncio.Queue()
            await feed.put(json.dumps({"id": "a", "tree": PARENTS}))
            await feed.put(json.dumps({"op": "metrics"}))
            await feed.put(None)
            out = []

            async def read_line():
                return await feed.get()

            async def write_line(text):
                out.append(json.loads(text))

            async with SolverService(pool="serial") as svc:
                await serve_stdio(svc, read_line, write_line)
            return out

        out = run(body())
        metrics_docs = [d for d in out if d.get("op") == "metrics"]
        assert len(metrics_docs) == 1
        doc = metrics_docs[0]
        assert doc["content_type"].startswith("text/plain")
        from repro.obs import parse_exposition

        assert "repro_service_accepted_total" in parse_exposition(doc["body"])

    def test_serve_logs_bound_port(self):
        # `serve --port 0`: the structured http_listening event names the
        # actually-bound ephemeral port
        import logging
        from io import StringIO

        from repro.obs import configure_logging

        stream = StringIO()
        configure_logging("info", stream=stream)
        try:
            async def body():
                async with SolverService(pool="serial") as svc:
                    server = await start_http_server(svc, port=0)
                    port = server.sockets[0].getsockname()[1]
                    server.close()
                    await server.wait_closed()
                    return port

            port = run(body())
            logged = stream.getvalue()
            assert "http_listening" in logged
            assert f"port={port}" in logged
            assert port != 0
        finally:
            root = logging.getLogger("repro")
            for handler in list(root.handlers):
                if getattr(handler, "_repro_obs_handler", False):
                    root.removeHandler(handler)


# ----------------------------------------------------------------------
# resilience: circuit breaker, degradation ladder, abort-close hygiene
# ----------------------------------------------------------------------
class TestResilience:
    def _chaos_service(self, *, threshold=2, cooldown=10.0, faults=2, **kw):
        """A threads-engine service whose first ``faults`` cells hit an
        injected BrokenProcessPool, driving a stepped-clock breaker."""
        from repro.faults import CircuitBreaker, FaultPlan, FaultSpec

        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=threshold, cooldown=cooldown,
            clock=lambda: clock[0],
        )
        plan = FaultPlan(
            [FaultSpec("broken_pool", i) for i in range(faults)]
        )
        svc = SolverService(workers=2, pool="threads", breaker=breaker,
                            fault_plan=plan, **kw)
        return svc, breaker, clock

    def test_breaker_opens_rejects_and_recovers_end_to_end(self):
        from repro.service import CircuitOpenError

        async def body():
            svc, breaker, clock = self._chaos_service()
            async with svc:
                # two consecutive engine infrastructure failures (the
                # requests still answer, one rung down the ladder) ...
                for i in range(2):
                    response = await svc.handle({"tree": PARENTS, "id": f"r{i}"})
                    assert response.ok
                assert breaker.state == "open"
                # ... open the circuit: admission now refuses with the
                # typed 503, both as an exception and as a wire response
                with pytest.raises(CircuitOpenError) as excinfo:
                    svc.submit_nowait(
                        parse_request({"tree": PARENTS}, svc.interner)
                    )
                assert excinfo.value.http_status == 503
                rejected = await svc.handle({"tree": PARENTS, "id": "r2"})
                assert rejected.status == "circuit_open"
                # past the cooldown the half-open probe goes through,
                # succeeds, and closes the circuit again
                clock[0] = 10.0
                probe = await svc.handle({"tree": PARENTS, "id": "r3"})
                assert probe.ok
                assert breaker.state == "closed"
                text = svc.render_metrics()
                snap = svc.snapshot()
            assert 'repro_circuit_state 0' in text
            for transition in ("closed->open", "open->half_open",
                              "half_open->closed"):
                assert (f'repro_circuit_transitions_total'
                        f'{{transition="{transition}"}} 1') in text
            assert "repro_circuit_rejections_total 2" in text  # both refusals
            assert ('repro_retry_attempts_total'
                    '{fault="broken_pool",layer="service"}') in text
            assert 'repro_fault_injections_total{kind="broken_pool"}' in text
            assert snap["breaker"]["transitions"] == {
                "closed->open": 1, "open->half_open": 1,
                "half_open->closed": 1,
            }

        run(body())

    def test_responses_record_the_degradation_ladder(self):
        async def body():
            svc, _, _ = self._chaos_service(threshold=10, faults=1)
            async with svc:
                degraded = await svc.handle({"tree": PARENTS, "id": "a"})
                healthy = await svc.handle({"tree": PARENTS, "id": "b"})
            # the broken-pool request answered from the thread fallback;
            # the next one from the engine tier again
            assert degraded.extras["tier"] == "threads"
            assert healthy.extras["tier"] == "threads"
            assert "degraded" not in healthy.extras
            # the wire form carries the extras block only when present
            assert degraded.to_dict()["extras"]["tier"] == "threads"

        run(body())

    @pytest.mark.skipif(
        __import__("repro.solvers.engine.pool", fromlist=["PersistentPool"])
        .PersistentPool().ensure(2) is None,
        reason="platform cannot spawn worker processes",
    )
    def test_degraded_flag_set_below_the_engine_tier(self):
        from repro.faults import FaultPlan, FaultSpec

        async def body():
            plan = FaultPlan([FaultSpec("broken_pool", 0)])
            svc = SolverService(workers=2, pool="persistent", fault_plan=plan)
            async with svc:
                degraded = await svc.handle({"tree": PARENTS, "id": "a"})
                healthy = await svc.handle({"tree": PARENTS, "id": "b"})
            assert degraded.extras == {"tier": "threads", "degraded": True}
            assert healthy.extras == {"tier": "persistent"}

        run(body())

    def test_abort_close_settles_executing_requests_and_their_timers(self):
        # the watchdog-leak regression: an abort-close used to cancel the
        # executing tasks' coroutines without settling their futures or
        # cancelling their deadline timers
        async def body():
            svc = await SolverService(pool="serial", max_inflight=4).start()
            doc = {"tree": PARENTS, "algorithm": "svc_sleepy",
                   "options": {"seconds": 5.0}, "deadline": 30.0}
            futures = [
                svc.submit_nowait(parse_request(dict(doc), svc.interner))
                for _ in range(3)
            ]
            await asyncio.sleep(0.05)  # all three are executing, timers armed
            assert svc.live_timers == 3
            await svc.close(drain=False)
            assert all(f.done() for f in futures)
            statuses = [f.result().status for f in futures]
            assert statuses == ["closed", "closed", "closed"]
            assert svc.live_timers == 0
            assert svc.pending == 0
            assert svc.stats.drained == 3

        run(body())

    def test_graceful_close_also_leaves_no_timers(self):
        async def body():
            async with SolverService(pool="serial") as svc:
                doc = {"tree": PARENTS, "deadline": 30.0}
                response = await svc.handle(doc)
                assert response.ok
                assert svc.live_timers == 0
            assert svc.live_timers == 0

        run(body())
