"""Unit tests for the multifrontal Cholesky engine."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.liu import liu_optimal_traversal
from repro.core.minmem import min_mem
from repro.core.postorder import best_postorder
from repro.core.traversal import BOTTOMUP, Traversal, peak_memory
from repro.sparse.etree import elimination_tree, etree_postorder
from repro.sparse.matrices import banded_spd, grid_laplacian_2d, random_spd
from repro.sparse.multifrontal import frontal_memory_tree, multifrontal_cholesky


def factorization_error(matrix, factor):
    return float(np.abs((factor @ factor.T - matrix)).max())


class TestNumericFactorization:
    @pytest.mark.parametrize(
        "matrix",
        [grid_laplacian_2d(6), banded_spd(40, 3, seed=2), random_spd(50, 0.06, seed=8)],
        ids=["grid", "banded", "random"],
    )
    def test_llt_equals_a(self, matrix):
        result = multifrontal_cholesky(matrix)
        assert factorization_error(matrix, result.factor) < 1e-9

    def test_factor_is_lower_triangular(self):
        result = multifrontal_cholesky(grid_laplacian_2d(5))
        rows, cols = result.factor.nonzero()
        assert np.all(rows >= cols)

    def test_matches_scipy_dense_cholesky(self):
        a = grid_laplacian_2d(5)
        result = multifrontal_cholesky(a)
        dense_l = np.linalg.cholesky(a.toarray())
        assert np.allclose(result.factor.toarray(), dense_l, atol=1e-10)

    def test_non_spd_rejected(self):
        a = sp.identity(4, format="csc") * -1.0
        with pytest.raises(ValueError):
            multifrontal_cholesky(a)

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            multifrontal_cholesky(sp.csc_matrix(np.ones((3, 4))))

    def test_custom_traversal_same_factor(self):
        a = grid_laplacian_2d(5)
        default = multifrontal_cholesky(a)
        # use the optimal (possibly non-postorder) traversal of the column tree
        tree = frontal_memory_tree(a)
        traversal = min_mem(tree).traversal
        order = tuple(v for v in traversal.reversed().order)
        custom = multifrontal_cholesky(a, Traversal(order, BOTTOMUP))
        assert np.allclose(default.factor.toarray(), custom.factor.toarray())

    def test_incomplete_traversal_rejected(self):
        a = grid_laplacian_2d(3)
        with pytest.raises(ValueError):
            multifrontal_cholesky(a, Traversal((0, 1, 2), BOTTOMUP))


class TestMemoryAccounting:
    def test_peak_matches_task_tree_model(self):
        """The engine's peak equals the task-tree peak for the same traversal."""
        for matrix in (grid_laplacian_2d(7), banded_spd(40, 4, seed=1)):
            tree = frontal_memory_tree(matrix)
            post = Traversal(
                tuple(int(j) for j in etree_postorder(elimination_tree(matrix))), BOTTOMUP
            )
            engine = multifrontal_cholesky(matrix, post)
            assert engine.peak_memory == pytest.approx(peak_memory(tree, post))

    def test_better_traversal_never_hurts(self):
        a = grid_laplacian_2d(7)
        tree = frontal_memory_tree(a)
        optimal = liu_optimal_traversal(tree)
        postorder = best_postorder(tree)
        peak_optimal = multifrontal_cholesky(a, optimal.traversal).peak_memory
        peak_postorder = multifrontal_cholesky(a, postorder.traversal).peak_memory
        assert peak_optimal <= peak_postorder + 1e-9
        assert peak_optimal == pytest.approx(optimal.memory)

    def test_cb_volume_independent_of_traversal(self):
        a = grid_laplacian_2d(6)
        tree = frontal_memory_tree(a)
        t1 = multifrontal_cholesky(a, best_postorder(tree).traversal)
        t2 = multifrontal_cholesky(a, min_mem(tree).traversal.reversed())
        assert t1.total_cb_volume == pytest.approx(t2.total_cb_volume)


class TestFrontalMemoryTree:
    def test_structure_matches_etree(self):
        a = grid_laplacian_2d(5)
        tree = frontal_memory_tree(a)
        parent = elimination_tree(a)
        assert tree.size == a.shape[0]
        for j in range(a.shape[0]):
            expected = None if parent[j] < 0 else int(parent[j])
            assert tree.parent(j) == expected

    def test_weights_are_front_sizes(self):
        from repro.sparse.symbolic import column_patterns

        a = grid_laplacian_2d(4)
        tree = frontal_memory_tree(a)
        patterns = column_patterns(a)
        for j in range(a.shape[0]):
            front = (len(patterns[j]) + 1) ** 2
            assert tree.n(j) + tree.f(j) == pytest.approx(front)
