"""Differential tests: incremental re-solve vs the from-scratch oracle.

``solve(tree, alg, reuse=report)`` promises *bit identity* with a
from-scratch solve of the mutated tree -- same peak (exact float ``==``),
same witness traversal, same I/O volume.  The oracle here is
``solve(tree.copy(), alg)``: the copy rebuilds its kernel with the
BFS labeling, so the comparison also proves the patched kernel's
append-at-the-end labeling does not leak into any result.

Coverage comes in two shapes: a hypothesis layer drawing adversarial
trees and mutation scripts interactively, and a seeded bulk layer
driving over a thousand independent mutation sequences (the acceptance
floor of the differential harness) with mode accounting -- the patched
fast path must actually run, not silently fall back to full sweeps.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from _diff_strategies import draw_mutations, task_trees
from repro.core.tree import Tree
from repro.solvers import solve
from repro.solvers.incremental import (
    INCREMENTAL_ALGORITHMS,
    STATE_CACHE_CAPACITY,
    clear_state_cache,
    solve_incremental,
    state_cache_size,
)

ALGORITHMS = ("postorder", "liu")


def assert_bit_identical(got, want) -> None:
    assert got.peak_memory == want.peak_memory
    assert got.traversal.order == want.traversal.order
    assert got.traversal.convention == want.traversal.convention
    assert got.io_volume == want.io_volume


def mutate(rng: random.Random, tree: Tree, max_ops: int) -> None:
    """Seeded analogue of :func:`_diff_strategies.draw_mutations`."""
    for _ in range(rng.randrange(1, max_ops + 1)):
        kind = rng.randrange(3)
        if kind == 0:
            tree.add_node(
                tree.size,
                parent=rng.randrange(tree.size),
                f=float(rng.randrange(13)),
                n=float(rng.randrange(7)),
            )
        elif kind == 1:
            tree.set_f(rng.randrange(tree.size), float(rng.randrange(13)))
        else:
            tree.set_n(rng.randrange(tree.size), float(rng.randrange(7)))


@given(data=st.data())
def test_incremental_matches_oracle(data):
    """Drawn tree, drawn mutation rounds: every re-solve is bit-identical."""
    tree = data.draw(task_trees(), label="tree")
    algorithm = data.draw(st.sampled_from(ALGORITHMS), label="algorithm")
    rounds = data.draw(st.integers(min_value=1, max_value=3), label="rounds")

    report = solve(tree, algorithm, reuse=True)
    assert_bit_identical(report, solve(tree.copy(), algorithm))
    assert report.extras["incremental"] == "full"

    for _ in range(rounds):
        draw_mutations(data, tree)
        report = solve(tree, algorithm, reuse=report)
        assert_bit_identical(report, solve(tree.copy(), algorithm))
        assert report.extras["incremental"] in ("patched", "full")


@given(data=st.data())
def test_unchanged_tree_hits_cache(data):
    """reuse= on an unmutated tree returns the cached state verbatim."""
    tree = data.draw(task_trees(max_nodes=20), label="tree")
    algorithm = data.draw(st.sampled_from(ALGORITHMS), label="algorithm")
    first = solve(tree, algorithm, reuse=True)
    again = solve(tree, algorithm, reuse=first)
    assert again.extras["incremental"] == "cached"
    assert_bit_identical(again, first)


def test_thousand_mutation_sequences():
    """The acceptance floor: >= 1000 independent seeded mutation sequences.

    Each sequence starts from a fresh random tree, applies 1-3 rounds of
    mutations, and asserts bit identity against the from-scratch oracle
    after every round.  Mode accounting proves the patched path carries
    the bulk of the work (journal overflow and cache eviction may demote
    individual rounds to "full", but never the majority).
    """
    rng = random.Random(20260808)
    modes = {"patched": 0, "full": 0, "cached": 0}
    sequences = 0
    for trial in range(1000):
        algorithm = ALGORITHMS[trial % 2]
        size = rng.randrange(2, 41)
        tree = Tree()
        tree.add_node(0, f=float(rng.randrange(13)), n=float(rng.randrange(7)))
        for i in range(1, size):
            tree.add_node(
                i,
                parent=rng.randrange(i),
                f=float(rng.randrange(13)),
                n=float(rng.randrange(7)),
            )
        report = solve(tree, algorithm, reuse=True)
        sequences += 1
        for _ in range(rng.randrange(1, 4)):
            mutate(rng, tree, max_ops=5)
            report = solve(tree, algorithm, reuse=report)
            modes[report.extras["incremental"]] += 1
            assert_bit_identical(report, solve(tree.copy(), algorithm))
    assert sequences >= 1000
    assert modes["patched"] > modes["full"], modes


def test_postorder_rules_all_supported():
    """Every postorder child-ordering rule re-solves bit-identically."""
    rng = random.Random(7)
    for rule in ("liu", "natural", "subtree_memory"):
        tree = Tree()
        tree.add_node(0, f=2.0, n=1.0)
        for i in range(1, 30):
            tree.add_node(i, parent=rng.randrange(i), f=float(i % 5), n=1.0)
        report = solve(tree, "postorder", rule=rule, reuse=True)
        mutate(rng, tree, max_ops=4)
        report = solve(tree, "postorder", rule=rule, reuse=report)
        assert_bit_identical(report, solve(tree.copy(), "postorder", rule=rule))


def test_reuse_by_token_string():
    """extras["incremental_token"] alone resumes the retained state."""
    tree = Tree()
    tree.add_node(0, f=1.0, n=1.0)
    tree.add_node(1, parent=0, f=2.0, n=1.0)
    report = solve(tree, "liu", reuse=True)
    tree.add_node(2, parent=1, f=3.0, n=0.0)
    resumed = solve(tree, "liu", reuse=report.extras["incremental_token"])
    assert resumed.extras["incremental"] == "patched"
    assert_bit_identical(resumed, solve(tree.copy(), "liu"))


def test_algorithm_mismatch_falls_back_to_full():
    """A liu state cannot seed a postorder re-solve (and vice versa)."""
    tree = Tree()
    tree.add_node(0, f=1.0, n=1.0)
    tree.add_node(1, parent=0, f=2.0, n=1.0)
    liu_report = solve(tree, "liu", reuse=True)
    tree.set_f(1, 5.0)
    crossed = solve(tree, "postorder", reuse=liu_report)
    assert crossed.extras["incremental"] == "full"
    assert_bit_identical(crossed, solve(tree.copy(), "postorder"))


def test_unsupported_algorithms_raise():
    tree = Tree()
    tree.add_node(0, f=1.0, n=1.0)
    for algorithm in ("minmem", "explore", "minio", "auto"):
        assert algorithm not in INCREMENTAL_ALGORITHMS
        with pytest.raises(TypeError):
            solve(tree, algorithm, reuse=True)
    with pytest.raises(TypeError):
        solve(tree, "liu", reuse=True, engine="reference")


def test_pickled_tree_resumes_with_full_resolve():
    """Pickling drops the journal; reuse= stays correct (full, identical)."""
    tree = Tree()
    tree.add_node(0, f=1.0, n=1.0)
    for i in range(1, 12):
        tree.add_node(i, parent=i - 1, f=2.0, n=1.0)
    report = solve(tree, "postorder", reuse=True)
    tree.set_f(5, 9.0)
    clone = pickle.loads(pickle.dumps(tree))
    resumed = solve(clone, "postorder", reuse=report)
    assert resumed.extras["incremental"] == "full"
    assert_bit_identical(resumed, solve(clone.copy(), "postorder"))


def test_state_cache_is_bounded():
    clear_state_cache()
    tree = Tree()
    tree.add_node(0, f=1.0, n=1.0)
    for _ in range(STATE_CACHE_CAPACITY + 10):
        solve_incremental(tree.copy(), "liu", reuse=True)
    assert state_cache_size() == STATE_CACHE_CAPACITY
    clear_state_cache()
