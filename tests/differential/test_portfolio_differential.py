"""Differential tests: the ``"auto"`` portfolio vs the best single solver.

The portfolio's contract is relative, so the oracle is exhaustive: run
every in-core algorithm on the same tree and demand
``auto.peak <= TOLERANCE * min(single peaks)``.  The bench families the
routing table was fitted on are replayed instance by instance, and a
hypothesis layer checks the bound holds off-distribution too -- on drawn
trees no routing rule was ever fitted against.
"""

from __future__ import annotations

from hypothesis import given, settings

from _diff_strategies import task_trees
from repro.bench.scenario import get_scenario
from repro.bench.scenarios import IN_CORE_ALGORITHMS
from repro.solvers import solve
from repro.solvers.portfolio import (
    RACE_CANDIDATES,
    ROUTING_TABLE,
    TOLERANCE,
    route,
    tree_features,
)

#: the cheap bench families (the fitted distribution); ``large`` and
#: ``sparse_pipeline`` are covered by the committed campaign artifact
FAMILIES = ("synthetic", "random", "harpoon", "assembly", "etree")


def best_single_peak(kern) -> float:
    return min(solve(kern, name).peak_memory for name in IN_CORE_ALGORITHMS)


def test_auto_within_tolerance_on_bench_families():
    checked = 0
    for scenario_name in FAMILIES:
        for instance, tree in get_scenario(scenario_name).builder(0):
            kern = tree.kernel()
            auto = solve(kern, "auto")
            best = best_single_peak(kern)
            bound = TOLERANCE * best
            assert auto.peak_memory <= bound, (
                f"{scenario_name}/{instance}: auto={auto.peak_memory} "
                f"best={best} via {auto.extras['portfolio']}"
            )
            checked += 1
    assert checked >= 25  # the families must actually enumerate instances


@given(tree=task_trees(max_nodes=32))
@settings(max_examples=60)
def test_auto_within_tolerance_off_distribution(tree):
    kern = tree.kernel()
    auto = solve(kern, "auto")
    assert auto.peak_memory <= TOLERANCE * best_single_peak(kern)
    info = auto.extras["portfolio"]
    assert info["mode"] == "route"
    assert info["algorithm"] in IN_CORE_ALGORITHMS
    assert info["rule"] in {entry["rule"] for entry in ROUTING_TABLE}


def test_routing_table_is_wellformed():
    """The table is plain data: known features, known ops, catch-all last."""
    from repro.core.builders import chain_tree

    feature_names = set(tree_features(chain_tree(3, f=1.0, n=1.0).kernel()))
    assert ROUTING_TABLE[-1]["when"] == ()  # catch-all: route() always lands
    for entry in ROUTING_TABLE:
        assert entry["algorithm"] in IN_CORE_ALGORITHMS
        for key, op, threshold in entry["when"]:
            assert key in feature_names
            assert op in (">=", "<=", ">", "<")
            assert isinstance(threshold, float)


def test_route_picks_liu_on_harpoons_and_postorder_on_chains():
    from repro.core.builders import chain_tree
    from repro.generators.harpoon import harpoon_tree

    rule, algorithm = route(tree_features(harpoon_tree(8, memory=64.0).kernel()))
    assert (rule, algorithm) == ("harpoon-like", "liu")
    rule, algorithm = route(tree_features(chain_tree(50, f=2.0, n=1.0).kernel()))
    assert (rule, algorithm) == ("chain-dominated", "postorder")


def test_forced_race_equals_best_candidate():
    """race mode returns exactly the quality-best candidate, extras intact."""
    from repro.generators.harpoon import harpoon_tree

    tree = harpoon_tree(8, memory=64.0, epsilon=0.25)
    kern = tree.kernel()
    raced = solve(kern, "auto", race_threshold=1)
    expected = min(
        (solve(kern, name).peak_memory for name in RACE_CANDIDATES),
    )
    assert raced.peak_memory == expected
    info = raced.extras["portfolio"]
    assert info["mode"] == "race"
    assert info["candidates"] == list(RACE_CANDIDATES)
    assert raced.algorithm == "auto"


def test_features_are_json_safe_floats():
    from repro.generators.random_trees import random_attachment_tree

    features = tree_features(random_attachment_tree(60, seed=3).kernel())
    import json

    assert json.loads(json.dumps(features)) == features
    assert all(isinstance(v, float) for v in features.values())
