"""Hypothesis strategies shared by the differential-testing suite.

Trees are built with integer node ids ``0..p-1`` in insertion order and
exact (small-integer-valued) float weights, so every solver comparison in
this suite can assert *bit identity* -- ``==`` on peaks and traversals,
no tolerances.  Mutations are drawn interactively (``st.data()``) because
each op's legal arguments depend on the tree the previous ops produced.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.tree import Tree

#: exact float weights: integers survive every fsum/merge unchanged
f_weights = st.integers(min_value=0, max_value=12).map(float)
n_weights = st.integers(min_value=0, max_value=6).map(float)


@st.composite
def task_trees(draw, min_nodes: int = 1, max_nodes: int = 40) -> Tree:
    """Random parent-attachment trees with integer ids and exact weights."""
    size = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    tree = Tree()
    tree.add_node(0, f=draw(f_weights), n=draw(n_weights))
    for i in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        tree.add_node(i, parent=parent, f=draw(f_weights), n=draw(n_weights))
    return tree


def draw_mutations(data, tree: Tree, max_ops: int = 6) -> int:
    """Apply 1..max_ops drawn mutations to ``tree`` in place; the op count.

    Ops cover the full mutating surface that feeds the incremental path:
    ``add_node`` (fresh integer id, drawn parent), ``set_f`` and ``set_n``
    on a drawn existing node.
    """
    ops = data.draw(st.integers(min_value=1, max_value=max_ops), label="ops")
    for _ in range(ops):
        kind = data.draw(st.sampled_from(("add", "f", "n")), label="kind")
        if kind == "add":
            parent = data.draw(
                st.integers(min_value=0, max_value=tree.size - 1), label="parent"
            )
            tree.add_node(
                tree.size,
                parent=parent,
                f=data.draw(f_weights, label="f"),
                n=data.draw(n_weights, label="n"),
            )
        elif kind == "f":
            node = data.draw(
                st.integers(min_value=0, max_value=tree.size - 1), label="node"
            )
            tree.set_f(node, data.draw(f_weights, label="value"))
        else:
            node = data.draw(
                st.integers(min_value=0, max_value=tree.size - 1), label="node"
            )
            tree.set_n(node, data.draw(n_weights, label="value"))
    return ops
