"""Hypothesis configuration for the differential-testing suite.

Two profiles:

* ``differential`` (default) -- deadlines off (solver sweeps on drawn
  trees are fast but not micro-benchmark fast), moderate example counts;
* ``ci`` -- the same settings plus ``print_blob`` so a CI failure prints
  the reproduction blob; the workflow selects it with
  ``HYPOTHESIS_PROFILE=ci`` and pins ``--hypothesis-seed`` so every run
  draws the same examples (a red CI must be reproducible locally).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from hypothesis import HealthCheck, settings

# make _diff_strategies importable however pytest was invoked
sys.path.insert(0, str(Path(__file__).resolve().parent))

settings.register_profile(
    "differential",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.register_profile(
    "ci",
    settings.get_profile("differential"),
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "differential"))
