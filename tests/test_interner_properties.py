"""Property-based tests (hypothesis) for the service TreeInterner.

The interner is a bounded LRU keyed by a content token; three contracts
matter to the daemon that sits on top of it:

* **token stability** -- the sha1-based token depends only on the payload
  *content* (never on dict insertion order, process, or run), because
  clients compute it locally to switch to token form without a round trip;
* **LRU eviction order** -- the least-recently *used* (interned or looked
  up) tree leaves first, and capacity is never exceeded, because the
  traffic generator sizes the interner to its mix and relies on exactly
  this policy;
* **hit/miss accounting** -- every operation increments exactly one
  counter, misses count distinct first-sights (including re-interns after
  eviction), because the observability layer exports these numbers.

Each property drives a drawn operation sequence against a shadow model
(a plain OrderedDict) and compares observable state after every step.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.service.errors import UnknownTreeTokenError
from repro.service.protocol import TreeInterner, tree_payload_token


def payload_strategy(max_nodes: int = 8):
    """Small parent-array payload documents (the wire form of a tree)."""

    @st.composite
    def build(draw):
        size = draw(st.integers(min_value=1, max_value=max_nodes))
        parents = [None] + [
            draw(st.integers(min_value=0, max_value=i - 1))
            for i in range(1, size)
        ]
        f = [float(draw(st.integers(min_value=0, max_value=9))) for _ in range(size)]
        n = [float(draw(st.integers(min_value=0, max_value=4))) for _ in range(size)]
        return {"parents": parents, "f": f, "n": n}

    return build()


# ----------------------------------------------------------------------
# token stability
# ----------------------------------------------------------------------
@given(payload=payload_strategy())
def test_token_ignores_key_order(payload):
    reordered = dict(reversed(list(payload.items())))
    assert tree_payload_token(payload) == tree_payload_token(reordered)


@given(payload=payload_strategy())
def test_token_is_pure_and_repeatable(payload):
    assert tree_payload_token(payload) == tree_payload_token(dict(payload))
    assert tree_payload_token(payload).startswith("t-")


@given(payload=payload_strategy(), delta=st.integers(min_value=1, max_value=5))
def test_token_changes_when_content_changes(payload, delta):
    changed = dict(payload)
    changed["f"] = list(payload["f"])
    changed["f"][0] += float(delta)
    assert tree_payload_token(changed) != tree_payload_token(payload)


def test_token_matches_known_digest():
    """Cross-process stability, pinned: the token of a fixed payload is a
    constant -- any change to the serialisation breaks live clients that
    computed tokens with the previous release."""
    payload = {"parents": [None, 0, 1], "f": [1.0, 2.0, 3.0], "n": [0.0, 0.0, 0.0]}
    assert tree_payload_token(payload) == tree_payload_token(dict(payload))
    import hashlib
    import json

    expected = hashlib.sha1(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()[:16]
    assert tree_payload_token(payload) == f"t-{expected}"


# ----------------------------------------------------------------------
# LRU eviction order and counters, against a shadow model
# ----------------------------------------------------------------------
@given(
    data=st.data(),
    capacity=st.integers(min_value=1, max_value=4),
    payloads=st.lists(payload_strategy(max_nodes=4), min_size=1, max_size=12),
)
@settings(max_examples=80)
def test_interner_matches_lru_model(data, capacity, payloads):
    interner = TreeInterner(capacity=capacity)
    model: "OrderedDict[str, bool]" = OrderedDict()
    hits = misses = 0

    steps = data.draw(st.integers(min_value=1, max_value=30), label="steps")
    for _ in range(steps):
        payload = data.draw(st.sampled_from(payloads), label="payload")
        token = tree_payload_token(payload)
        op = data.draw(st.sampled_from(("intern", "lookup")), label="op")
        if op == "intern":
            got_token, tree = interner.intern(payload)
            assert got_token == token
            if token in model:
                hits += 1
                model.move_to_end(token)
            else:
                misses += 1
                while len(model) >= capacity:
                    model.popitem(last=False)
                model[token] = True
            # idempotence: re-interning immediately returns the same object
            again_token, again_tree = interner.intern(dict(payload))
            assert again_token == token and again_tree is tree
            hits += 1
            model.move_to_end(token)
        else:
            if token in model:
                interner.lookup(token)
                hits += 1
                model.move_to_end(token)
            else:
                with pytest.raises(UnknownTreeTokenError):
                    interner.lookup(token)

        assert len(interner) == len(model) <= capacity
        assert list(interner._trees) == list(model)  # LRU order, oldest first
        assert (interner.hits, interner.misses) == (hits, misses)


@given(payloads=st.lists(payload_strategy(max_nodes=4), min_size=5, max_size=9,
                         unique_by=lambda p: tree_payload_token(p)))
def test_eviction_drops_least_recently_used_first(payloads):
    interner = TreeInterner(capacity=3)
    tokens = [interner.intern(p)[0] for p in payloads]
    # only the last three survive, in insertion order
    assert list(interner._trees) == tokens[-3:]
    # touching the oldest survivor protects it from the next eviction
    interner.lookup(tokens[-3])
    interner.intern({"parents": [None], "f": [123.0], "n": [0.0]})
    assert tokens[-2] not in interner._trees
    assert tokens[-3] in interner._trees


def test_capacity_validation():
    with pytest.raises(ValueError):
        TreeInterner(capacity=0)
