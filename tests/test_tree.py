"""Unit tests for the task-tree data structure."""

import pytest

from repro.core.tree import Tree, TreeValidationError


def build_small():
    t = Tree()
    t.add_node(0, f=1.0, n=2.0)
    t.add_node(1, parent=0, f=3.0, n=0.5)
    t.add_node(2, parent=0, f=4.0, n=0.0)
    t.add_node(3, parent=1, f=5.0, n=1.0)
    return t


class TestConstruction:
    def test_add_nodes_and_sizes(self):
        t = build_small()
        assert t.size == 4
        assert len(t) == 4
        assert t.root == 0
        assert set(t.nodes()) == {0, 1, 2, 3}

    def test_duplicate_node_rejected(self):
        t = build_small()
        with pytest.raises(TreeValidationError):
            t.add_node(1, parent=0)

    def test_second_root_rejected(self):
        t = build_small()
        with pytest.raises(TreeValidationError):
            t.add_node(99)

    def test_unknown_parent_rejected(self):
        t = build_small()
        with pytest.raises(TreeValidationError):
            t.add_node(99, parent=1234)

    def test_empty_tree_has_no_root(self):
        with pytest.raises(TreeValidationError):
            Tree().root

    def test_contains_and_iter(self):
        t = build_small()
        assert 3 in t and 99 not in t
        assert sorted(t) == [0, 1, 2, 3]


class TestAccessors:
    def test_parent_children(self):
        t = build_small()
        assert t.parent(0) is None
        assert t.parent(3) == 1
        assert t.children(0) == (1, 2)
        assert t.children(3) == ()

    def test_weights(self):
        t = build_small()
        assert t.f(1) == 3.0
        assert t.n(1) == 0.5
        t.set_f(1, 10.0)
        t.set_n(1, 20.0)
        assert t.f(1) == 10.0 and t.n(1) == 20.0

    def test_unknown_node_raises(self):
        t = build_small()
        with pytest.raises(TreeValidationError):
            t.f(42)
        with pytest.raises(TreeValidationError):
            t.children(42)

    def test_leaves_and_is_leaf(self):
        t = build_small()
        assert t.is_leaf(2) and t.is_leaf(3)
        assert not t.is_leaf(0)
        assert set(t.leaves()) == {2, 3}

    def test_mem_req(self):
        t = build_small()
        # node 0: f=1, n=2, children files 3+4
        assert t.mem_req(0) == pytest.approx(10.0)
        # leaf 3: f=5, n=1
        assert t.mem_req(3) == pytest.approx(6.0)
        assert t.max_mem_req() == pytest.approx(10.0)

    def test_total_file_size(self):
        t = build_small()
        assert t.total_file_size() == pytest.approx(1 + 3 + 4 + 5)


class TestStructureQueries:
    def test_ancestors_and_depth(self):
        t = build_small()
        assert t.ancestors(3) == [1, 0]
        assert t.depth(3) == 2
        assert t.depth(0) == 0
        assert t.height() == 2

    def test_subtree(self):
        t = build_small()
        assert set(t.subtree_nodes(1)) == {1, 3}
        assert t.subtree_size(0) == 4

    def test_orders(self):
        t = build_small()
        topo = t.topological_order()
        assert topo[0] == 0
        pos = {v: i for i, v in enumerate(topo)}
        for v in t.nodes():
            if t.parent(v) is not None:
                assert pos[t.parent(v)] < pos[v]
        bottom = t.bottom_up_order()
        assert bottom == list(reversed(topo))

    def test_postorder_dfs_contiguous_subtrees(self):
        t = build_small()
        order = t.postorder_dfs()
        assert set(order) == set(t.nodes())
        pos = {v: i for i, v in enumerate(order)}
        for v in t.nodes():
            indices = sorted(pos[u] for u in t.subtree_nodes(v))
            assert indices[-1] - indices[0] + 1 == len(indices)

    def test_postorder_dfs_respects_child_order(self):
        t = build_small()
        order = t.postorder_dfs(child_order={0: (2, 1)})
        assert order.index(2) < order.index(1)

    def test_edges(self):
        t = build_small()
        assert set(t.edges()) == {(0, 1), (0, 2), (1, 3)}


class TestCopyAndExport:
    def test_copy_is_deep(self):
        t = build_small()
        c = t.copy()
        assert c == t
        c.set_f(1, 99.0)
        assert t.f(1) == 3.0
        assert c != t

    def test_relabeled(self):
        t = Tree()
        t.add_node("r", f=1, n=0)
        t.add_node("x", parent="r", f=2, n=1)
        relabeled, mapping = t.relabeled()
        assert relabeled.root == mapping["r"] == 0
        assert relabeled.f(mapping["x"]) == 2

    def test_to_networkx(self):
        t = build_small()
        g = t.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        assert g.nodes[1]["f"] == 3.0

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(build_small())


class TestValidation:
    def test_validate_ok(self):
        build_small().validate()

    def test_negative_f_rejected(self):
        t = build_small()
        t.set_f(1, -1.0)
        with pytest.raises(TreeValidationError):
            t.validate()

    def test_non_finite_rejected(self):
        t = build_small()
        t.set_n(1, float("nan"))
        with pytest.raises(TreeValidationError):
            t.validate()

    def test_negative_n_allowed_if_memreq_nonnegative(self):
        t = build_small()
        t.set_n(1, -2.0)  # MemReq(1) = 3 - 2 + 5 = 6 >= 0
        t.validate()

    def test_negative_memreq_rejected(self):
        t = Tree()
        t.add_node(0, f=1.0, n=-5.0)
        with pytest.raises(TreeValidationError):
            t.validate()

    def test_empty_tree_invalid(self):
        with pytest.raises(TreeValidationError):
            Tree().validate()
