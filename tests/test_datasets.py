"""Unit tests for the experiment data sets."""

import pytest

from repro.analysis.datasets import (
    SCALES,
    assembly_tree_dataset,
    matrix_suite,
    random_tree_dataset,
)
from repro.sparse.matrices import grid_laplacian_2d


class TestMatrixSuite:
    def test_tiny_suite(self):
        suite = matrix_suite("tiny")
        assert len(suite) >= 3
        for name, matrix in suite:
            assert isinstance(name, str)
            assert matrix.shape[0] == matrix.shape[1]

    def test_scales_increase_sizes(self):
        tiny = max(m.shape[0] for _, m in matrix_suite("tiny"))
        small = max(m.shape[0] for _, m in matrix_suite("small"))
        assert small > tiny

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            matrix_suite("huge")


class TestAssemblyDataset:
    def test_tiny_dataset(self):
        instances = assembly_tree_dataset("tiny")
        assert len(instances) >= 4
        for inst in instances:
            inst.tree.validate()
            assert inst.source == "assembly"
            assert inst.metadata["ordering"] in (
                "natural",
                "rcm",
                "minimum_degree",
                "nested_dissection",
            )
            assert inst.size == inst.tree.size

    def test_names_unique(self):
        instances = assembly_tree_dataset("tiny")
        names = [inst.name for inst in instances]
        assert len(names) == len(set(names))

    def test_custom_matrices_and_orderings(self):
        instances = assembly_tree_dataset(
            "tiny",
            matrices=[("g", grid_laplacian_2d(6))],
            orderings=("natural",),
            relaxed=(1, 4),
        )
        assert len(instances) == 2
        assert {inst.metadata["relaxed"] for inst in instances} == {1, 4}

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            assembly_tree_dataset("gigantic")


class TestRandomDataset:
    def test_reweights_assembly_shapes(self):
        assembly = assembly_tree_dataset(
            "tiny", matrices=[("g", grid_laplacian_2d(6))], orderings=("natural",), relaxed=(1,)
        )
        rnd = random_tree_dataset("tiny", seed=3, assembly_instances=assembly, extra_shapes=False)
        assert len(rnd) == len(assembly)
        for orig, rew in zip(assembly, rnd):
            assert rew.source == "random"
            assert rew.tree.size == orig.tree.size
            # shapes preserved
            for v in orig.tree.nodes():
                assert rew.tree.parent(v) == orig.tree.parent(v)

    def test_extra_shapes_appended(self):
        assembly = assembly_tree_dataset(
            "tiny", matrices=[("g", grid_laplacian_2d(6))], orderings=("natural",), relaxed=(1,)
        )
        rnd = random_tree_dataset("tiny", seed=3, assembly_instances=assembly, extra_shapes=True)
        assert len(rnd) > len(assembly)

    def test_deterministic(self):
        assembly = assembly_tree_dataset(
            "tiny", matrices=[("g", grid_laplacian_2d(6))], orderings=("natural",), relaxed=(1,)
        )
        a = random_tree_dataset("tiny", seed=3, assembly_instances=assembly)
        b = random_tree_dataset("tiny", seed=3, assembly_instances=assembly)
        assert [i.name for i in a] == [i.name for i in b]
        assert all(x.tree == y.tree for x, y in zip(a, b))
