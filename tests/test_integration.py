"""Integration tests: the full pipeline from matrices to out-of-core plans."""

import numpy as np
import pytest

from repro.analysis.datasets import TreeInstance
from repro.analysis.experiments import (
    run_minio_heuristics,
    run_minmemory_comparison,
    run_traversal_io,
)
from repro.core.liu import liu_optimal_traversal
from repro.core.minio import run_out_of_core
from repro.core.minmem import min_mem
from repro.core.postorder import best_postorder
from repro.core.traversal import check_in_core, check_out_of_core, peak_memory
from repro.generators.random_trees import reweight_random
from repro.sparse.assembly import build_assembly_tree
from repro.sparse.matrices import grid_laplacian_2d, random_spd
from repro.sparse.multifrontal import frontal_memory_tree, multifrontal_cholesky


class TestMatrixToSchedulePipeline:
    """Matrix -> ordering -> assembly tree -> traversal -> out-of-core plan."""

    @pytest.mark.parametrize("ordering", ["nested_dissection", "minimum_degree"])
    def test_full_pipeline(self, ordering):
        matrix = grid_laplacian_2d(12)
        result = build_assembly_tree(matrix, ordering=ordering, relaxed=2)
        tree = result.tree

        postorder = best_postorder(tree)
        optimal = min_mem(tree)
        assert optimal.memory <= postorder.memory + 1e-9
        assert check_in_core(tree, postorder.memory, postorder.traversal)
        assert check_in_core(tree, optimal.memory, optimal.traversal)

        # out-of-core execution with the minimum feasible memory
        memory = tree.max_mem_req()
        for traversal in (postorder.traversal, optimal.traversal):
            out = run_out_of_core(tree, memory, traversal, "first_fit")
            ok, io = check_out_of_core(tree, memory, out.schedule)
            assert ok
            assert io == pytest.approx(out.io_volume)

    def test_multifrontal_consistency_with_model(self):
        """The task-tree MinMemory equals the best reachable peak of the
        actual multifrontal engine over the traversals we can produce."""
        matrix = grid_laplacian_2d(9)
        tree = frontal_memory_tree(matrix)
        optimal = liu_optimal_traversal(tree)
        engine = multifrontal_cholesky(matrix, optimal.traversal)
        assert engine.peak_memory == pytest.approx(optimal.memory)
        # and the factorization stays numerically exact
        err = np.abs((engine.factor @ engine.factor.T - matrix)).max()
        assert err < 1e-9

    def test_memory_savings_of_optimal_traversal_exist_somewhere(self):
        """On at least one matrix/ordering combination the optimal traversal
        strictly beats the best postorder (otherwise the comparison would be
        vacuous)."""
        gaps = []
        for seed in range(3):
            matrix = random_spd(60, density=0.06, seed=seed)
            tree = reweight_random(
                build_assembly_tree(matrix, ordering="natural", relaxed=0).tree, seed=seed
            )
            gaps.append(best_postorder(tree).memory - min_mem(tree).memory)
        assert max(gaps) >= 0.0


class TestExperimentPipeline:
    def test_minmemory_and_io_experiments_consistent(self):
        instances = [
            TreeInstance(
                name=f"grid-{ordering}",
                tree=build_assembly_tree(grid_laplacian_2d(8), ordering=ordering).tree,
                source="assembly",
            )
            for ordering in ("nested_dissection", "rcm")
        ]
        comparison = run_minmemory_comparison(instances)
        assert comparison.statistics().mean_ratio >= 1.0

        io_heuristics = run_minio_heuristics(instances, memory_fractions=(0.0, 0.5))
        io_traversals = run_traversal_io(instances, memory_fractions=(0.0, 0.5))
        # every method covers every case with a non-negative volume
        for volumes in io_heuristics.io_volumes.values():
            assert len(volumes) == len(io_heuristics.cases)
            assert all(v >= 0 for v in volumes)
        for volumes in io_traversals.io_volumes.values():
            assert len(volumes) == len(io_traversals.cases)

    def test_peak_memory_reversal_on_assembly_trees(self):
        tree = build_assembly_tree(grid_laplacian_2d(10), ordering="nested_dissection").tree
        for solver in (best_postorder, lambda t: min_mem(t)):
            result = solver(tree)
            traversal = result.traversal
            assert peak_memory(tree, traversal) == pytest.approx(
                peak_memory(tree, traversal.reversed())
            )
