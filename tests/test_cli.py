"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.serialize import save_tree
from repro.generators.harpoon import harpoon_tree


@pytest.fixture
def tree_file(tmp_path):
    path = tmp_path / "tree.json"
    save_tree(harpoon_tree(3, memory=10.0, epsilon=1.0), path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        assert parser.parse_args(["minmem", "x.json"]).command == "minmem"
        assert parser.parse_args(["experiment", "fig5"]).which == "fig5"


class TestMinMemCommand:
    def test_prints_all_algorithms(self, tree_file, capsys):
        assert main(["minmem", str(tree_file)]) == 0
        out = capsys.readouterr().out
        assert "PostOrder memory" in out
        assert "Liu (optimal) memory" in out
        assert "MinMem (optimal)" in out

    def test_postorder_ratio_reported(self, tree_file, capsys):
        main(["minmem", str(tree_file)])
        out = capsys.readouterr().out
        assert "PostOrder / optimal" in out


class TestMinIOCommand:
    def test_default_memory(self, tree_file, capsys):
        assert main(["minio", str(tree_file)]) == 0
        out = capsys.readouterr().out
        for name in ("lsnf", "first_fit", "best_fit", "first_fill", "best_fill"):
            assert name in out

    def test_explicit_memory(self, tree_file, capsys):
        assert main(["minio", str(tree_file), "--memory", "100", "--algorithm", "PostOrder"]) == 0
        assert "IO volume" in capsys.readouterr().out

    def test_too_small_memory_fails(self, tree_file, capsys):
        assert main(["minio", str(tree_file), "--memory", "1"]) == 1
        assert "error" in capsys.readouterr().err


class TestDatasetCommand:
    def test_writes_trees(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        assert main(["dataset", "--scale", "tiny", "--output", str(out_dir), "--kind", "assembly"]) == 0
        files = list(out_dir.glob("*.json"))
        assert files, "dataset files should have been written"
        data = json.loads(files[0].read_text())
        assert "nodes" in data


class TestExperimentCommand:
    def test_harpoon_experiment(self, capsys):
        assert main(["experiment", "harpoon"]) == 0
        out = capsys.readouterr().out
        assert "levels" in out
        assert "ratio" in out


class TestPipelineCommand:
    def test_grid2d_end_to_end(self, capsys):
        assert main(["pipeline", "--grid2d", "12", "--ordering", "rcm",
                     "--relaxed", "2"]) == 0
        out = capsys.readouterr().out
        for stage in ("symmetrize", "ordering", "etree", "counts", "amalgamate"):
            assert stage in out
        assert "supernodes" in out
        assert "minmem" in out

    def test_json_output_both_engines_agree(self, capsys):
        docs = []
        for engine in ("kernel", "reference"):
            assert main(["pipeline", "--grid2d", "9", "--engine", engine,
                         "--json"]) == 0
            docs.append(json.loads(capsys.readouterr().out))
        kernel, reference = docs
        assert kernel["nnz_l"] == reference["nnz_l"]
        assert kernel["supernodes"] == reference["supernodes"]
        peaks = lambda doc: [r["peak_memory"] for r in doc["reports"]]  # noqa: E731
        assert peaks(kernel) == peaks(reference)

    def test_mtx_source_and_algorithm_selection(self, tmp_path, capsys):
        from repro.sparse.matrices import grid_laplacian_2d
        from repro.sparse.mmio import write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(grid_laplacian_2d(5), path, symmetric=True)
        assert main(["pipeline", "--mtx", str(path), "-a", "liu"]) == 0
        out = capsys.readouterr().out
        assert "liu" in out and "postorder" not in out

    def test_unknown_ordering_rejected(self, capsys):
        assert main(["pipeline", "--grid2d", "4", "--ordering", "amd"]) == 2
        assert "unknown ordering" in capsys.readouterr().err

    def test_unreadable_mtx_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.mtx"
        bad.write_text("not a matrix\n")
        assert main(["pipeline", "--mtx", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_rectangular_mtx_reports_error(self, tmp_path, capsys):
        rect = tmp_path / "rect.mtx"
        rect.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n"
        )
        assert main(["pipeline", "--mtx", str(rect)]) == 1
        err = capsys.readouterr().err
        assert "error" in err and "square" in err


class TestServeCommand:
    def test_requires_a_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_stdio_and_port_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--stdio", "--port", "0"])

    def test_bad_max_pending_rejected(self, capsys):
        assert main(["serve", "--stdio", "--max-pending", "0"]) == 2
        assert "max-pending" in capsys.readouterr().err

    def test_stdio_serves_ndjson_requests(self, monkeypatch, capsys):
        import io

        lines = "\n".join([
            json.dumps({"id": "a",
                        "tree": {"parents": [-1, 0, 0], "f": [0, 2, 3]},
                        "algorithm": "minmem"}),
            json.dumps({"op": "stats"}),
        ]) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["serve", "--stdio", "--pool", "serial"]) == 0
        captured = capsys.readouterr()
        docs = [json.loads(line) for line in captured.out.strip().splitlines()]
        by_kind = {("stats" if "op" in d else d.get("id")): d for d in docs}
        assert by_kind["a"]["status"] == "ok"
        assert by_kind["stats"]["stats"]["accepted"] == 1
        assert "served 1 requests" in captured.err


class TestTrafficBenchCommand:
    def test_list_traffic_scenarios(self, capsys):
        assert main(["bench", "--traffic", "--list"]) == 0
        out = capsys.readouterr().out
        assert "service_open_smoke" in out and "service_burst_open" in out

    def test_unmatched_filter_fails(self, capsys):
        assert main(["bench", "--traffic", "--filter", "zzz"]) == 2
        assert "no traffic scenario" in capsys.readouterr().err

    def test_fresh_pool_rejected_for_traffic(self, capsys):
        assert main(["bench", "--traffic", "--smoke", "--pool", "fresh"]) == 2
        assert "no 'fresh' pool" in capsys.readouterr().err

    def test_smoke_traffic_run_and_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_traffic.json"
        assert main(["bench", "--traffic", "--smoke", "--pool", "serial",
                     "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario/cell" in out
        assert "service_open_smoke/poisson-r25" in out
        document = json.loads(out_path.read_text())
        (record,) = document["records"]
        assert record["extras"]["rejected"] == 0
        assert record["extras"]["deadline_missed"] == 0
        assert record["extras"]["latency_p99"] > 0


class TestReportCommand:
    @staticmethod
    def _artifact(path, *, family="synthetic", created="2026-08-08T10:00:00Z"):
        path.write_text(json.dumps({
            "schema": "repro-bench-v1",
            "kind": "campaign",
            "created_utc": created,
            "version": "1.7.0",
            "platform": {"python": "3.11"},
            "run": {"scale": "smoke"},
            "records": [{
                "family": family,
                "name": f"{family}/t0",
                "algorithm": "minmem",
                "best_time": 0.01,
                "extras": {},
            }],
        }))
        return path

    def test_renders_dashboard_from_paths(self, tmp_path, capsys):
        art = self._artifact(tmp_path / "BENCH_a.json")
        out = tmp_path / "dash.html"
        assert main(["report", str(art), "--output", str(out)]) == 0
        assert "wrote dashboard over 1 artifact(s)" in capsys.readouterr().out
        html = out.read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "BENCH_a.json" in html

    def test_globs_cwd_when_no_paths(self, tmp_path, capsys, monkeypatch):
        self._artifact(tmp_path / "BENCH_x.json")
        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 0
        assert (tmp_path / "report.html").is_file()

    def test_no_artifacts_found_fails(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["report"]) == 2
        assert "no BENCH_*.json artifacts" in capsys.readouterr().err

    def test_missing_path_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "BENCH_gone.json")]) == 2
        assert "artifact not found" in capsys.readouterr().err

    def test_malformed_artifact_fails(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        assert main(["report", str(bad),
                     "--output", str(tmp_path / "out.html")]) == 1
        assert "error:" in capsys.readouterr().err


class TestServeLoggingFlags:
    def test_parser_accepts_log_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--stdio", "--log-level", "debug", "--log-json"])
        assert args.log_level == "debug"
        assert args.log_json is True

    def test_log_level_defaults_to_info(self):
        args = build_parser().parse_args(["serve", "--stdio"])
        assert args.log_level == "info"
        assert args.log_json is False

    def test_bad_log_level_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--stdio",
                                       "--log-level", "loud"])
