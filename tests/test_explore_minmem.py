"""Unit tests for the Explore algorithm and the MinMem exact solver."""

import math

import pytest

from repro.core.bruteforce import optimal_min_memory
from repro.core.builders import chain_tree, from_parent_list, star_tree
from repro.core.explore import ExploreSolver
from repro.core.liu import flatten_nodes, liu_min_memory
from repro.core.minmem import min_mem, min_memory
from repro.core.postorder import best_postorder
from repro.core.traversal import TOPDOWN, check_in_core, is_topological, peak_memory
from repro.generators.harpoon import harpoon_tree, iterated_harpoon_tree

from _helpers import make_random_tree


class TestExplore:
    def test_blocked_root(self):
        t = star_tree(3, root_f=1.0, leaf_f=2.0)
        solver = ExploreSolver(t)
        res = solver.explore(t.root, 3.0)  # MemReq(root) = 7 > 3
        assert res.resident == math.inf
        assert res.peak == pytest.approx(7.0)
        assert res.cut == ()

    def test_full_exploration(self):
        t = star_tree(3, root_f=1.0, leaf_f=2.0)
        solver = ExploreSolver(t)
        res = solver.explore(t.root, 10.0)
        assert res.resident == 0.0
        assert res.peak == math.inf
        assert sorted(flatten_nodes(res.traversal_chunks), key=str) == sorted(
            t.nodes(), key=str
        )

    def test_partial_exploration_reports_cut(self):
        # root f=0 with two chains; one chain needs little memory, the other a lot
        t = from_parent_list(
            [None, 0, 0, 1, 2],
            f=[0.0, 1.0, 1.0, 1.0, 8.0],
            n=[0.0, 0.0, 0.0, 0.0, 0.0],
        )
        solver = ExploreSolver(t)
        res = solver.explore(t.root, 3.0)
        # node 4 (needs 8+1=9 > available) blocks its branch
        assert 4 in res.cut or 2 in res.cut
        assert res.peak > 3.0
        assert res.resident >= 0.0

    def test_peak_estimate_lets_progress(self):
        t = star_tree(2, root_f=0.0, leaf_f=4.0)
        solver = ExploreSolver(t)
        res = solver.explore(t.root, 8.0)
        assert res.peak == math.inf  # fully explored: 8 = MemReq(root) suffices

    def test_resume_states_consistent(self):
        t = make_random_tree(30, __import__("random").Random(3))
        fresh = ExploreSolver(t, reuse_states=False)
        cached = ExploreSolver(t, reuse_states=True)
        for m in (t.max_mem_req(), t.max_mem_req() * 1.5, t.max_mem_req() * 3):
            a = fresh.explore(t.root, m)
            b = cached.explore(t.root, m)
            assert a.resident == pytest.approx(b.resident)
            assert (a.peak == b.peak == math.inf) or a.peak == pytest.approx(b.peak)


class TestMinMem:
    def test_single_node(self):
        t = from_parent_list([None], f=[1.0], n=[4.0])
        res = min_mem(t)
        assert res.memory == pytest.approx(5.0)
        assert res.traversal.convention == TOPDOWN

    def test_matches_bruteforce(self, rng):
        for _ in range(80):
            t = make_random_tree(rng.randint(1, 10), rng)
            assert min_memory(t) == pytest.approx(optimal_min_memory(t))

    def test_matches_liu(self, rng):
        for _ in range(60):
            t = make_random_tree(rng.randint(1, 60), rng)
            assert min_memory(t) == pytest.approx(liu_min_memory(t))

    def test_traversal_is_complete_witness(self, rng):
        for _ in range(40):
            t = make_random_tree(rng.randint(1, 40), rng)
            res = min_mem(t)
            assert len(res.traversal) == t.size
            assert is_topological(t, res.traversal)
            assert peak_memory(t, res.traversal) == pytest.approx(res.memory)
            assert check_in_core(t, res.memory, res.traversal)

    def test_no_reuse_same_result(self, rng):
        for _ in range(20):
            t = make_random_tree(rng.randint(1, 25), rng)
            fast = min_mem(t, reuse_states=True)
            slow = min_mem(t, reuse_states=False)
            assert fast.memory == pytest.approx(slow.memory)
            assert peak_memory(t, slow.traversal) == pytest.approx(slow.memory)

    def test_never_below_max_memreq(self, rng):
        for _ in range(30):
            t = make_random_tree(rng.randint(1, 30), rng)
            assert min_memory(t) >= t.max_mem_req() - 1e-9

    def test_never_worse_than_postorder(self, rng):
        for _ in range(30):
            t = make_random_tree(rng.randint(1, 30), rng)
            assert min_memory(t) <= best_postorder(t).memory + 1e-9

    def test_harpoon_optimal(self):
        t = harpoon_tree(4, memory=1.0, epsilon=0.01)
        assert min_memory(t) == pytest.approx(1.0 + 4 * 0.01)

    def test_iterated_harpoon_optimal(self):
        t = iterated_harpoon_tree(3, 3, memory=1.0, epsilon=0.01)
        assert min_memory(t) == pytest.approx(liu_min_memory(t))

    def test_deep_chain_no_recursion_error(self):
        t = chain_tree(20000, f=1.0, n=0.0)
        res = min_mem(t)
        assert res.memory == pytest.approx(2.0)
        assert len(res.traversal) == 20000

    def test_iteration_counters(self):
        t = star_tree(4, root_f=0.0, leaf_f=1.0)
        res = min_mem(t)
        assert res.iterations >= 1
        assert res.explore_calls >= res.iterations
