"""Unit tests for the graph utilities of the sparse substrate."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.graph import (
    adjacency_lists,
    bfs_levels,
    connected_components,
    pseudo_peripheral_vertex,
    symmetrized_pattern,
)
from repro.sparse.matrices import grid_laplacian_2d


class TestSymmetrizedPattern:
    def test_unsymmetric_input(self):
        a = sp.csr_matrix(np.array([[1.0, 2.0, 0.0], [0.0, 3.0, 0.0], [4.0, 0.0, 0.0]]))
        pattern = symmetrized_pattern(a)
        dense = pattern.toarray()
        assert np.array_equal(dense, dense.T)
        assert np.all(np.diag(dense) == 1.0)
        assert dense[0, 2] == 1.0 and dense[2, 0] == 1.0

    def test_values_are_one(self):
        a = grid_laplacian_2d(4)
        pattern = symmetrized_pattern(a)
        assert set(np.unique(pattern.data)) == {1.0}

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            symmetrized_pattern(sp.csr_matrix(np.ones((2, 3))))

    def test_explicitly_stored_zeros(self):
        # regression: .nonzero() drops stored zeros while .nnz counts them,
        # which used to crash the pattern constructor with a length mismatch
        a = sp.csc_matrix(
            (np.array([2.0, 0.0, 3.0]), (np.array([0, 2, 1]), np.array([0, 0, 1]))),
            shape=(3, 3),
        )
        assert a.nnz == 3  # the zero at (2, 0) really is stored
        pattern = symmetrized_pattern(a)
        dense = pattern.toarray()
        # the stored-zero position is part of the structural pattern
        assert dense[2, 0] == 1.0 and dense[0, 2] == 1.0
        assert np.array_equal(dense, dense.T)

    def test_explicit_zero_matrix_market_regression(self):
        # the same crash, reproduced through a MatrixMarket file that stores
        # an explicit zero entry (as collection files routinely do)
        from pathlib import Path

        from repro.sparse.mmio import read_matrix_market

        path = Path(__file__).parent / "data" / "explicit_zero.mtx"
        matrix = read_matrix_market(path)
        assert matrix.nnz > np.count_nonzero(matrix.toarray())
        pattern = symmetrized_pattern(matrix)
        dense = pattern.toarray()
        assert dense[3, 1] == 1.0 and dense[1, 3] == 1.0
        assert np.array_equal(dense, dense.T)
        assert np.all(np.diag(dense) == 1.0)


class TestAdjacencyAndComponents:
    def test_adjacency_excludes_self_loops(self):
        pattern = symmetrized_pattern(grid_laplacian_2d(3))
        adj = adjacency_lists(pattern)
        assert all(v not in set(adj[v]) for v in range(9))
        # corner vertex of a 3x3 grid has two neighbours
        assert len(adj[0]) == 2

    def test_connected_components_single(self):
        adj = adjacency_lists(symmetrized_pattern(grid_laplacian_2d(3)))
        comps = connected_components(adj)
        assert len(comps) == 1
        assert sorted(comps[0]) == list(range(9))

    def test_connected_components_two_blocks(self):
        block = grid_laplacian_2d(2)
        a = sp.block_diag([block, block])
        adj = adjacency_lists(symmetrized_pattern(a))
        comps = connected_components(adj)
        assert len(comps) == 2
        assert sorted(len(c) for c in comps) == [4, 4]


class TestBFSAndPeripheral:
    def test_bfs_levels_cover_graph(self):
        adj = adjacency_lists(symmetrized_pattern(grid_laplacian_2d(4)))
        levels = bfs_levels(adj, 0)
        assert sum(len(l) for l in levels) == 16
        assert levels[0] == [0]
        # level k contains vertices at manhattan distance k from the corner
        assert len(levels[1]) == 2

    def test_bfs_restricted(self):
        adj = adjacency_lists(symmetrized_pattern(grid_laplacian_2d(3)))
        allowed = np.zeros(9, dtype=bool)
        allowed[[0, 1, 2]] = True
        levels = bfs_levels(adj, 0, allowed)
        assert sum(len(l) for l in levels) == 3

    def test_pseudo_peripheral_on_path(self):
        # path graph: peripheral vertex must be one of the two endpoints
        n = 15
        diag = sp.diags([np.ones(n - 1), np.ones(n - 1)], [1, -1])
        adj = adjacency_lists(symmetrized_pattern(sp.csr_matrix(diag)))
        vertex, levels = pseudo_peripheral_vertex(adj, list(range(n)))
        assert vertex in (0, n - 1)
        assert len(levels) == n

    def test_pseudo_peripheral_empty(self):
        adj = adjacency_lists(symmetrized_pattern(grid_laplacian_2d(2)))
        with pytest.raises(ValueError):
            pseudo_peripheral_vertex(adj, [])
