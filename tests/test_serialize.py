"""Unit tests for tree and traversal serialization."""

import pytest

from repro.core.builders import from_parent_list
from repro.core.serialize import (
    load_tree,
    save_tree,
    traversal_from_dict,
    traversal_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from repro.core.traversal import BOTTOMUP, TOPDOWN, Traversal
from repro.core.tree import TreeValidationError

from _helpers import make_random_tree


class TestTreeSerialization:
    def test_roundtrip_dict(self, rng):
        for _ in range(20):
            t = make_random_tree(rng.randint(1, 30), rng)
            assert tree_from_dict(tree_to_dict(t)) == t

    def test_roundtrip_file(self, tmp_path):
        t = from_parent_list([None, 0, 0, 1], f=[1, 2, 3, 4], n=[0, 1, 2, 3])
        path = tmp_path / "tree.json"
        save_tree(t, path)
        assert load_tree(path) == t

    def test_string_node_ids(self, tmp_path):
        from repro.generators.harpoon import harpoon_tree

        t = harpoon_tree(3)
        path = tmp_path / "harpoon.json"
        save_tree(t, path)
        assert load_tree(path) == t

    def test_bad_schema_rejected(self):
        with pytest.raises(TreeValidationError):
            tree_from_dict({"schema": 99, "root": 0, "nodes": []})


class TestTraversalSerialization:
    def test_roundtrip(self):
        trav = Traversal((3, 1, 2, 0), BOTTOMUP)
        assert traversal_from_dict(traversal_to_dict(trav)) == trav

    def test_convention_preserved(self):
        trav = Traversal((0, 1), TOPDOWN)
        data = traversal_to_dict(trav)
        assert data["convention"] == TOPDOWN
        assert traversal_from_dict(data).convention == TOPDOWN

    def test_bad_schema_rejected(self):
        with pytest.raises(TreeValidationError):
            traversal_from_dict({"schema": 0, "convention": TOPDOWN, "order": []})
