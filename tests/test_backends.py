"""Tests for the executor-backend seam (:mod:`repro.solvers.engine.backends`).

Four concerns, mirroring the call sites that share the seam:

* the registry is the single source of truth: names, capability flags,
  unavailable-dependency errors, and the CLI ``--pool`` choices all agree;
* the parity matrix: every registered algorithm (the ``auto`` portfolio and
  ``reuse=`` incremental re-solves included) is bit-identical across the
  ``serial``/``fresh``/``persistent``/``threads`` backends;
* the engine lifecycle (stop -> reject new work -> shutdown -> re-arm);
* the campaign planner's straggler re-splitting is an execution detail:
  exactly one record per cell, bit-identical to the serial campaign.

The ``dask`` backend has its own module (``tests/test_dask_backend.py``)
gated on the optional dependency; here only its *registration* is checked.
"""

from __future__ import annotations

import argparse
import random
import time
from dataclasses import replace

import pytest

from repro.bench.runner import run_scenarios
from repro.bench.scenario import Scenario
from repro.core.builders import chain_tree
from repro.core.kernel import TreeKernel
from repro.core.traversal import BOTTOMUP, Traversal
from repro.solvers import (
    BackendUnavailableError,
    SolveReport,
    backend_names,
    backend_table,
    list_solvers,
    register_solver,
    solve,
    solve_many,
)
from repro.solvers.engine import (
    EngineStoppedError,
    ExecutorBackend,
    SolveEngine,
    create_backend,
    get_backend_spec,
    shutdown_engine,
)
from repro.solvers.facade import POOL_MODES

from _helpers import make_random_tree

#: the backends exercised locally (dask needs the optional dependency)
LOCAL_POOLS = ("serial", "fresh", "persistent", "threads")


@pytest.fixture(scope="module", autouse=True)
def _shutdown_engines():
    # the parity matrix leaves warm per-backend default engines behind;
    # release their workers once the module is done
    yield
    shutdown_engine()


# ----------------------------------------------------------------------
# registry: one source of truth
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registration_order_and_pool_modes(self):
        assert backend_names() == ("persistent", "fresh", "serial", "threads", "dask")
        assert POOL_MODES == backend_names()
        assert [spec.name for spec in backend_table()] == list(backend_names())

    def test_service_only_drops_fresh(self):
        assert backend_names(service_only=True) == (
            "persistent",
            "serial",
            "threads",
            "dask",
        )

    def test_capability_flags(self):
        flags = {
            spec.name: (
                spec.cls.ships_arena,
                spec.cls.releases_gil,
                spec.cls.distributed,
                spec.cls.supports_futures,
                spec.cls.service,
            )
            for spec in backend_table()
        }
        assert flags == {
            # (ships_arena, releases_gil, distributed, supports_futures, service)
            "persistent": (True, True, False, True, True),
            "fresh": (False, True, False, False, False),
            "serial": (False, False, False, False, True),
            "threads": (False, False, False, True, True),
            "dask": (True, True, True, True, True),
        }

    def test_every_spec_has_a_summary(self):
        for spec in backend_table():
            assert spec.summary
            assert issubclass(spec.cls, ExecutorBackend)

    def test_unknown_backend_lists_the_registry(self):
        with pytest.raises(ValueError, match="unknown executor backend 'bogus'"):
            get_backend_spec("bogus")
        with pytest.raises(ValueError, match="persistent"):
            create_backend("bogus")

    def test_dask_unavailable_is_a_loud_value_error(self):
        # the CI optional-deps job installs dask; locally it must be absent
        # for this test (see tests/test_dask_backend.py for the other side)
        spec = get_backend_spec("dask")
        if spec.available:
            pytest.skip("dask is installed; unavailability path not reachable")
        with pytest.raises(BackendUnavailableError, match=r"dask\[distributed\]"):
            create_backend("dask")
        assert issubclass(BackendUnavailableError, ValueError)

    def test_solve_many_validates_pool_from_registry(self):
        tree = chain_tree(4, f=2.0, n=1.0)
        with pytest.raises(ValueError, match="unknown pool mode"):
            solve_many([tree], "minmem", pool="bogus")

    def test_solve_many_surfaces_missing_dependency(self):
        if get_backend_spec("dask").available:
            pytest.skip("dask is installed; unavailability path not reachable")
        trees = [chain_tree(4, f=2.0, n=1.0), chain_tree(5, f=2.0, n=1.0)]
        with pytest.raises(BackendUnavailableError, match="optional dependency"):
            solve_many(trees, "minmem", workers=2, pool="dask")


class TestCliChoices:
    @staticmethod
    def _pool_choices(command):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        pool = next(
            action
            for action in sub.choices[command]._actions
            if "--pool" in action.option_strings
        )
        return tuple(pool.choices), pool.help or ""

    @pytest.mark.parametrize("command", ["solve", "bench"])
    def test_solve_and_bench_offer_every_backend(self, command):
        choices, help_text = self._pool_choices(command)
        assert choices == backend_names()
        # the help text is generated from the registry summaries
        for spec in backend_table():
            assert spec.name in help_text

    def test_serve_offers_service_backends_only(self):
        choices, _ = self._pool_choices("serve")
        assert choices == backend_names(service_only=True)
        assert "fresh" not in choices


# ----------------------------------------------------------------------
# parity matrix: every algorithm, every local backend
# ----------------------------------------------------------------------
def _parity_trees():
    rng = random.Random(20110527)
    trees = [
        make_random_tree(22, rng),
        make_random_tree(17, rng, max_f=6, max_n=3),
        chain_tree(12, f=3.0, n=1.0),
    ]
    return [tree.kernel() for tree in trees]


class TestBackendParity:
    def test_all_algorithms_bit_identical_across_backends(self):
        kerns = _parity_trees()
        algorithms = list_solvers()  # includes the "auto" portfolio (route)
        # a budget equal to the in-core peak keeps every budgeted solver
        # (explore, the minio family) feasible on every tree
        budget = max(
            solve(kern, "minmem").peak_memory for kern in kerns
        )
        expected = solve_many(kerns, algorithms, memory=budget, workers=1)
        for pool in LOCAL_POOLS:
            got = solve_many(
                kerns, algorithms, memory=budget, workers=3, pool=pool
            )
            assert got == expected, f"pool={pool} diverged"

    def test_auto_race_path_bit_identical_across_backends(self):
        # race_threshold=1 forces the race path without a 20k-node tree;
        # the winner is picked on solution quality, never on wall time,
        # so the raced report is deterministic on every backend
        rng = random.Random(7)
        kerns = [make_random_tree(20, rng).kernel() for _ in range(2)]
        expected = solve_many(kerns, "auto", workers=1, race_threshold=1)
        assert all(
            r["auto"].extras["portfolio"]["mode"] == "race" for r in expected
        )
        for pool in LOCAL_POOLS:
            got = solve_many(kerns, "auto", workers=2, pool=pool, race_threshold=1)
            assert got == expected, f"pool={pool} diverged on the race path"

    @pytest.mark.parametrize("algorithm", ["postorder", "liu"])
    def test_incremental_reuse_matches_every_backend(self, algorithm):
        rng = random.Random(5)
        tree = make_random_tree(26, rng)
        report = solve(tree, algorithm, reuse=True)
        # mutate a few nodes, then re-solve incrementally
        tree.set_f(rng.randrange(tree.size), 9.0)
        tree.add_node(tree.size, parent=rng.randrange(tree.size), f=4.0, n=2.0)
        incremental = solve(tree, algorithm, reuse=report)
        assert incremental.extras["incremental"] in ("patched", "full")
        for pool in LOCAL_POOLS:
            (scratch,) = solve_many(
                [tree.copy()], ("postorder", "liu"), workers=2, pool=pool
            )
            got = scratch[algorithm]
            assert got.peak_memory == incremental.peak_memory
            assert got.io_volume == incremental.io_volume
            assert got.traversal.order == incremental.traversal.order
            assert got.traversal.convention == incremental.traversal.convention


# ----------------------------------------------------------------------
# lifecycle: stop -> reject -> shutdown -> re-arm
# ----------------------------------------------------------------------
class TestLifecycle:
    @pytest.mark.parametrize("backend", ["threads", "serial"])
    def test_stop_rejects_and_shutdown_rearms(self, backend):
        cells = [
            (chain_tree(5, f=2.0, n=1.0).kernel(), "minmem", None, {})
            for _ in range(3)
        ]
        engine = SolveEngine(backend=backend)
        try:
            first = engine.run_batch(cells, workers=2)
            if first is None:  # serial backend: engine says "run in-process"
                first = [None] * len(cells)
            assert len(first) == len(cells)

            engine.stop()
            assert engine.stopping
            with pytest.raises(EngineStoppedError):
                engine.run_batch(cells, workers=2)
            with pytest.raises(EngineStoppedError):
                engine.submit(cells[0], workers=2)

            engine.shutdown()  # graceful drain completes: flag clears
            assert not engine.stopping
            again = engine.run_batch(cells, workers=2)
            if again is None:
                again = [None] * len(cells)
            assert len(again) == len(cells)
        finally:
            engine.shutdown()

    def test_threads_futures_and_snapshot(self):
        kern = chain_tree(6, f=2.0, n=1.0).kernel()
        with SolveEngine(backend="threads") as engine:
            future = engine.submit((kern, "minmem", None, {}), workers=2)
            report = future.result(timeout=30)
            assert report.algorithm == "minmem"
            chunk = engine.submit_chunk(
                [(kern, "minmem", None, {}), (kern, "postorder", None, {})],
                workers=2,
            )
            reports = chunk.result(timeout=30)
            assert [r.algorithm for r in reports] == ["minmem", "postorder"]
            snap = engine.snapshot()
            assert snap["backend"] == "threads"
            assert snap["submits"] >= 2
            assert snap["pool"]["kind"] == "thread"

    def test_engine_reset_survives(self):
        kern = chain_tree(6, f=2.0, n=1.0).kernel()
        with SolveEngine(backend="threads") as engine:
            assert engine.run_batch([(kern, "minmem", None, {})] * 2, workers=2)
            engine.reset()  # discard the pool; next call rebuilds it
            assert engine.run_batch([(kern, "minmem", None, {})] * 2, workers=2)


# ----------------------------------------------------------------------
# campaign work-splitting: straggler re-splits are an execution detail
# ----------------------------------------------------------------------
@pytest.fixture()
def _sleepy_bench_solver():
    # registered at fixture time (never at import), so parametrized tests
    # that enumerate list_solvers() at collection never see it
    @register_solver(
        "bench_sleepy", family="test", summary="sleeps by size then answers"
    )
    def _sleepy(tree, **_ignored):
        kern = tree if isinstance(tree, TreeKernel) else tree.kernel()
        time.sleep(0.4 if kern.size >= 20 else 0.01)
        root = tree.ids[0] if isinstance(tree, TreeKernel) else tree.root
        return SolveReport(
            algorithm="bench_sleepy",
            peak_memory=float(kern.size),
            traversal=Traversal((root,), BOTTOMUP),
        )

    yield


def _straggler_campaign():
    def builder(seed):
        return [
            ("fast-0", chain_tree(4, f=2.0, n=1.0)),
            ("fast-1", chain_tree(5, f=2.0, n=1.0)),
            ("fast-2", chain_tree(6, f=2.0, n=1.0)),
            ("slow-0", chain_tree(24, f=2.0, n=1.0)),
        ]

    return Scenario(
        name="straggler",
        family="synthetic",
        builder=builder,
        algorithms=("bench_sleepy",),
        budget_fractions=(),
        summary="three quick instances and one deliberate straggler",
    )


class TestStragglerResplit:
    def test_resplit_fires_and_records_stay_bit_identical(
        self, _sleepy_bench_solver
    ):
        campaign = [_straggler_campaign()]
        # saturate_factor=1.0 builds exactly `workers` units, so the slow
        # instance shares a unit with a fast one; straggler_factor=1.2 puts
        # the re-split threshold far below the 0.4 s sleep
        threaded = run_scenarios(
            campaign,
            seed=1,
            repeat=1,
            validate=False,
            workers=2,
            pool="threads",
            saturate_factor=1.0,
            straggler_factor=1.2,
        )
        serial = run_scenarios(
            campaign, seed=1, repeat=1, validate=False, pool="serial"
        )

        assert threaded.extras["backend"] == "threads"
        assert threaded.extras["work_units"] > 0
        assert threaded.extras["straggler_resplits"] >= 1
        assert serial.extras == {
            "backend": "serial",
            "work_units": 0,
            "straggler_resplits": 0,
            "unit_retries": 0,
        }

        # exactly one record per cell, in the serial campaign's order,
        # despite the duplicate in-flight copies the re-split created
        threaded_keys = [record.key for record in threaded.records]
        assert threaded_keys == [record.key for record in serial.records]
        assert len(threaded_keys) == len(set(threaded_keys))

        stripped = [
            [replace(r, best_time=0.0, mean_time=0.0) for r in run.records]
            for run in (threaded, serial)
        ]
        assert stripped[0] == stripped[1]

    def test_bad_split_factors_rejected(self):
        with pytest.raises(ValueError, match="saturate_factor"):
            run_scenarios([_straggler_campaign()], saturate_factor=0.0)
        with pytest.raises(ValueError, match="straggler_factor"):
            run_scenarios([_straggler_campaign()], straggler_factor=-1.0)
