"""Unit tests for the experiment drivers (Figures 5-9, Tables I-II)."""

import math

import pytest

from repro.analysis.datasets import TreeInstance, assembly_tree_dataset
from repro.analysis.experiments import (
    MINMEMORY_ALGORITHMS,
    run_harpoon_ablation,
    run_minio_heuristics,
    run_minmemory_comparison,
    run_runtime_comparison,
    run_traversal_io,
    traversal_for,
)
from repro.core.liu import liu_min_memory
from repro.core.traversal import peak_memory
from repro.generators.harpoon import harpoon_tree
from repro.sparse.matrices import grid_laplacian_2d


@pytest.fixture(scope="module")
def instances():
    return assembly_tree_dataset(
        "tiny", matrices=[("g8", grid_laplacian_2d(8))], orderings=("nested_dissection", "rcm"),
        relaxed=(1, 4),
    )


@pytest.fixture(scope="module")
def harpoon_instances():
    return [
        TreeInstance(name=f"harpoon-b{b}", tree=harpoon_tree(b, 1.0, 0.01), source="synthetic")
        for b in (2, 3, 4)
    ]


class TestTraversalFor:
    def test_all_algorithms(self, instances):
        tree = instances[0].tree
        for name in MINMEMORY_ALGORITHMS:
            memory, traversal = traversal_for(tree, name)
            assert peak_memory(tree, traversal) == pytest.approx(memory)

    def test_unknown_algorithm(self, instances):
        with pytest.raises(ValueError):
            traversal_for(instances[0].tree, "Magic")


class TestMinMemoryComparison:
    def test_postorder_at_least_optimal(self, instances):
        comparison = run_minmemory_comparison(instances)
        assert len(comparison.names) == len(instances)
        for post, opt in zip(comparison.postorder, comparison.optimal):
            assert post >= opt - 1e-9
        stats = comparison.statistics()
        assert stats.mean_ratio >= 1.0

    def test_optimal_matches_liu(self, instances):
        comparison = run_minmemory_comparison(instances)
        for inst, opt in zip(instances, comparison.optimal):
            assert opt == pytest.approx(liu_min_memory(inst.tree))

    def test_profile_non_optimal_only(self, harpoon_instances):
        comparison = run_minmemory_comparison(harpoon_instances)
        # postorder is strictly suboptimal on every harpoon
        assert comparison.statistics().non_optimal_fraction == 1.0
        profile = comparison.profile(non_optimal_only=True)
        assert profile.fraction_best("Optimal") == 1.0
        assert profile.fraction_best("PostOrder") == 0.0

    def test_rows(self, harpoon_instances):
        rows = run_minmemory_comparison(harpoon_instances).rows()
        assert len(rows) == 3
        assert all(row["ratio"] >= 1.0 for row in rows)


class TestRuntimeComparison:
    def test_times_recorded(self, instances):
        runtime = run_runtime_comparison(instances[:2], repeats=1)
        assert set(runtime.times) == {"PostOrder", "Liu", "MinMem"}
        for alg, values in runtime.times.items():
            assert len(values) == 2
            assert all(v >= 0 for v in values)
            assert runtime.total_time(alg) == pytest.approx(sum(values))

    def test_memories_consistent(self, instances):
        runtime = run_runtime_comparison(instances[:2])
        for liu_mem, minmem_mem in zip(runtime.memories["Liu"], runtime.memories["MinMem"]):
            assert liu_mem == pytest.approx(minmem_mem)

    def test_profile_builds(self, instances):
        profile = run_runtime_comparison(instances[:2]).profile()
        assert set(profile.methods) == {"PostOrder", "Liu", "MinMem"}


class TestMinIOExperiments:
    def test_heuristics_experiment(self, instances):
        comparison = run_minio_heuristics(
            instances[:2], memory_fractions=(0.0, 0.5), heuristics=("first_fit", "lsnf")
        )
        assert set(comparison.io_volumes) == {"first_fit", "lsnf"}
        n_cases = len(comparison.cases)
        assert n_cases == 2 * 2
        assert all(len(v) == n_cases for v in comparison.io_volumes.values())
        assert all(v >= 0 for vol in comparison.io_volumes.values() for v in vol)

    def test_traversal_experiment(self, instances):
        comparison = run_traversal_io(
            instances[:2], memory_fractions=(0.0,), heuristic="first_fit"
        )
        assert set(comparison.io_volumes) == {
            "PostOrder + first_fit",
            "Liu + first_fit",
            "MinMem + first_fit",
        }
        profile = comparison.profile()
        assert all(0.0 <= profile.fraction_best(m) <= 1.0 for m in profile.methods)

    def test_io_zero_at_full_memory(self, instances):
        comparison = run_minio_heuristics(
            instances[:1], memory_fractions=(1.0,), heuristics=("first_fit",)
        )
        assert all(v == pytest.approx(0.0) for v in comparison.io_volumes["first_fit"])


class TestHarpoonAblation:
    def test_ratio_grows(self):
        ablation = run_harpoon_ablation(branches=3, levels=(1, 2, 3), epsilon=0.01)
        ratios = ablation.ratios()
        assert all(a < b for a, b in zip(ratios, ratios[1:]))
        for measured, predicted in zip(ablation.postorder, ablation.predicted_postorder):
            assert measured == pytest.approx(predicted)
        for measured, predicted in zip(ablation.optimal, ablation.predicted_optimal):
            assert measured == pytest.approx(predicted)
