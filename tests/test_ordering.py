"""Unit tests for the fill-reducing orderings."""

import numpy as np
import pytest

from repro.sparse.matrices import banded_spd, grid_laplacian_2d, random_spd
from repro.sparse.ordering import (
    ORDERINGS,
    apply_ordering,
    minimum_degree_ordering,
    natural_ordering,
    nested_dissection_ordering,
    permutation_matrix,
    rcm_ordering,
)
from repro.sparse.symbolic import symbolic_stats


def is_permutation(perm, n):
    return sorted(perm.tolist()) == list(range(n))


class TestBasics:
    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_returns_permutation(self, name):
        a = grid_laplacian_2d(7)
        perm = ORDERINGS[name](a)
        assert is_permutation(perm, 49)

    def test_natural_is_identity(self):
        a = grid_laplacian_2d(4)
        assert np.array_equal(natural_ordering(a), np.arange(16))

    def test_apply_ordering_symmetric(self):
        a = grid_laplacian_2d(5)
        perm = rcm_ordering(a)
        b = apply_ordering(a, perm)
        assert (abs(b - b.T)).nnz == 0
        assert b.nnz == a.nnz

    def test_permutation_matrix(self):
        a = grid_laplacian_2d(4)
        perm = rcm_ordering(a)
        p = permutation_matrix(perm)
        direct = apply_ordering(a, perm).toarray()
        via_matrix = (p @ a @ p.T).toarray()
        assert np.allclose(direct, via_matrix)


class TestQuality:
    def test_rcm_reduces_bandwidth(self):
        a = random_spd(80, density=0.05, seed=4)
        perm = rcm_ordering(a)
        b = apply_ordering(a, perm)
        def bandwidth(m):
            rows, cols = m.nonzero()
            return int(np.max(np.abs(rows - cols))) if rows.size else 0
        assert bandwidth(b) <= bandwidth(a)

    def test_fill_reduction_on_grid(self):
        """MD and ND must produce (much) less fill than the natural order."""
        a = grid_laplacian_2d(12)
        natural_fill = symbolic_stats(apply_ordering(a, natural_ordering(a))).nnz_l
        md_fill = symbolic_stats(apply_ordering(a, minimum_degree_ordering(a))).nnz_l
        nd_fill = symbolic_stats(apply_ordering(a, nested_dissection_ordering(a))).nnz_l
        assert md_fill < natural_fill
        assert nd_fill < natural_fill

    def test_minimum_degree_on_banded(self):
        a = banded_spd(60, bandwidth=2, seed=1)
        perm = minimum_degree_ordering(a)
        assert is_permutation(perm, 60)

    def test_nested_dissection_leaf_size(self):
        a = grid_laplacian_2d(9)
        perm = nested_dissection_ordering(a, leaf_size=8)
        assert is_permutation(perm, 81)

    def test_nested_dissection_disconnected(self):
        import scipy.sparse as sp

        a = sp.block_diag([grid_laplacian_2d(5), grid_laplacian_2d(6)]).tocsc()
        perm = nested_dissection_ordering(a)
        assert is_permutation(perm, 25 + 36)

    def test_deterministic(self):
        a = grid_laplacian_2d(8)
        for name, func in ORDERINGS.items():
            assert np.array_equal(func(a), func(a)), name
