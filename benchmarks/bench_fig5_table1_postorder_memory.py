"""Figure 5 + Table I: PostOrder versus optimal memory on assembly trees.

The paper reports that the best postorder is optimal on 95.8% of its
assembly trees, with a worst-case overhead of 18% and an average of 1%
(Table I), and plots the performance profile of the non-optimal cases
(Figure 5).  This benchmark regenerates both artefacts on the substitute
assembly-tree data set and times the two algorithms involved.
"""

from repro.analysis.experiments import run_minmemory_comparison
from repro.analysis.performance_profiles import ascii_profile, format_profile_table
from repro.analysis.statistics import format_ratio_table
from repro.core.minmem import min_mem
from repro.core.postorder import best_postorder


def test_fig5_table1_postorder_vs_optimal(benchmark, assembly_instances, report):
    """Regenerate Table I statistics and the Figure 5 profile."""
    comparison = benchmark.pedantic(
        run_minmemory_comparison, args=(assembly_instances,), rounds=1, iterations=1
    )
    stats = comparison.statistics()
    profile = comparison.profile(non_optimal_only=True)
    lines = [
        f"data set: {len(assembly_instances)} assembly trees",
        "",
        "Table I -- statistics on the memory cost of PostOrder:",
        format_ratio_table(stats),
        "",
        "Figure 5 -- performance profile on the non-optimal instances:",
        format_profile_table(profile, taus=(1.0, 1.02, 1.05, 1.1, 1.2, 1.5)),
        "",
        ascii_profile(profile),
    ]
    report("fig5_table1_postorder_memory", "\n".join(lines))

    # sanity: postorder can never beat the optimum
    assert all(p >= o - 1e-9 for p, o in zip(comparison.postorder, comparison.optimal))
    assert stats.mean_ratio >= 1.0


def test_postorder_throughput(benchmark, assembly_instances):
    """Raw speed of the PostOrder algorithm over the whole data set."""
    trees = [instance.tree for instance in assembly_instances]

    def run():
        return [best_postorder(tree).memory for tree in trees]

    memories = benchmark(run)
    assert len(memories) == len(trees)


def test_minmem_throughput(benchmark, assembly_instances):
    """Raw speed of the MinMem algorithm over the whole data set."""
    trees = [instance.tree for instance in assembly_instances]

    def run():
        return [min_mem(tree).memory for tree in trees]

    memories = benchmark(run)
    assert len(memories) == len(trees)
