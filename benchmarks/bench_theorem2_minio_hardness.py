"""Theorem 2 ablation: MinIO hardness instances (2-Partition harpoons).

The NP-completeness reduction of Theorem 2 encodes a 2-Partition instance in
a harpoon so that an I/O volume of ``S/2`` is achievable iff the instance is
solvable.  The benchmark compares the greedy heuristics against the exact
(exponential) optimum on a family of such instances, measuring how close the
heuristics get to the hardness threshold.
"""

import itertools

from repro.core.bruteforce import optimal_min_io
from repro.core.minio import HEURISTICS, run_out_of_core
from repro.core.minmem import min_mem
from repro.generators.harpoon import two_partition_harpoon

INSTANCES = {
    "balanced-4": [1, 1, 2, 2],
    "balanced-5": [3, 1, 1, 2, 1],
    "unbalanced-3": [1, 1, 1],
    "powers-4": [1, 2, 4, 8],
    "mixed-5": [2, 3, 5, 4, 6],
}


def _evaluate():
    rows = []
    for name, values in INSTANCES.items():
        tree = two_partition_harpoon(values)
        total = sum(values)
        memory = 2.0 * total
        optimal = optimal_min_io(tree, memory)
        traversal = min_mem(tree).traversal
        heuristic_io = {
            heuristic: run_out_of_core(tree, memory, traversal, heuristic).io_volume
            for heuristic in HEURISTICS
        }
        rows.append((name, total, optimal, heuristic_io))
    return rows


def test_theorem2_heuristics_vs_exact(benchmark, report):
    """Exact MinIO versus the greedy heuristics on 2-Partition harpoons."""
    rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    lines = [
        "2-Partition harpoons, M = 2S (the root requirement); S/2 is the hardness threshold",
        f"{'instance':<14}{'S':>5}{'exact':>8}" + "".join(f"{h:>18}" for h in HEURISTICS),
    ]
    for name, total, optimal, heuristic_io in rows:
        line = f"{name:<14}{total:>5.0f}{optimal:>8.1f}"
        for heuristic in HEURISTICS:
            line += f"{heuristic_io[heuristic]:>18.1f}"
        lines.append(line)
    report("theorem2_minio_hardness", "\n".join(lines))

    for _, total, optimal, heuristic_io in rows:
        # the exact optimum respects the reduction's threshold
        assert optimal >= total / 2 - 1e-9
        # heuristics are upper bounds on the optimum
        assert all(io >= optimal - 1e-9 for io in heuristic_io.values())


def test_exact_minio_cost(benchmark):
    """Cost of the exponential exact solver on a 5-value instance."""
    tree = two_partition_harpoon([2, 3, 5, 4, 6])
    benchmark(lambda: optimal_min_io(tree, 2.0 * 20))
