"""Extension benchmark: traversal choice inside a real multifrontal solve.

The paper's model abstracts the multifrontal method as a task tree; this
benchmark closes the loop by running the actual numeric multifrontal Cholesky
engine under (a) the best postorder traversal and (b) the optimal traversal of
the column task tree, and reporting the measured peak memory (frontal matrix
plus resident contribution blocks) for several matrices and orderings.
"""

import numpy as np

from repro.core.liu import liu_optimal_traversal
from repro.core.postorder import best_postorder
from repro.sparse.matrices import banded_spd, grid_laplacian_2d, random_spd
from repro.sparse.multifrontal import frontal_memory_tree, multifrontal_cholesky
from repro.sparse.ordering import apply_ordering, minimum_degree_ordering, rcm_ordering

MATRICES = {
    "grid2d-12": lambda: grid_laplacian_2d(12),
    "grid2d-12/md": lambda: _ordered(grid_laplacian_2d(12), minimum_degree_ordering),
    "banded-200/rcm": lambda: _ordered(banded_spd(200, 4, seed=3), rcm_ordering),
    "random-120/md": lambda: _ordered(random_spd(120, 0.05, seed=7), minimum_degree_ordering),
}


def _ordered(matrix, ordering):
    return apply_ordering(matrix, ordering(matrix))


def _evaluate():
    rows = []
    for name, factory in MATRICES.items():
        matrix = factory()
        tree = frontal_memory_tree(matrix)
        postorder = best_postorder(tree)
        optimal = liu_optimal_traversal(tree)
        engine_post = multifrontal_cholesky(matrix, postorder.traversal)
        engine_opt = multifrontal_cholesky(matrix, optimal.traversal)
        residual = float(
            np.abs((engine_opt.factor @ engine_opt.factor.T - matrix)).max()
        )
        rows.append(
            (
                name,
                matrix.shape[0],
                engine_post.peak_memory,
                engine_opt.peak_memory,
                postorder.memory,
                optimal.memory,
                residual,
            )
        )
    return rows


def test_multifrontal_traversal_memory(benchmark, report):
    """Peak engine memory under postorder vs optimal traversals."""
    rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    lines = [
        "peak memory of the numeric multifrontal engine (matrix entries)",
        f"{'matrix':<18}{'n':>6}{'engine PO':>12}{'engine OPT':>12}"
        f"{'model PO':>10}{'model OPT':>11}{'|LL^T-A|':>12}",
    ]
    for name, n, engine_po, engine_opt, model_po, model_opt, residual in rows:
        lines.append(
            f"{name:<18}{n:>6}{engine_po:>12.0f}{engine_opt:>12.0f}"
            f"{model_po:>10.0f}{model_opt:>11.0f}{residual:>12.2e}"
        )
    report("multifrontal_memory", "\n".join(lines))

    for _, _, engine_po, engine_opt, model_po, model_opt, residual in rows:
        # the engine agrees with the task-tree model on both traversals
        assert abs(engine_po - model_po) <= 1e-6 * max(1.0, model_po)
        assert abs(engine_opt - model_opt) <= 1e-6 * max(1.0, model_opt)
        assert engine_opt <= engine_po + 1e-9
        assert residual < 1e-8


def test_multifrontal_factorization_speed(benchmark):
    """Raw factorization speed on the 12x12 grid (postorder traversal)."""
    matrix = grid_laplacian_2d(12)
    benchmark(lambda: multifrontal_cholesky(matrix).peak_memory)
