"""Figure 9 + Table II: PostOrder versus optimal memory on random trees.

Keeping the assembly-tree shapes but redrawing the weights at random
(Section VI-E) makes the best postorder suboptimal on most instances (61% in
the paper, with ratios up to 2.22), showing that an optimal algorithm is
mandatory on general trees when memory is scarce.
"""

from repro.analysis.experiments import run_minmemory_comparison
from repro.analysis.performance_profiles import ascii_profile, format_profile_table
from repro.analysis.statistics import format_ratio_table


def test_fig9_table2_random_trees(benchmark, random_instances, report):
    """Regenerate Table II statistics and the Figure 9 profile."""
    comparison = benchmark.pedantic(
        run_minmemory_comparison, args=(random_instances,), rounds=1, iterations=1
    )
    stats = comparison.statistics()
    profile = comparison.profile(non_optimal_only=True)
    lines = [
        f"data set: {len(random_instances)} randomly reweighted trees",
        "",
        "Table II -- statistics on the memory cost of PostOrder (random trees):",
        format_ratio_table(stats),
        "",
        "Figure 9 -- performance profile on the non-optimal instances:",
        format_profile_table(profile, taus=(1.0, 1.05, 1.1, 1.25, 1.5, 2.0)),
        "",
        ascii_profile(profile),
    ]
    report("fig9_table2_random_trees", "\n".join(lines))

    assert all(p >= o - 1e-9 for p, o in zip(comparison.postorder, comparison.optimal))


def test_random_trees_harder_than_assembly(assembly_instances, random_instances, report):
    """The paper's qualitative finding: PostOrder is non-optimal far more
    often on random trees than on assembly trees."""
    assembly_stats = run_minmemory_comparison(assembly_instances).statistics()
    random_stats = run_minmemory_comparison(random_instances).statistics()
    report(
        "fig9_assembly_vs_random",
        "\n".join(
            [
                "fraction of instances where PostOrder is NOT optimal:",
                f"  assembly trees : {assembly_stats.non_optimal_fraction * 100:6.1f}%",
                f"  random trees   : {random_stats.non_optimal_fraction * 100:6.1f}%",
                "maximum PostOrder/optimal ratio:",
                f"  assembly trees : {assembly_stats.max_ratio:6.2f}",
                f"  random trees   : {random_stats.max_ratio:6.2f}",
            ]
        ),
    )
    assert random_stats.non_optimal_fraction >= assembly_stats.non_optimal_fraction
