"""Figure 7: I/O volume of the six eviction heuristics on MinMem traversals.

The paper finds First Fit best, nearly tied with Best-K Combination, with
Best Fill / First Fill next and LSNF / Best Fit last.  The benchmark sweeps
the main memory from ``max MemReq`` to the traversal's in-core peak on every
assembly tree and builds the same performance profile.
"""

from repro.analysis.experiments import run_minio_heuristics
from repro.analysis.performance_profiles import ascii_profile, format_profile_table
from repro.core.minio import HEURISTICS


def test_fig7_heuristic_profile(benchmark, assembly_instances, report):
    """Regenerate the Figure 7 performance profile."""
    comparison = benchmark.pedantic(
        run_minio_heuristics,
        args=(assembly_instances,),
        kwargs={"memory_fractions": (0.0, 0.25, 0.5, 0.75)},
        rounds=1,
        iterations=1,
    )
    profile = comparison.profile()
    lines = [
        f"cases: {len(comparison.cases)} (tree x memory combinations), "
        f"traversals: MinMem",
        "",
        "Figure 7 -- I/O volume performance profile of the eviction heuristics:",
        format_profile_table(profile, taus=(1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 5.0)),
        "",
        ascii_profile(profile, tau_max=3.0),
        "",
        "total I/O volume per heuristic (lower is better):",
    ]
    for heuristic in HEURISTICS:
        lines.append(f"  {heuristic:<20}: {comparison.total_io(heuristic):14.0f}")
    report("fig7_minio_heuristics", "\n".join(lines))

    assert set(comparison.io_volumes) == set(HEURISTICS)
    assert all(v >= 0 for vols in comparison.io_volumes.values() for v in vols)


def test_fig7_heuristic_profile_random_trees(benchmark, random_instances, report):
    """Same experiment on the random-weight trees.

    At the scaled-down size of the substitute assembly trees the eviction
    decisions are often forced (one large contribution block dominates), so
    the heuristics tie; the Section VI-E random-weight trees restore the
    differentiation the paper observes, with First Fit in front.
    """
    comparison = benchmark.pedantic(
        run_minio_heuristics,
        args=(random_instances,),
        kwargs={"memory_fractions": (0.0, 0.25, 0.5, 0.75)},
        rounds=1,
        iterations=1,
    )
    profile = comparison.profile()
    lines = [
        f"cases: {len(comparison.cases)} (random-weight tree x memory combinations)",
        "",
        "Figure 7 (random-weight trees) -- I/O volume performance profile:",
        format_profile_table(profile, taus=(1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 5.0)),
        "",
        "total I/O volume per heuristic (lower is better):",
    ]
    for heuristic in HEURISTICS:
        lines.append(f"  {heuristic:<20}: {comparison.total_io(heuristic):14.0f}")
    report("fig7_minio_heuristics_random", "\n".join(lines))
    assert set(comparison.io_volumes) == set(HEURISTICS)
