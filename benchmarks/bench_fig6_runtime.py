"""Figure 6: run-time comparison of PostOrder, Liu and MinMem.

The paper's Figure 6 is a performance profile of the running times of the
three MinMemory algorithms on the assembly trees, showing MinMem fastest in
about 80% of the cases and clearly ahead of Liu's exact algorithm.  The
absolute times here are Python, not optimized C++, but the relative ordering
is what the figure is about.
"""

from repro.analysis.experiments import run_runtime_comparison
from repro.analysis.performance_profiles import ascii_profile, format_profile_table
from repro.core.liu import liu_optimal_traversal
from repro.core.minmem import min_mem
from repro.core.postorder import best_postorder


def test_fig6_runtime_profile(benchmark, assembly_instances, report):
    """Regenerate the Figure 6 run-time performance profile."""
    runtime = benchmark.pedantic(
        run_runtime_comparison, args=(assembly_instances,), rounds=1, iterations=1
    )
    profile = runtime.profile()
    lines = [
        f"data set: {len(assembly_instances)} assembly trees",
        "",
        "Figure 6 -- run-time performance profile:",
        format_profile_table(profile, taus=(1.0, 1.5, 2.0, 3.0, 5.0, 10.0)),
        "",
        ascii_profile(profile, tau_max=5.0),
        "",
        "total wall-clock per algorithm:",
    ]
    for algorithm in runtime.times:
        lines.append(f"  {algorithm:<10}: {runtime.total_time(algorithm) * 1e3:9.1f} ms")
    report("fig6_runtime", "\n".join(lines))

    # both exact algorithms must report the same optimal memory everywhere
    for liu_mem, minmem_mem in zip(runtime.memories["Liu"], runtime.memories["MinMem"]):
        assert abs(liu_mem - minmem_mem) <= 1e-6 * max(1.0, liu_mem)


def _medium_tree(assembly_instances):
    return max((i.tree for i in assembly_instances), key=lambda t: t.size)


def test_liu_single_tree(benchmark, assembly_instances):
    """Liu's exact algorithm on the largest tree of the data set."""
    tree = _medium_tree(assembly_instances)
    benchmark(lambda: liu_optimal_traversal(tree).memory)


def test_minmem_single_tree(benchmark, assembly_instances):
    """MinMem on the largest tree of the data set."""
    tree = _medium_tree(assembly_instances)
    benchmark(lambda: min_mem(tree).memory)


def test_postorder_single_tree(benchmark, assembly_instances):
    """PostOrder on the largest tree of the data set."""
    tree = _medium_tree(assembly_instances)
    benchmark(lambda: best_postorder(tree).memory)
