"""Figure 8: I/O volume of the three traversal algorithms with First Fit.

The paper reports that, for out-of-core execution, the *postorder* traversal
behaves best, Liu's traversal comes next and MinMem's traversal is the worst
-- the opposite ranking of the in-core memory experiment -- because the
postorder and Liu produce long chains of dependent tasks whose files are
consumed soon after being produced.
"""

from repro.analysis.experiments import run_traversal_io
from repro.analysis.performance_profiles import ascii_profile, format_profile_table


def test_fig8_traversal_io_profile(benchmark, assembly_instances, report):
    """Regenerate the Figure 8 performance profile."""
    comparison = benchmark.pedantic(
        run_traversal_io,
        args=(assembly_instances,),
        kwargs={"memory_fractions": (0.0, 0.25, 0.5, 0.75), "heuristic": "first_fit"},
        rounds=1,
        iterations=1,
    )
    profile = comparison.profile()
    lines = [
        f"cases: {len(comparison.cases)} (tree x memory combinations), "
        "eviction policy: First Fit",
        "",
        "Figure 8 -- I/O volume performance profile of the traversal algorithms:",
        format_profile_table(profile, taus=(1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 5.0)),
        "",
        ascii_profile(profile, tau_max=3.0),
        "",
        "total I/O volume per traversal algorithm (lower is better):",
    ]
    for method in comparison.io_volumes:
        lines.append(f"  {method:<22}: {comparison.total_io(method):14.0f}")
    report("fig8_traversal_io", "\n".join(lines))

    assert len(comparison.io_volumes) == 3
    assert all(len(v) == len(comparison.cases) for v in comparison.io_volumes.values())


def test_fig8_traversal_io_random_trees(benchmark, random_instances, report):
    """Same experiment on the random-weight trees, where the traversals
    actually differ (on the scaled-down assembly trees all three algorithms
    often produce postorders with the same forced evictions)."""
    comparison = benchmark.pedantic(
        run_traversal_io,
        args=(random_instances,),
        kwargs={"memory_fractions": (0.0, 0.25, 0.5, 0.75), "heuristic": "first_fit"},
        rounds=1,
        iterations=1,
    )
    profile = comparison.profile()
    lines = [
        f"cases: {len(comparison.cases)} (random-weight tree x memory combinations), "
        "eviction policy: First Fit",
        "",
        "Figure 8 (random-weight trees) -- I/O volume performance profile:",
        format_profile_table(profile, taus=(1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 5.0)),
        "",
        "total I/O volume per traversal algorithm (lower is better):",
    ]
    for method in comparison.io_volumes:
        lines.append(f"  {method:<22}: {comparison.total_io(method):14.0f}")
    report("fig8_traversal_io_random", "\n".join(lines))
    assert len(comparison.io_volumes) == 3
