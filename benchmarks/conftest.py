"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md's
experiment index).  The data sets are built once per session; their scale is
controlled by the ``REPRO_BENCH_SCALE`` environment variable (``tiny``,
``small`` -- the default -- or ``full``).  Each benchmark prints the
regenerated table/profile and also appends it to
``benchmarks/results/<experiment>.txt`` so the output survives pytest's
capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.datasets import assembly_tree_dataset, random_tree_dataset

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("tiny", "small", "full"):
        raise ValueError(f"invalid REPRO_BENCH_SCALE={scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def assembly_instances(scale):
    """The assembly-tree data set (matrices x orderings x amalgamation)."""
    return assembly_tree_dataset(scale)


@pytest.fixture(scope="session")
def random_instances(scale, assembly_instances):
    """The Section VI-E randomly reweighted data set."""
    return random_tree_dataset(scale, seed=0, assembly_instances=assembly_instances)


@pytest.fixture(scope="session")
def report():
    """Callable writing a labelled report both to stdout and to a file."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _report
