"""Theorem 1 ablation: the iterated-harpoon worst case for postorders.

Not a figure of the paper's evaluation section, but the constructive lower
bound behind its Theorem 1: the benchmark measures how the postorder/optimal
memory ratio grows with the nesting level and checks it against the
closed-form bounds of the proof.
"""

import pytest

from repro.analysis.experiments import run_harpoon_ablation
from repro.core.minmem import min_mem
from repro.core.postorder import best_postorder
from repro.generators.harpoon import iterated_harpoon_tree


def test_theorem1_ratio_growth(benchmark, report):
    """Measure the PostOrder/optimal ratio for increasing nesting levels."""
    ablation = benchmark.pedantic(
        run_harpoon_ablation,
        kwargs={"branches": 4, "levels": (1, 2, 3, 4, 5), "epsilon": 0.001},
        rounds=1,
        iterations=1,
    )
    lines = [
        "iterated harpoon, b = 4, epsilon = 0.001",
        f"{'levels':>7}{'PostOrder':>12}{'predicted':>12}{'Optimal':>10}{'predicted':>12}{'ratio':>8}",
    ]
    for i, level in enumerate(ablation.levels):
        lines.append(
            f"{level:>7}{ablation.postorder[i]:>12.4f}{ablation.predicted_postorder[i]:>12.4f}"
            f"{ablation.optimal[i]:>10.4f}{ablation.predicted_optimal[i]:>12.4f}"
            f"{ablation.postorder[i] / ablation.optimal[i]:>8.2f}"
        )
    report("theorem1_harpoon", "\n".join(lines))

    ratios = ablation.ratios()
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    for measured, predicted in zip(ablation.postorder, ablation.predicted_postorder):
        assert measured == pytest.approx(predicted)


def test_harpoon_postorder_speed(benchmark):
    """PostOrder on a large iterated harpoon (worst-case shape for it)."""
    tree = iterated_harpoon_tree(4, 5, memory=1.0, epsilon=0.001)
    benchmark(lambda: best_postorder(tree).memory)


def test_harpoon_minmem_speed(benchmark):
    """MinMem on a large iterated harpoon."""
    tree = iterated_harpoon_tree(4, 5, memory=1.0, epsilon=0.001)
    benchmark(lambda: min_mem(tree).memory)
