"""Command-line interface.

``repro-treemem`` exposes the library's main entry points:

* ``repro-treemem solve TREE.json --algorithm minmem [--json]`` -- run any
  registered solver (``repro-treemem solve --list`` enumerates them) on one
  or more stored trees, optionally emitting the full
  :class:`~repro.solvers.SolveReport` as JSON;
* ``repro-treemem minmem TREE.json`` -- MinMemory values of a stored tree
  with all three algorithms;
* ``repro-treemem minio TREE.json --memory M`` -- out-of-core I/O volumes of
  the six eviction heuristics;
* ``repro-treemem dataset --scale small --output DIR`` -- materialise the
  assembly-tree and random-tree data sets as JSON files;
* ``repro-treemem experiment fig5|fig6|fig7|fig8|fig9|table1|table2|harpoon``
  -- regenerate one of the paper's tables or figures and print it;
* ``repro-treemem bench [--filter PAT] [--json] [--repeat N]`` -- run the
  scenario-sweep benchmark campaign (``--list`` enumerates the scenarios),
  replay-validate every schedule and optionally persist a schema-versioned
  ``BENCH_<timestamp>.json`` artifact;
* ``repro-treemem bench --compare OLD.json NEW.json`` -- diff two benchmark
  artifacts and exit non-zero on a regression;
* ``repro-treemem bench --traffic [--transport stdio]`` -- open-loop traffic
  benchmarks (Poisson / bursty arrivals) over the service daemon, with
  latency percentiles, throughput and rejection counts per load cell;
* ``repro-treemem serve --stdio | --port N`` -- run the solver service
  daemon (see :mod:`repro.service`): NDJSON on stdin/stdout or HTTP/JSON on
  a socket, backed by the persistent engine with admission control and
  per-request deadlines; ``--log-level``/``--log-json`` configure the
  structured log stream, and a live daemon serves Prometheus metrics on
  ``GET /metrics`` (HTTP) or ``{"op": "metrics"}`` (stdio);
* ``repro-treemem report [ARTIFACTS...] --output report.html`` -- render
  committed ``BENCH_*.json`` artifacts into the static HTML trajectory
  dashboard (see :mod:`repro.obs.report`).

Every subcommand dispatches through the :mod:`repro.solvers` registry, so
solvers registered by third-party code (imported before :func:`main` runs)
are available to ``solve`` as well.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .analysis import (
    assembly_tree_dataset,
    ascii_profile,
    format_profile_table,
    format_ratio_table,
    random_tree_dataset,
    run_harpoon_ablation,
    run_minio_heuristics,
    run_minmemory_comparison,
    run_runtime_comparison,
    run_traversal_io,
)
from .core.minio import HEURISTICS
from .core.serialize import load_tree, save_tree, solve_report_to_dict
from .core.tree import TreeValidationError
from .solvers import (
    BackendUnavailableError,
    UnknownSolverError,
    backend_names,
    backend_table,
    compare,
    solve,
    solve_many,
    solver_table,
)

__all__ = ["main", "build_parser"]


def _pool_help(*, service_only: bool = False) -> str:
    """``--pool`` help text straight from the backend registry."""
    names = backend_names(service_only=service_only)
    entries = "; ".join(
        f"'{spec.name}' = {spec.summary}"
        for spec in backend_table()
        if spec.name in names
    )
    return f"executor backend: {entries}"


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed for testing and documentation)."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro-treemem",
        description="Memory-optimal tree traversals for sparse matrix factorization",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="run one registered solver on stored trees")
    p_solve.add_argument("trees", nargs="*", type=Path,
                         help="tree JSON files (see repro.core.serialize)")
    p_solve.add_argument("--algorithm", "-a", default="minmem",
                         help="registered solver name or alias (default: minmem)")
    p_solve.add_argument("--memory", type=float, default=None,
                         help="memory budget forwarded to budgeted solvers (explore, minio)")
    p_solve.add_argument("--heuristic", choices=tuple(HEURISTICS), default=None,
                         help="eviction heuristic for the minio solver")
    p_solve.add_argument("--engine", choices=("kernel", "reference"), default=None,
                         help="execution engine: 'kernel' = array-backed hot "
                              "paths (default), 'reference' = the original "
                              "per-node implementations")
    p_solve.add_argument("--workers", type=int, default=None,
                         help="worker processes for multi-tree batches (default: serial)")
    p_solve.add_argument("--pool", choices=backend_names(), default=None,
                         help=_pool_help() + " (default: persistent)")
    p_solve.add_argument("--json", action="store_true",
                         help="emit the full SolveReport(s) as JSON")
    p_solve.add_argument("--list", action="store_true", dest="list_algorithms",
                         help="list the registered solvers and exit")

    p_minmem = sub.add_parser("minmem", help="MinMemory values of a stored tree")
    p_minmem.add_argument("tree", type=Path, help="tree JSON file (see repro.core.serialize)")

    p_minio = sub.add_parser("minio", help="out-of-core I/O volume of a stored tree")
    p_minio.add_argument("tree", type=Path)
    p_minio.add_argument("--memory", type=float, default=None,
                         help="main memory size (default: halfway between max MemReq and optimal)")
    p_minio.add_argument("--algorithm", choices=("PostOrder", "Liu", "MinMem"), default="MinMem")

    p_dataset = sub.add_parser("dataset", help="materialise the experiment data sets")
    p_dataset.add_argument("--scale", choices=("tiny", "small", "full"), default="small")
    p_dataset.add_argument("--output", type=Path, default=Path("dataset"))
    p_dataset.add_argument("--kind", choices=("assembly", "random", "both"), default="both")

    p_exp = sub.add_parser("experiment", help="regenerate a table or figure of the paper")
    p_exp.add_argument(
        "which",
        choices=("fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2", "harpoon"),
    )
    p_exp.add_argument("--scale", choices=("tiny", "small", "full"), default="small")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--workers", type=int, default=None,
                       help="worker processes for the experiment batch (default: serial)")

    p_pipe = sub.add_parser(
        "pipeline",
        help="run the sparse symbolic pipeline (ordering -> etree -> counts "
             "-> amalgamation -> solvers) on one matrix",
    )
    src = p_pipe.add_mutually_exclusive_group(required=True)
    src.add_argument("--grid2d", type=int, metavar="N",
                     help="N x N 2-D grid Laplacian (5-point stencil)")
    src.add_argument("--grid3d", type=int, metavar="N",
                     help="N x N x N 3-D grid Laplacian (7-point stencil)")
    src.add_argument("--mtx", type=Path, metavar="FILE",
                     help="MatrixMarket coordinate file to load")
    p_pipe.add_argument("--ordering", default="rcm",
                        help="fill-reducing ordering (natural, rcm, "
                             "minimum_degree, nested_dissection; default: rcm)")
    p_pipe.add_argument("--relaxed", type=int, default=1,
                        help="relaxed-amalgamation budget per supernode (default: 1)")
    p_pipe.add_argument("--engine", choices=("kernel", "reference"), default=None,
                        help="symbolic + solver engine: 'kernel' = vectorized "
                             "(default), 'reference' = per-entry oracle")
    p_pipe.add_argument("--algorithm", "-a", action="append", default=None,
                        metavar="NAME",
                        help="solver to run on the assembly tree (repeatable; "
                             "default: postorder, liu, minmem)")
    p_pipe.add_argument("--json", action="store_true",
                        help="emit the stage timings, symbolic statistics and "
                             "solver reports as JSON")

    p_bench = sub.add_parser(
        "bench", help="run the scenario-sweep benchmarks (see repro.bench)"
    )
    p_bench.add_argument("--list", action="store_true", dest="list_scenarios",
                         help="list the registered scenarios and exit")
    p_bench.add_argument("--filter", default=None, metavar="PATTERN",
                         help="substring matched against scenario names, families, "
                              "tags and algorithms")
    p_bench.add_argument("--smoke", action="store_true",
                         help="restrict to the tiny smoke scenarios (CI gate)")
    p_bench.add_argument("--seed", type=int, default=0,
                         help="seed threaded into the scenario builders (default: 0)")
    p_bench.add_argument("--repeat", type=int, default=1,
                         help="timed rounds per batch (default: 1)")
    p_bench.add_argument("--warmup", type=int, default=0,
                         help="untimed warmup rounds before timing (default: 0)")
    p_bench.add_argument("--workers", type=int, default=None,
                         help="worker processes for the solver batches (default: serial)")
    p_bench.add_argument("--pool", choices=backend_names(), default=None,
                         help=_pool_help() + " (default: persistent; "
                              "future-capable backends run the campaign with "
                              "work-splitting and straggler re-splitting)")
    p_bench.add_argument("--json", action="store_true",
                         help="persist a schema-versioned BENCH_<timestamp>.json artifact")
    p_bench.add_argument("--output", type=Path, default=None, metavar="PATH",
                         help="artifact path (implies --json; default: "
                              "BENCH_<timestamp>.json in the current directory)")
    p_bench.add_argument("--engine", choices=("kernel", "reference"), default=None,
                         help="execution engine forwarded to every solver "
                              "(default: the solvers' own default, 'kernel')")
    p_bench.add_argument("--no-validate", action="store_true",
                         help="skip schedule-replay validation (faster, unchecked)")
    p_bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
                         help="diff two BENCH artifacts instead of running; "
                              "exits 1 on regressions")
    p_bench.add_argument("--time-threshold", type=float, default=None, metavar="FRAC",
                         help="relative slowdown flagged as a timing regression "
                              "by --compare (default: 0.25)")
    p_bench.add_argument("--traffic", action="store_true",
                         help="run the open-loop traffic scenarios over the "
                              "service daemon instead of the campaign grid "
                              "(--filter/--smoke select traffic scenarios)")
    p_bench.add_argument("--transport", choices=("inproc", "stdio"),
                         default="inproc",
                         help="traffic transport: 'inproc' = direct service "
                              "calls, 'stdio' = full NDJSON round trips "
                              "through the stdio front end (default: inproc)")
    p_bench.add_argument("--faults", default=None, metavar="SPEC",
                         help="inject a deterministic fault plan into the "
                              "campaign: comma-separated kind@position[:delay] "
                              "entries, e.g. 'kill@3,straggler@5:0.2' "
                              "(see repro.faults)")
    p_bench.add_argument("--checkpoint", type=Path, default=None, metavar="PATH",
                         help="journal completed cells to this sidecar file "
                              "so an interrupted campaign can be resumed")
    p_bench.add_argument("--resume", type=Path, default=None, metavar="PATH",
                         help="resume from a checkpoint journal: cells already "
                              "recorded there are skipped and their reports "
                              "replayed from the journal")

    p_serve = sub.add_parser(
        "serve", help="run the solver service daemon (see repro.service)"
    )
    mode = p_serve.add_mutually_exclusive_group(required=True)
    mode.add_argument("--stdio", action="store_true",
                      help="newline-delimited JSON on stdin/stdout")
    mode.add_argument("--port", type=int, default=None, metavar="PORT",
                      help="HTTP/JSON on this port (0 = ephemeral)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address for --port (default: 127.0.0.1)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker processes of the persistent engine "
                              "(default: in-process execution)")
    p_serve.add_argument("--pool", choices=backend_names(service_only=True),
                         default=None,
                         help=_pool_help(service_only=True)
                              + " (default: persistent when --workers > 1, "
                                "else serial)")
    p_serve.add_argument("--max-pending", type=int, default=128, metavar="N",
                         help="admission bound on queued+executing requests; "
                              "beyond it requests are rejected (default: 128)")
    p_serve.add_argument("--max-inflight", type=int, default=None, metavar="N",
                         help="solves running concurrently (default: sized "
                              "from the executor)")
    p_serve.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                         help="default deadline applied to requests that do "
                              "not carry one (default: none)")
    p_serve.add_argument("--engine", choices=("kernel", "reference"), default=None,
                         help="execution engine forwarded to every solve")
    p_serve.add_argument("--breaker-threshold", type=int, default=5, metavar="N",
                         help="consecutive engine infrastructure failures that "
                              "open the circuit breaker (default: 5)")
    p_serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                         metavar="SECONDS",
                         help="seconds the breaker stays open before letting a "
                              "half-open probe through (default: 30)")
    p_serve.add_argument("--faults", default=None, metavar="SPEC",
                         help="inject a deterministic fault plan into the "
                              "service engine (same grammar as bench --faults; "
                              "smoke tests drive the breaker with it)")
    from .obs import LOG_LEVELS

    p_serve.add_argument("--log-level", choices=LOG_LEVELS, default="info",
                         help="structured log threshold on stderr "
                              "(default: info)")
    p_serve.add_argument("--log-json", action="store_true",
                         help="emit log lines as JSON objects instead of "
                              "key=value text")

    p_report = sub.add_parser(
        "report",
        help="render BENCH_*.json artifacts into a static HTML dashboard",
    )
    p_report.add_argument("artifacts", nargs="*", type=Path,
                          help="artifact files (default: BENCH_*.json in "
                               "the current directory)")
    p_report.add_argument("--output", type=Path, default=Path("report.html"),
                          metavar="PATH",
                          help="dashboard output path (default: report.html)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-treemem`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "minmem":
            return _cmd_minmem(args)
        if args.command == "minio":
            return _cmd_minio(args)
        if args.command == "dataset":
            return _cmd_dataset(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "pipeline":
            return _cmd_pipeline(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "report":
            return _cmd_report(args)
    except (UnknownSolverError, BackendUnavailableError) as exc:
        # missing optional backend dependency (pool=dask without dask): a
        # configuration error, reported like an unknown solver name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, TreeValidationError, json.JSONDecodeError) as exc:
        # unreadable path or malformed tree document: report, don't traceback
        print(f"error: {exc}", file=sys.stderr)
        return 1
    parser.error(f"unknown command {args.command!r}")
    return 2


# ----------------------------------------------------------------------
def _cmd_solve(args: argparse.Namespace) -> int:
    if args.list_algorithms:
        print(f"{'name':<26} {'family':<10} summary")
        for spec in solver_table():
            print(f"{spec.name:<26} {spec.family:<10} {spec.summary}")
        return 0
    if not args.trees:
        print("error: no tree files given (or use --list)", file=sys.stderr)
        return 2

    options = {}
    if args.heuristic is not None:
        options["heuristic"] = args.heuristic
    if args.engine is not None:
        options["engine"] = args.engine

    trees = [load_tree(path) for path in args.trees]
    if len(trees) == 1:
        reports = [solve(trees[0], args.algorithm, memory=args.memory, **options)]
    else:
        if args.pool is not None:
            options["pool"] = args.pool
        batch = solve_many(
            trees, args.algorithm, memory=args.memory, workers=args.workers, **options
        )
        reports = [next(iter(per_tree.values())) for per_tree in batch]

    if args.json:
        documents = [
            {"tree": str(path), "report": solve_report_to_dict(report)}
            for path, report in zip(args.trees, reports)
        ]
        payload = documents[0] if len(documents) == 1 else documents
        print(json.dumps(payload, indent=2))
        return 0

    for path, tree, report in zip(args.trees, trees, reports):
        print(f"{path}: {tree.size} nodes")
        print(f"  {report.summary()}")
        for key, value in report.extras.items():
            print(f"    {key:<20}: {value}")
    return 0


def _cmd_minmem(args: argparse.Namespace) -> int:
    tree = load_tree(args.tree)
    comparison = compare(tree, ("postorder", "liu", "minmem"))
    postorder = comparison["postorder"]
    liu = comparison["liu"]
    minmem = comparison["minmem"]
    print(f"nodes                 : {tree.size}")
    print(f"max MemReq            : {tree.max_mem_req():.6g}")
    print(f"PostOrder memory      : {postorder.peak_memory:.6g}")
    print(f"Liu (optimal) memory  : {liu.peak_memory:.6g}")
    print(f"MinMem (optimal)      : {minmem.peak_memory:.6g}")
    print(f"PostOrder / optimal   : {postorder.peak_memory / minmem.peak_memory:.4f}")
    return 0


def _cmd_minio(args: argparse.Namespace) -> int:
    tree = load_tree(args.tree)
    base = solve(tree, args.algorithm)
    peak, traversal = base.peak_memory, base.traversal
    memory = args.memory
    if memory is None:
        memory = (tree.max_mem_req() + peak) / 2.0
    if memory < tree.max_mem_req():
        print(
            f"error: memory {memory:.6g} is below max MemReq {tree.max_mem_req():.6g}",
            file=sys.stderr,
        )
        return 1
    print(f"traversal algorithm   : {args.algorithm} (in-core peak {peak:.6g})")
    print(f"main memory           : {memory:.6g}")
    for name in HEURISTICS:
        result = solve(tree, "minio", memory=memory, heuristic=name, traversal=traversal)
        print(f"{name:<20}: IO volume {result.io_volume:.6g} "
              f"({result.extras['io_operations']} files written)")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    args.output.mkdir(parents=True, exist_ok=True)
    count = 0
    if args.kind in ("assembly", "both"):
        for instance in assembly_tree_dataset(args.scale):
            path = args.output / (instance.name.replace("/", "_") + ".json")
            save_tree(instance.tree, path)
            count += 1
    if args.kind in ("random", "both"):
        for instance in random_tree_dataset(args.scale):
            path = args.output / (instance.name.replace("/", "_") + ".json")
            save_tree(instance.tree, path)
            count += 1
    print(f"wrote {count} trees to {args.output}")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    # imported lazily: only this subcommand needs the sparse substrate
    from .sparse.assembly import build_assembly_tree
    from .sparse.matrices import grid_laplacian_2d, grid_laplacian_3d
    from .sparse.mmio import read_matrix_market
    from .sparse.ordering import ORDERINGS

    engine = args.engine or "kernel"
    if args.ordering not in ORDERINGS:
        print(f"error: unknown ordering {args.ordering!r}; expected one of "
              f"{sorted(ORDERINGS)}", file=sys.stderr)
        return 2
    if args.grid2d is not None:
        source, matrix = f"grid2d-{args.grid2d}", grid_laplacian_2d(args.grid2d)
    elif args.grid3d is not None:
        source, matrix = f"grid3d-{args.grid3d}", grid_laplacian_3d(args.grid3d)
    else:
        try:
            source, matrix = str(args.mtx), read_matrix_market(args.mtx)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    stages: dict = {}
    try:
        result = build_assembly_tree(
            matrix,
            ordering=args.ordering,
            relaxed=args.relaxed,
            engine=engine,
            stage_seconds=stages,
        )
    except ValueError as exc:  # e.g. a rectangular MatrixMarket file
        print(f"error: {source}: {exc}", file=sys.stderr)
        return 1
    tree, stats = result.tree, result.symbolic

    algorithms = args.algorithm or ["postorder", "liu", "minmem"]
    reports = [solve(tree, name, engine=engine) for name in algorithms]

    if args.json:
        print(json.dumps({
            "source": source,
            "ordering": args.ordering,
            "relaxed": args.relaxed,
            "engine": engine,
            "n": stats.n,
            "nnz_a": stats.nnz_a,
            "nnz_l": stats.nnz_l,
            "flops": stats.flops,
            "fill_ratio": stats.fill_ratio,
            "supernodes": tree.size,
            "stage_seconds": stages,
            "reports": [solve_report_to_dict(r) for r in reports],
        }, indent=2))
        return 0

    print(f"matrix                : {source} "
          f"(n={stats.n}, nnz(tril A)={stats.nnz_a})")
    print(f"ordering / relaxed    : {args.ordering} / {args.relaxed} "
          f"(engine {engine})")
    print(f"nnz(L) / fill ratio   : {stats.nnz_l} / {stats.fill_ratio:.2f}")
    print(f"assembly tree         : {tree.size} supernodes")
    for name, seconds in stages.items():
        print(f"  {name:<20}: {seconds * 1e3:8.2f} ms")
    for report in reports:
        print(f"  {report.summary()}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # imported lazily: the bench package pulls in the dataset builders,
    # which the other subcommands do not need
    from . import bench

    if args.compare is not None:
        old_path, new_path = args.compare
        try:
            threshold = args.time_threshold
            if threshold is None:
                from .bench.artifact import DEFAULT_TIME_THRESHOLD as threshold
            comparison = bench.compare_artifacts(
                bench.load_artifact(old_path),
                bench.load_artifact(new_path),
                time_threshold=threshold,
            )
        except (bench.ArtifactError, OSError) as exc:
            # exit 2 for unusable inputs, so callers can tell "could not
            # compare" apart from "compared and found regressions" (exit 1)
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(comparison.format_report())
        return 0 if comparison.ok else 1

    if args.list_scenarios:
        if args.traffic:
            print(f"{'name':<20} {'cells':<6} {'smoke':<6} summary")
            for name in bench.list_traffic_scenarios():
                scenario = bench.get_traffic_scenario(name)
                smoke = "yes" if scenario.smoke else "no"
                print(f"{scenario.name:<20} {len(scenario.cells):<6} "
                      f"{smoke:<6} {scenario.summary}")
            return 0
        print(f"{'name':<14} {'family':<10} {'smoke':<6} summary")
        for scenario in bench.scenario_table():
            smoke = "yes" if scenario.smoke else "no"
            print(f"{scenario.name:<14} {scenario.family:<10} {smoke:<6} "
                  f"{scenario.summary}")
        return 0

    if args.traffic:
        return _cmd_bench_traffic(args, bench)

    if args.repeat < 1 or args.warmup < 0:
        print("error: --repeat must be >= 1 and --warmup >= 0", file=sys.stderr)
        return 2
    scenarios = bench.select_scenarios(args.filter, smoke=args.smoke)
    if not scenarios:
        print(f"error: no scenario matches filter {args.filter!r}", file=sys.stderr)
        return 2
    fault_plan = None
    if args.faults is not None:
        from .faults import parse_faults

        try:
            fault_plan = parse_faults(args.faults)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        run = bench.run_scenarios(
            scenarios,
            seed=args.seed,
            repeat=args.repeat,
            warmup=args.warmup,
            workers=args.workers,
            validate=not args.no_validate,
            engine=args.engine,
            pool=args.pool,
            fault_plan=fault_plan,
            checkpoint=args.checkpoint,
            resume=args.resume,
        )
    except (ValueError, bench.JournalError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(run.format_table())
    print(f"\ncampaign wall time: {run.campaign_seconds:.3f}s"
          + (f" (workers={run.workers}, pool={run.pool or 'persistent'})"
             if run.workers else ""))
    if args.json or args.output is not None:
        path = bench.write_artifact(run, args.output)
        print(f"\nwrote {len(run.records)} records to {path}")
    failures = run.replay_failures
    if failures:
        for record in failures:
            print(f"replay FAILED  {record.key}: {record.replay_error}",
                  file=sys.stderr)
        return 1
    return 0


def _format_traffic_table(run) -> str:
    """One line per traffic cell: volumes, latency percentiles, throughput."""
    header = (
        f"{'scenario/cell':<46} {'reqs':>6} {'done':>6} {'rej':>5} "
        f"{'miss':>5} {'p50':>9} {'p99':>9} {'req/s':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in run.records:
        e = r.extras
        lines.append(
            f"{r.scenario + '/' + r.instance:<46} {e['requests']:>6} "
            f"{e['completed']:>6} {e['rejected']:>5} {e['deadline_missed']:>5} "
            f"{e['latency_p50'] * 1e3:>7.2f}ms {e['latency_p99'] * 1e3:>7.2f}ms "
            f"{e['throughput_rps']:>8.1f}"
        )
    return "\n".join(lines)


def _cmd_bench_traffic(args: argparse.Namespace, bench) -> int:
    """The ``bench --traffic`` branch: open-loop load over the service."""
    from .service.daemon import SERVICE_POOL_MODES

    if args.pool is not None and args.pool not in SERVICE_POOL_MODES:
        print(f"error: the service daemon has no {args.pool!r} pool mode; "
              f"use one of {', '.join(SERVICE_POOL_MODES)}", file=sys.stderr)
        return 2
    scenarios = bench.select_traffic_scenarios(args.filter, smoke=args.smoke)
    if not scenarios:
        print(f"error: no traffic scenario matches filter {args.filter!r}",
              file=sys.stderr)
        return 2
    run = bench.run_traffic_scenarios(
        scenarios,
        seed=args.seed,
        workers=args.workers,
        pool=args.pool,
        transport=args.transport,
    )
    print(_format_traffic_table(run))
    print(f"\ntraffic wall time: {run.campaign_seconds:.3f}s "
          f"(transport={args.transport}, workers={run.workers or 0})")
    if args.json or args.output is not None:
        path = bench.write_artifact(run, args.output)
        print(f"\nwrote {len(run.records)} records to {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """The ``report`` subcommand: artifacts -> static HTML dashboard."""
    from .obs.report import write_dashboard

    paths = list(args.artifacts)
    if not paths:
        paths = sorted(Path.cwd().glob("BENCH_*.json"))
    if not paths:
        print("error: no BENCH_*.json artifacts found (pass paths or run "
              "from a directory containing them)", file=sys.stderr)
        return 2
    missing = [p for p in paths if not Path(p).is_file()]
    if missing:
        print(f"error: artifact not found: {missing[0]}", file=sys.stderr)
        return 2
    try:
        output = write_dashboard(paths, args.output)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"wrote dashboard over {len(paths)} artifact(s) to {output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: run the daemon until EOF or interrupt."""
    import asyncio

    from .obs import configure_logging
    from .service import SolverService, run_stdio_server, start_http_server

    configure_logging(args.log_level, json_lines=args.log_json)
    solver_options = {} if args.engine is None else {"engine": args.engine}
    if args.max_pending < 1:
        print("error: --max-pending must be >= 1", file=sys.stderr)
        return 2

    fault_plan = None
    if args.faults is not None:
        from .faults import parse_faults

        try:
            fault_plan = parse_faults(args.faults)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    async def _run() -> None:
        service = SolverService(
            workers=args.workers,
            pool=args.pool,
            max_pending=args.max_pending,
            max_inflight=args.max_inflight,
            default_deadline=args.deadline,
            solver_options=solver_options,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            fault_plan=fault_plan,
        )
        async with service:
            if args.stdio:
                snapshot = await run_stdio_server(service)
                print(
                    f"served {snapshot['completed']} requests "
                    f"({snapshot['rejected']} rejected, "
                    f"{snapshot['deadline_misses']} deadline misses)",
                    file=sys.stderr,
                )
                return
            server = await start_http_server(service, args.host, args.port)
            host, port = server.sockets[0].getsockname()[:2]
            print(f"serving on http://{host}:{port} "
                  f"(pool={service.pool_mode}, workers={service.workers}, "
                  f"max-pending={service.max_pending}) -- Ctrl-C to stop",
                  file=sys.stderr)
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                server.close()
                await server.wait_closed()

    try:
        asyncio.run(_run())
    except (KeyboardInterrupt, ValueError) as exc:
        if isinstance(exc, ValueError):
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    which = args.which
    workers = args.workers
    if which == "harpoon":
        ablation = run_harpoon_ablation(workers=workers)
        print("levels   postorder   optimal   ratio   predicted_ratio")
        for i, level in enumerate(ablation.levels):
            ratio = ablation.postorder[i] / ablation.optimal[i]
            predicted = ablation.predicted_postorder[i] / ablation.predicted_optimal[i]
            print(f"{level:>6}   {ablation.postorder[i]:>9.4f}   {ablation.optimal[i]:>7.4f}"
                  f"   {ratio:>5.2f}   {predicted:>15.2f}")
        return 0

    if which in ("fig9", "table2"):
        instances = random_tree_dataset(args.scale, seed=args.seed)
    else:
        instances = assembly_tree_dataset(args.scale)

    if which in ("fig5", "table1", "fig9", "table2"):
        comparison = run_minmemory_comparison(instances, workers=workers)
        print(format_ratio_table(comparison.statistics()))
        print()
        profile = comparison.profile(non_optimal_only=which in ("fig5", "fig9"))
        print(format_profile_table(profile))
        print()
        print(ascii_profile(profile))
        return 0
    if which == "fig6":
        runtime = run_runtime_comparison(instances, workers=workers)
        profile = runtime.profile()
        print(format_profile_table(profile, taus=(1.0, 1.5, 2.0, 3.0, 5.0)))
        for alg in runtime.times:
            print(f"total {alg:<10}: {runtime.total_time(alg):.3f} s")
        return 0
    if which == "fig7":
        comparison = run_minio_heuristics(instances, workers=workers)
        print(format_profile_table(comparison.profile(), taus=(1.0, 1.5, 2.0, 3.0, 5.0)))
        return 0
    if which == "fig8":
        comparison = run_traversal_io(instances, workers=workers)
        print(format_profile_table(comparison.profile(), taus=(1.0, 1.5, 2.0, 3.0, 5.0)))
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
