"""Command-line interface.

``repro-treemem`` exposes the library's main entry points:

* ``repro-treemem minmem TREE.json`` -- MinMemory values of a stored tree
  with all three algorithms;
* ``repro-treemem minio TREE.json --memory M`` -- out-of-core I/O volumes of
  the six eviction heuristics;
* ``repro-treemem dataset --scale small --output DIR`` -- materialise the
  assembly-tree and random-tree data sets as JSON files;
* ``repro-treemem experiment fig5|fig6|fig7|fig8|fig9|table1|table2|harpoon``
  -- regenerate one of the paper's tables or figures and print it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis import (
    assembly_tree_dataset,
    ascii_profile,
    format_profile_table,
    format_ratio_table,
    random_tree_dataset,
    run_harpoon_ablation,
    run_minio_heuristics,
    run_minmemory_comparison,
    run_runtime_comparison,
    run_traversal_io,
)
from .core.liu import liu_optimal_traversal
from .core.minio import HEURISTICS, run_out_of_core
from .core.minmem import min_mem
from .core.postorder import best_postorder
from .core.serialize import load_tree, save_tree, tree_to_dict
from .core.tree import Tree

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Create the argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro-treemem",
        description="Memory-optimal tree traversals for sparse matrix factorization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_minmem = sub.add_parser("minmem", help="MinMemory values of a stored tree")
    p_minmem.add_argument("tree", type=Path, help="tree JSON file (see repro.core.serialize)")

    p_minio = sub.add_parser("minio", help="out-of-core I/O volume of a stored tree")
    p_minio.add_argument("tree", type=Path)
    p_minio.add_argument("--memory", type=float, default=None,
                         help="main memory size (default: halfway between max MemReq and optimal)")
    p_minio.add_argument("--algorithm", choices=("PostOrder", "Liu", "MinMem"), default="MinMem")

    p_dataset = sub.add_parser("dataset", help="materialise the experiment data sets")
    p_dataset.add_argument("--scale", choices=("tiny", "small", "full"), default="small")
    p_dataset.add_argument("--output", type=Path, default=Path("dataset"))
    p_dataset.add_argument("--kind", choices=("assembly", "random", "both"), default="both")

    p_exp = sub.add_parser("experiment", help="regenerate a table or figure of the paper")
    p_exp.add_argument(
        "which",
        choices=("fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2", "harpoon"),
    )
    p_exp.add_argument("--scale", choices=("tiny", "small", "full"), default="small")
    p_exp.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-treemem`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "minmem":
        return _cmd_minmem(args)
    if args.command == "minio":
        return _cmd_minio(args)
    if args.command == "dataset":
        return _cmd_dataset(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


# ----------------------------------------------------------------------
def _cmd_minmem(args: argparse.Namespace) -> int:
    tree = load_tree(args.tree)
    postorder = best_postorder(tree)
    liu = liu_optimal_traversal(tree)
    minmem = min_mem(tree)
    print(f"nodes                 : {tree.size}")
    print(f"max MemReq            : {tree.max_mem_req():.6g}")
    print(f"PostOrder memory      : {postorder.memory:.6g}")
    print(f"Liu (optimal) memory  : {liu.memory:.6g}")
    print(f"MinMem (optimal)      : {minmem.memory:.6g}")
    print(f"PostOrder / optimal   : {postorder.memory / minmem.memory:.4f}")
    return 0


def _cmd_minio(args: argparse.Namespace) -> int:
    from .analysis.experiments import traversal_for

    tree = load_tree(args.tree)
    peak, traversal = traversal_for(tree, args.algorithm)
    memory = args.memory
    if memory is None:
        memory = (tree.max_mem_req() + peak) / 2.0
    if memory < tree.max_mem_req():
        print(
            f"error: memory {memory:.6g} is below max MemReq {tree.max_mem_req():.6g}",
            file=sys.stderr,
        )
        return 1
    print(f"traversal algorithm   : {args.algorithm} (in-core peak {peak:.6g})")
    print(f"main memory           : {memory:.6g}")
    for name in HEURISTICS:
        result = run_out_of_core(tree, memory, traversal, name)
        print(f"{name:<20}: IO volume {result.io_volume:.6g} "
              f"({result.io_operations} files written)")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    args.output.mkdir(parents=True, exist_ok=True)
    count = 0
    if args.kind in ("assembly", "both"):
        for instance in assembly_tree_dataset(args.scale):
            path = args.output / (instance.name.replace("/", "_") + ".json")
            save_tree(instance.tree, path)
            count += 1
    if args.kind in ("random", "both"):
        for instance in random_tree_dataset(args.scale):
            path = args.output / (instance.name.replace("/", "_") + ".json")
            save_tree(instance.tree, path)
            count += 1
    print(f"wrote {count} trees to {args.output}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    which = args.which
    if which == "harpoon":
        ablation = run_harpoon_ablation()
        print("levels   postorder   optimal   ratio   predicted_ratio")
        for i, level in enumerate(ablation.levels):
            ratio = ablation.postorder[i] / ablation.optimal[i]
            predicted = ablation.predicted_postorder[i] / ablation.predicted_optimal[i]
            print(f"{level:>6}   {ablation.postorder[i]:>9.4f}   {ablation.optimal[i]:>7.4f}"
                  f"   {ratio:>5.2f}   {predicted:>15.2f}")
        return 0

    if which in ("fig9", "table2"):
        instances = random_tree_dataset(args.scale, seed=args.seed)
    else:
        instances = assembly_tree_dataset(args.scale)

    if which in ("fig5", "table1", "fig9", "table2"):
        comparison = run_minmemory_comparison(instances)
        print(format_ratio_table(comparison.statistics()))
        print()
        profile = comparison.profile(non_optimal_only=which in ("fig5", "fig9"))
        print(format_profile_table(profile))
        print()
        print(ascii_profile(profile))
        return 0
    if which == "fig6":
        runtime = run_runtime_comparison(instances)
        profile = runtime.profile()
        print(format_profile_table(profile, taus=(1.0, 1.5, 2.0, 3.0, 5.0)))
        for alg in runtime.times:
            print(f"total {alg:<10}: {runtime.total_time(alg):.3f} s")
        return 0
    if which == "fig7":
        comparison = run_minio_heuristics(instances)
        print(format_profile_table(comparison.profile(), taus=(1.0, 1.5, 2.0, 3.0, 5.0)))
        return 0
    if which == "fig8":
        comparison = run_traversal_io(instances)
        print(format_profile_table(comparison.profile(), taus=(1.0, 1.5, 2.0, 3.0, 5.0)))
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
