"""Summary statistics for the paper's tables.

Tables I and II of the paper summarise the memory cost of the best postorder
relative to the optimal traversal: the fraction of instances where the
postorder is not optimal, and the maximum / average / standard deviation of
the postorder-to-optimal ratio.  :func:`ratio_statistics` computes exactly
those numbers; :func:`format_ratio_table` renders them like the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["RatioStatistics", "ratio_statistics", "format_ratio_table"]


@dataclass(frozen=True)
class RatioStatistics:
    """Statistics of ``value / reference`` over a set of instances.

    Attributes mirror the rows of Tables I and II of the paper.
    """

    count: int
    non_optimal_fraction: float
    max_ratio: float
    mean_ratio: float
    std_ratio: float

    @property
    def optimal_fraction(self) -> float:
        """Fraction of instances where the method matches the reference."""
        return 1.0 - self.non_optimal_fraction


def ratio_statistics(
    values: Sequence[float],
    references: Sequence[float],
    *,
    rel_tol: float = 1e-9,
) -> RatioStatistics:
    """Compute Table-I-style statistics of ``values`` against ``references``.

    Parameters
    ----------
    values:
        Metric of the method under study (e.g. PostOrder memory).
    references:
        Optimal metric on the same instances (e.g. MinMem memory).
    rel_tol:
        Relative tolerance used to decide that a value *is* optimal.
    """
    if len(values) != len(references):
        raise ValueError("values and references must have the same length")
    if not values:
        raise ValueError("no instances given")
    ratios = []
    non_optimal = 0
    for value, ref in zip(values, references):
        if ref == 0:
            ratio = 1.0 if value == 0 else math.inf
        else:
            ratio = value / ref
        ratios.append(ratio)
        if ratio > 1.0 + rel_tol:
            non_optimal += 1
    arr = np.asarray(ratios, dtype=float)
    if np.isinf(arr).any():
        # degenerate (zero) references: the mean is infinite and the spread
        # undefined; report inf for both rather than letting numpy's
        # ``inf - inf`` warn and produce NaN
        mean_ratio = std_ratio = math.inf
    else:
        mean_ratio = float(np.mean(arr))
        std_ratio = float(np.std(arr))
    return RatioStatistics(
        count=len(values),
        non_optimal_fraction=non_optimal / len(values),
        max_ratio=float(np.max(arr)),
        mean_ratio=mean_ratio,
        std_ratio=std_ratio,
    )


def format_ratio_table(stats: RatioStatistics, method: str = "PostOrder") -> str:
    """Render statistics in the layout of Tables I and II of the paper."""
    lines = [
        f"Non optimal {method} traversals      {stats.non_optimal_fraction * 100:.1f}%",
        f"Max. {method} to opt. cost ratio      {stats.max_ratio:.2f}",
        f"Avg. {method} to opt. cost ratio      {stats.mean_ratio:.2f}",
        f"Std. Dev. of {method} to opt. ratio   {stats.std_ratio:.2f}",
        f"Number of instances                  {stats.count}",
    ]
    return "\n".join(lines)
