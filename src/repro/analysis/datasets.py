"""Data sets of task trees for the experimental campaign.

The paper uses assembly trees of 291 matrices of the University of Florida
collection, ordered with MeTiS and AMD and amalgamated with 1, 2, 4 and 16
relaxed amalgamations per node, plus a randomly reweighted copy of every tree
(Section VI-E).  Offline, this module builds the substitute campaign described
in DESIGN.md:

* :func:`matrix_suite` -- a deterministic collection of synthetic SPD
  matrices (regular grids, anisotropic stencils, random patterns, band
  matrices, small-world and power-law graph Laplacians);
* :func:`assembly_tree_dataset` -- the cross product of those matrices with
  the fill-reducing orderings and relaxed-amalgamation budgets, producing one
  weighted assembly tree per combination;
* :func:`random_tree_dataset` -- the Section VI-E reweighting of every
  assembly-tree shape (node weights in ``[1, N/500]``, edge weights in
  ``[1, N]``) plus a few purely random shapes.

Three scales are provided: ``"tiny"`` (seconds, used by the test-suite),
``"small"`` (the default for the benchmark harness, about a hundred trees)
and ``"full"`` (larger matrices, for longer runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import scipy.sparse as sp

from ..core.tree import Tree
from ..generators.random_trees import (
    random_attachment_tree,
    random_recent_attachment_tree,
    reweight_random,
)
from ..sparse.assembly import build_assembly_tree
from ..sparse.matrices import (
    anisotropic_laplacian_2d,
    banded_spd,
    graph_laplacian,
    grid_laplacian_2d,
    grid_laplacian_3d,
    random_spd,
)

__all__ = ["TreeInstance", "matrix_suite", "assembly_tree_dataset", "random_tree_dataset", "SCALES"]

SCALES = ("tiny", "small", "full")

#: minimum-degree ordering is skipped above this size (its elimination-graph
#: implementation is exact and becomes slow on large power-law graphs)
_MD_SIZE_LIMIT = 700


@dataclass(frozen=True)
class TreeInstance:
    """One tree of a data set, with provenance metadata."""

    name: str
    tree: Tree
    source: str
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return self.tree.size


def matrix_suite(scale: str = "small") -> List[Tuple[str, sp.csc_matrix]]:
    """The synthetic matrix collection for a given scale."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    if scale == "tiny":
        return [
            ("grid2d-8", grid_laplacian_2d(8)),
            ("grid3d-4", grid_laplacian_3d(4)),
            ("random-60", random_spd(60, density=0.05, seed=7)),
            ("banded-80", banded_spd(80, bandwidth=4, seed=3)),
        ]
    if scale == "small":
        return [
            ("grid2d-16", grid_laplacian_2d(16)),
            ("grid2d-24", grid_laplacian_2d(24)),
            ("grid2d-20-s9", grid_laplacian_2d(20, stencil=9)),
            ("grid3d-7", grid_laplacian_3d(7)),
            ("aniso-20", anisotropic_laplacian_2d(20, ratio=50.0)),
            ("random-300", random_spd(300, density=0.02, seed=11)),
            ("banded-500", banded_spd(500, bandwidth=5, seed=5)),
            ("ws-400", graph_laplacian("watts_strogatz", 400, seed=13, k=6, p=0.05)),
            ("ba-250", graph_laplacian("barabasi_albert", 250, seed=17, m=2)),
        ]
    return [
        ("grid2d-32", grid_laplacian_2d(32)),
        ("grid2d-48", grid_laplacian_2d(48)),
        ("grid2d-40-s9", grid_laplacian_2d(40, stencil=9)),
        ("grid3d-10", grid_laplacian_3d(10)),
        ("aniso-36", anisotropic_laplacian_2d(36, ratio=100.0)),
        ("random-800", random_spd(800, density=0.01, seed=11)),
        ("banded-1500", banded_spd(1500, bandwidth=6, seed=5)),
        ("ws-1000", graph_laplacian("watts_strogatz", 1000, seed=13, k=6, p=0.05)),
        ("ba-600", graph_laplacian("barabasi_albert", 600, seed=17, m=2)),
        ("geo-800", graph_laplacian("random_geometric", 800, seed=23)),
    ]


def _orderings_for(name: str, matrix: sp.spmatrix, scale: str) -> Sequence[str]:
    orderings = ["nested_dissection", "rcm", "natural"]
    if matrix.shape[0] <= _MD_SIZE_LIMIT:
        orderings.insert(1, "minimum_degree")
    if scale == "tiny":
        return orderings[:2]
    return orderings


def _relaxed_for(scale: str) -> Sequence[int]:
    if scale == "tiny":
        return (1,)
    if scale == "small":
        return (1, 4, 16)
    return (1, 2, 4, 16)


def assembly_tree_dataset(
    scale: str = "small",
    *,
    orderings: Optional[Sequence[str]] = None,
    relaxed: Optional[Sequence[int]] = None,
    matrices: Optional[Sequence[Tuple[str, sp.spmatrix]]] = None,
) -> List[TreeInstance]:
    """Build the assembly-tree data set (matrices x orderings x amalgamation).

    Every instance's metadata records the matrix name, the ordering, the
    relaxed-amalgamation budget and the symbolic statistics of the permuted
    matrix, so that experiment results can be sliced afterwards.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {SCALES}")
    suite = matrix_suite(scale) if matrices is None else list(matrices)
    relaxed_values = _relaxed_for(scale) if relaxed is None else tuple(relaxed)

    instances: List[TreeInstance] = []
    for matrix_name, matrix in suite:
        matrix_orderings = (
            _orderings_for(matrix_name, matrix, scale) if orderings is None else orderings
        )
        for ordering in matrix_orderings:
            for budget in relaxed_values:
                result = build_assembly_tree(matrix, ordering=ordering, relaxed=budget)
                name = f"{matrix_name}/{ordering}/r{budget}"
                instances.append(
                    TreeInstance(
                        name=name,
                        tree=result.tree,
                        source="assembly",
                        metadata={
                            "matrix": matrix_name,
                            "ordering": ordering,
                            "relaxed": budget,
                            "n": int(matrix.shape[0]),
                            "supernodes": result.tree.size,
                            "nnz_l": result.symbolic.nnz_l,
                            "fill_ratio": result.symbolic.fill_ratio,
                        },
                    )
                )
    return instances


def random_tree_dataset(
    scale: str = "small",
    seed: int = 0,
    *,
    assembly_instances: Optional[Sequence[TreeInstance]] = None,
    extra_shapes: bool = True,
) -> List[TreeInstance]:
    """Build the random-weight data set of Section VI-E.

    Every assembly-tree *shape* is kept and its weights are redrawn uniformly
    (node weights in ``[1, N/500]``, edge weights in ``[1, N]``).  A few
    purely random shapes are appended when ``extra_shapes`` is True to widen
    the family beyond assembly-tree shapes, mirroring the paper's remark that
    general trees behave very differently from assembly trees.
    """
    if assembly_instances is None:
        assembly_instances = assembly_tree_dataset(scale)
    instances: List[TreeInstance] = []
    for offset, instance in enumerate(assembly_instances):
        tree = reweight_random(instance.tree, seed=seed + offset)
        instances.append(
            TreeInstance(
                name=f"random/{instance.name}",
                tree=tree,
                source="random",
                metadata={**instance.metadata, "reweighted_from": instance.name},
            )
        )
    if extra_shapes:
        sizes = {"tiny": (40, 80), "small": (200, 400, 800), "full": (1000, 2000, 4000)}[scale]
        for i, size in enumerate(sizes):
            shallow = random_attachment_tree(size, seed=seed + 1000 + i)
            deep = random_recent_attachment_tree(size, seed=seed + 2000 + i, window=8)
            instances.append(
                TreeInstance(
                    name=f"random/attachment-{size}",
                    tree=reweight_random(shallow, seed=seed + 3000 + i),
                    source="random",
                    metadata={"shape": "uniform_attachment", "n": size},
                )
            )
            instances.append(
                TreeInstance(
                    name=f"random/deep-{size}",
                    tree=reweight_random(deep, seed=seed + 4000 + i),
                    source="random",
                    metadata={"shape": "recent_attachment", "n": size},
                )
            )
    return instances
