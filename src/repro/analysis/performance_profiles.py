"""Performance profiles (Dolan & Moré, 2002).

The paper evaluates every algorithm and heuristic with performance profiles:
for each instance the metric of a method is divided by the best metric
achieved by any method on that instance, and the profile of a method is the
cumulative distribution of those ratios -- ``rho_m(tau)`` is the fraction of
instances on which method ``m`` is within a factor ``tau`` of the best.
Higher curves are better; ``rho_m(1)`` is the fraction of instances where the
method is (one of) the best.

The profiles are returned as plain data (methods, evaluation points, curves)
so they can be printed as CSV, rendered as ASCII plots in a terminal, or fed
to any plotting library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["PerformanceProfile", "performance_profile", "format_profile_table", "ascii_profile"]


@dataclass(frozen=True)
class PerformanceProfile:
    """A set of Dolan--Moré curves over a common list of instances.

    Attributes
    ----------
    methods:
        Method names, in input order.
    taus:
        Evaluation points (``tau >= 1``).
    curves:
        ``curves[m][k]`` is the fraction of instances where method ``m`` is
        within ``taus[k]`` of the best method.
    ratios:
        Per-method performance ratios (one entry per instance; ``inf`` when
        the method failed or the best value is zero while the method's is
        not).
    """

    methods: Tuple[str, ...]
    taus: Tuple[float, ...]
    curves: Dict[str, Tuple[float, ...]]
    ratios: Dict[str, Tuple[float, ...]]

    def fraction_best(self, method: str) -> float:
        """``rho_m(1)``: fraction of instances where ``method`` is best."""
        return self.value(method, 1.0)

    def value(self, method: str, tau: float) -> float:
        """Fraction of instances where ``method`` is within ``tau`` of best."""
        ratios = self.ratios[method]
        if not ratios:
            return 0.0
        count = sum(1 for r in ratios if r <= tau + 1e-12)
        return count / len(ratios)

    def area(self, method: str, tau_max: Optional[float] = None) -> float:
        """Area under the profile curve up to ``tau_max`` (higher is better)."""
        taus = np.asarray(self.taus)
        curve = np.asarray(self.curves[method])
        if tau_max is not None:
            mask = taus <= tau_max
            taus, curve = taus[mask], curve[mask]
        if taus.size < 2:
            return float(curve[0]) if curve.size else 0.0
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(curve, taus) / (taus[-1] - taus[0]))


def performance_profile(
    results: Mapping[str, Sequence[float]],
    taus: Optional[Sequence[float]] = None,
    n_points: int = 200,
) -> PerformanceProfile:
    """Build the Dolan--Moré performance profile of a set of methods.

    Parameters
    ----------
    results:
        Mapping ``method -> metric values`` (one value per instance; all
        methods must cover the same instances in the same order).  Lower is
        better; ``math.inf`` marks a failure.
    taus:
        Evaluation points; by default 200 points spanning ``[1, max ratio]``.
    n_points:
        Number of automatic evaluation points when ``taus`` is None.

    Notes
    -----
    When the best value on an instance is 0 (e.g. an I/O volume of zero), a
    method with value 0 gets ratio 1 and any other method gets ratio ``inf``,
    which follows the usual convention for profiles of non-negative metrics.
    """
    methods = tuple(results)
    if not methods:
        raise ValueError("no methods given")
    lengths = {len(results[m]) for m in methods}
    if len(lengths) != 1:
        raise ValueError("all methods must have the same number of instances")
    n_instances = lengths.pop()
    if n_instances == 0:
        raise ValueError("no instances given")

    values = {m: [float(v) for v in results[m]] for m in methods}
    ratios: Dict[str, List[float]] = {m: [] for m in methods}
    for i in range(n_instances):
        instance_values = [values[m][i] for m in methods]
        best = min(instance_values)
        for m in methods:
            v = values[m][i]
            if math.isinf(v):
                ratios[m].append(math.inf)
            elif best <= 0.0:
                ratios[m].append(1.0 if v <= 0.0 else math.inf)
            else:
                ratios[m].append(v / best)

    if taus is None:
        finite = [r for m in methods for r in ratios[m] if not math.isinf(r)]
        upper = max(finite) if finite else 1.0
        upper = max(upper, 1.0 + 1e-9)
        taus = np.linspace(1.0, upper, n_points)
    taus = tuple(float(t) for t in taus)

    curves: Dict[str, Tuple[float, ...]] = {}
    for m in methods:
        rs = sorted(r for r in ratios[m])
        curve = []
        for tau in taus:
            count = 0
            for r in rs:
                if r <= tau + 1e-12:
                    count += 1
                else:
                    break
            curve.append(count / n_instances)
        curves[m] = tuple(curve)
    return PerformanceProfile(
        methods=methods,
        taus=taus,
        curves=curves,
        ratios={m: tuple(ratios[m]) for m in methods},
    )


def format_profile_table(
    profile: PerformanceProfile, taus: Sequence[float] = (1.0, 1.05, 1.1, 1.5, 2.0, 5.0)
) -> str:
    """Render a profile as a plain-text table ``method x tau``."""
    header = "method".ljust(28) + "".join(f"tau={t:<8g}" for t in taus)
    lines = [header, "-" * len(header)]
    for m in profile.methods:
        row = m.ljust(28) + "".join(f"{profile.value(m, t):<12.3f}" for t in taus)
        lines.append(row)
    return "\n".join(lines)


def ascii_profile(
    profile: PerformanceProfile, width: int = 60, height: int = 12, tau_max: Optional[float] = None
) -> str:
    """Tiny ASCII rendering of the profile curves (one symbol per method)."""
    symbols = "#*+ox@%&"
    taus = np.asarray(profile.taus)
    if tau_max is not None:
        mask = taus <= tau_max
    else:
        mask = np.ones_like(taus, dtype=bool)
    taus = taus[mask]
    if taus.size == 0:
        return "(empty profile)"
    grid = [[" "] * width for _ in range(height)]
    for idx, method in enumerate(profile.methods):
        curve = np.asarray(profile.curves[method])[mask]
        sym = symbols[idx % len(symbols)]
        for col in range(width):
            tau = taus[0] + (taus[-1] - taus[0]) * col / max(width - 1, 1)
            value = float(np.interp(tau, taus, curve))
            row = height - 1 - int(round(value * (height - 1)))
            grid[row][col] = sym
    legend = "  ".join(
        f"{symbols[i % len(symbols)]}={m}" for i, m in enumerate(profile.methods)
    )
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    axis = f"tau: {taus[0]:.2f} .. {taus[-1]:.2f}"
    return f"{body}\n{axis}\n{legend}"
