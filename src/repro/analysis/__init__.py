"""Evaluation methodology: performance profiles, statistics, data sets, drivers."""

from .datasets import (
    SCALES,
    TreeInstance,
    assembly_tree_dataset,
    matrix_suite,
    random_tree_dataset,
)
from .experiments import (
    MINMEMORY_ALGORITHMS,
    HarpoonAblation,
    MinIOComparison,
    MinMemoryComparison,
    RuntimeComparison,
    run_harpoon_ablation,
    run_minio_heuristics,
    run_minmemory_comparison,
    run_runtime_comparison,
    run_traversal_io,
    traversal_for,
)
from .performance_profiles import (
    PerformanceProfile,
    ascii_profile,
    format_profile_table,
    performance_profile,
)
from .statistics import RatioStatistics, format_ratio_table, ratio_statistics

__all__ = [
    "SCALES",
    "TreeInstance",
    "matrix_suite",
    "assembly_tree_dataset",
    "random_tree_dataset",
    "MINMEMORY_ALGORITHMS",
    "traversal_for",
    "MinMemoryComparison",
    "run_minmemory_comparison",
    "RuntimeComparison",
    "run_runtime_comparison",
    "MinIOComparison",
    "run_minio_heuristics",
    "run_traversal_io",
    "HarpoonAblation",
    "run_harpoon_ablation",
    "PerformanceProfile",
    "performance_profile",
    "format_profile_table",
    "ascii_profile",
    "RatioStatistics",
    "ratio_statistics",
    "format_ratio_table",
]
