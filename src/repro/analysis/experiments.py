"""Experiment drivers regenerating the paper's tables and figures.

Every driver consumes a list of :class:`~repro.analysis.datasets.TreeInstance`
and returns a small result object holding the per-instance raw data plus
helpers to produce the paper's artefacts:

* :func:`run_minmemory_comparison` -- PostOrder versus optimal memory
  (Figure 5 + Table I on assembly trees, Figure 9 + Table II on random trees);
* :func:`run_runtime_comparison`   -- run times of PostOrder, Liu and MinMem
  (Figure 6);
* :func:`run_minio_heuristics`     -- I/O volume of the six eviction
  heuristics on the traversals of one algorithm (Figure 7);
* :func:`run_traversal_io`         -- I/O volume of the three traversal
  algorithms combined with one heuristic (Figure 8);
* :func:`run_harpoon_ablation`     -- the Theorem 1 worst-case family.

All drivers dispatch through the :mod:`repro.solvers` registry and batch the
per-instance work with :func:`repro.solvers.solve_many`; pass ``workers=N``
to fan a data set across ``N`` worker processes (the default ``None`` runs
serially and produces identical results).

The drivers are deliberately free of any printing; the benchmark harness and
the CLI format their outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.minio import HEURISTICS
from ..core.traversal import Traversal
from ..core.tree import Tree
from ..generators.harpoon import (
    iterated_harpoon_tree,
    optimal_memory_bound,
    postorder_memory_bound,
)
from ..solvers import get_solver, solve, solve_many
from .datasets import TreeInstance
from .performance_profiles import PerformanceProfile, performance_profile
from .statistics import RatioStatistics, ratio_statistics

__all__ = [
    "MINMEMORY_ALGORITHMS",
    "traversal_for",
    "MinMemoryComparison",
    "run_minmemory_comparison",
    "RuntimeComparison",
    "run_runtime_comparison",
    "MinIOComparison",
    "run_minio_heuristics",
    "run_traversal_io",
    "HarpoonAblation",
    "run_harpoon_ablation",
]


def _legacy_solver(name: str) -> Callable[[Tree], Tuple[float, Traversal]]:
    def run(tree: Tree) -> Tuple[float, Traversal]:
        report = solve(tree, name)
        return report.peak_memory, report.traversal

    return run


#: name -> callable returning (memory, traversal); kept for backward
#: compatibility, now thin shims over :func:`repro.solvers.solve`
MINMEMORY_ALGORITHMS: Dict[str, Callable[[Tree], Tuple[float, Traversal]]] = {
    "PostOrder": _legacy_solver("postorder"),
    "Liu": _legacy_solver("liu"),
    "MinMem": _legacy_solver("minmem"),
}


def traversal_for(tree: Tree, algorithm: str) -> Tuple[float, Traversal]:
    """Memory and traversal computed by one registered MinMemory algorithm.

    ``algorithm`` may be any registry name or alias (``"PostOrder"``,
    ``"minmem"``, ...); unknown names raise
    :class:`~repro.solvers.UnknownSolverError` (a :class:`ValueError`).
    """
    report = solve(tree, algorithm)
    return report.peak_memory, report.traversal


# ----------------------------------------------------------------------
# Figure 5 / Table I / Figure 9 / Table II
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MinMemoryComparison:
    """PostOrder versus optimal memory on a set of trees."""

    names: Tuple[str, ...]
    postorder: Tuple[float, ...]
    optimal: Tuple[float, ...]

    def statistics(self) -> RatioStatistics:
        """Table I / Table II statistics."""
        return ratio_statistics(self.postorder, self.optimal)

    def profile(self, non_optimal_only: bool = True) -> PerformanceProfile:
        """Figure 5 / Figure 9 performance profile.

        The paper's Figure 5 only plots the instances where PostOrder is not
        optimal; set ``non_optimal_only=False`` to keep every instance.
        """
        post, opt = list(self.postorder), list(self.optimal)
        if non_optimal_only:
            keep = [i for i, (p, o) in enumerate(zip(post, opt)) if p > o * (1 + 1e-9)]
            if keep:
                post = [post[i] for i in keep]
                opt = [opt[i] for i in keep]
        return performance_profile({"Optimal": opt, "PostOrder": post})

    def rows(self) -> List[Dict[str, object]]:
        """Raw per-instance rows (name, postorder, optimal, ratio)."""
        return [
            {
                "instance": name,
                "postorder": post,
                "optimal": opt,
                "ratio": post / opt if opt else 1.0,
            }
            for name, post, opt in zip(self.names, self.postorder, self.optimal)
        ]


def run_minmemory_comparison(
    instances: Sequence[TreeInstance],
    *,
    workers: Optional[int] = None,
) -> MinMemoryComparison:
    """Compute PostOrder and optimal (MinMem) memory for every instance."""
    batch = solve_many(
        (instance.tree for instance in instances),
        ("postorder", "minmem"),
        workers=workers,
    )
    return MinMemoryComparison(
        names=tuple(instance.name for instance in instances),
        postorder=tuple(reports["postorder"].peak_memory for reports in batch),
        optimal=tuple(reports["minmem"].peak_memory for reports in batch),
    )


# ----------------------------------------------------------------------
# Figure 6 -- run times
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuntimeComparison:
    """Wall-clock run times of the MinMemory algorithms."""

    names: Tuple[str, ...]
    times: Dict[str, Tuple[float, ...]]
    memories: Dict[str, Tuple[float, ...]]

    def profile(self) -> PerformanceProfile:
        """Figure 6 performance profile (run-time ratios)."""
        return performance_profile({alg: list(vals) for alg, vals in self.times.items()})

    def total_time(self, algorithm: str) -> float:
        """Total wall-clock time of one algorithm over the data set."""
        return sum(self.times[algorithm])


def run_runtime_comparison(
    instances: Sequence[TreeInstance],
    algorithms: Sequence[str] = ("PostOrder", "Liu", "MinMem"),
    repeats: int = 1,
    *,
    workers: Optional[int] = None,
) -> RuntimeComparison:
    """Time every MinMemory algorithm on every instance (best of ``repeats``).

    Results are keyed by the names given in ``algorithms`` (aliases included),
    matching the historical behaviour.  Wall times come from the per-solve
    measurement inside :class:`~repro.solvers.SolveReport`, so they remain
    meaningful when the batch runs on worker processes.
    """
    canonical = {alg: get_solver(alg).name for alg in algorithms}
    trees = [instance.tree for instance in instances]
    times: Dict[str, List[float]] = {alg: [float("inf")] * len(trees) for alg in algorithms}
    memories: Dict[str, List[float]] = {alg: [float("nan")] * len(trees) for alg in algorithms}
    for _ in range(max(1, repeats)):
        batch = solve_many(trees, tuple(canonical.values()), workers=workers)
        for idx, reports in enumerate(batch):
            for alg in algorithms:
                report = reports[canonical[alg]]
                times[alg][idx] = min(times[alg][idx], report.wall_time)
                memories[alg][idx] = report.peak_memory
    return RuntimeComparison(
        names=tuple(instance.name for instance in instances),
        times={alg: tuple(vals) for alg, vals in times.items()},
        memories={alg: tuple(vals) for alg, vals in memories.items()},
    )


# ----------------------------------------------------------------------
# Figures 7 and 8 -- MinIO experiments
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MinIOComparison:
    """I/O volumes of several methods over (tree, memory) cases."""

    cases: Tuple[str, ...]
    io_volumes: Dict[str, Tuple[float, ...]]

    def profile(self) -> PerformanceProfile:
        return performance_profile({m: list(v) for m, v in self.io_volumes.items()})

    def total_io(self, method: str) -> float:
        return sum(self.io_volumes[method])


def _memory_grid(tree: Tree, peak: float, fractions: Sequence[float]) -> List[float]:
    """Memory values between ``max MemReq`` and ``peak`` (the paper's sweep)."""
    lower = tree.max_mem_req()
    upper = max(peak, lower)
    return [lower + frac * (upper - lower) for frac in fractions]


def run_minio_heuristics(
    instances: Sequence[TreeInstance],
    *,
    traversal_algorithm: str = "MinMem",
    heuristics: Sequence[str] = tuple(HEURISTICS),
    memory_fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    workers: Optional[int] = None,
) -> MinIOComparison:
    """Figure 7: compare the eviction heuristics on one algorithm's traversals.

    For every tree, the traversal of ``traversal_algorithm`` is computed once
    (batched over the instances via :func:`repro.solvers.solve_many`) and
    replayed with every heuristic for several main-memory sizes between
    ``max MemReq`` and the traversal's in-core peak.
    """
    canonical = get_solver(traversal_algorithm).name
    base = solve_many(
        (instance.tree for instance in instances), (canonical,), workers=workers
    )
    cases: List[str] = []
    io: Dict[str, List[float]] = {h: [] for h in heuristics}
    for instance, reports in zip(instances, base):
        report = reports[canonical]
        for memory in _memory_grid(instance.tree, report.peak_memory, memory_fractions):
            cases.append(f"{instance.name}@M={memory:.6g}")
            for heuristic in heuristics:
                run = solve(
                    instance.tree,
                    "minio",
                    memory=memory,
                    heuristic=heuristic,
                    traversal=report.traversal,
                    in_core_peak=report.peak_memory,
                )
                io[heuristic].append(run.io_volume)
    return MinIOComparison(
        cases=tuple(cases), io_volumes={h: tuple(v) for h, v in io.items()}
    )


def run_traversal_io(
    instances: Sequence[TreeInstance],
    *,
    algorithms: Sequence[str] = ("PostOrder", "Liu", "MinMem"),
    heuristic: str = "first_fit",
    memory_fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
    workers: Optional[int] = None,
) -> MinIOComparison:
    """Figure 8: compare traversal algorithms under a fixed eviction policy.

    The memory sweep of every tree is shared by all algorithms (from
    ``max MemReq`` to the *optimal* in-core memory), so the comparison is
    fair even though the traversals have different in-core peaks.
    """
    canonical = {alg: get_solver(alg).name for alg in algorithms}
    base = solve_many(
        (instance.tree for instance in instances),
        tuple(canonical.values()),
        workers=workers,
    )
    cases: List[str] = []
    io: Dict[str, List[float]] = {f"{alg} + {heuristic}": [] for alg in algorithms}
    for instance, reports in zip(instances, base):
        optimal_peak = min(report.peak_memory for report in reports.values())
        for memory in _memory_grid(instance.tree, optimal_peak, memory_fractions):
            cases.append(f"{instance.name}@M={memory:.6g}")
            for alg in algorithms:
                run = solve(
                    instance.tree,
                    "minio",
                    memory=memory,
                    heuristic=heuristic,
                    traversal=reports[canonical[alg]].traversal,
                    in_core_peak=reports[canonical[alg]].peak_memory,
                )
                io[f"{alg} + {heuristic}"].append(run.io_volume)
    return MinIOComparison(
        cases=tuple(cases), io_volumes={m: tuple(v) for m, v in io.items()}
    )


# ----------------------------------------------------------------------
# Theorem 1 ablation -- iterated harpoons
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HarpoonAblation:
    """Postorder/optimal memory ratios on the iterated-harpoon family."""

    levels: Tuple[int, ...]
    postorder: Tuple[float, ...]
    optimal: Tuple[float, ...]
    predicted_postorder: Tuple[float, ...]
    predicted_optimal: Tuple[float, ...]

    def ratios(self) -> Tuple[float, ...]:
        return tuple(p / o for p, o in zip(self.postorder, self.optimal))


def run_harpoon_ablation(
    branches: int = 4,
    levels: Sequence[int] = (1, 2, 3, 4, 5),
    memory: float = 1.0,
    epsilon: float = 0.01,
    *,
    workers: Optional[int] = None,
) -> HarpoonAblation:
    """Measure how the PostOrder/optimal ratio grows with the nesting level."""
    trees = [
        iterated_harpoon_tree(branches, level, memory=memory, epsilon=epsilon)
        for level in levels
    ]
    batch = solve_many(trees, ("postorder", "minmem"), workers=workers)
    return HarpoonAblation(
        levels=tuple(levels),
        postorder=tuple(reports["postorder"].peak_memory for reports in batch),
        optimal=tuple(reports["minmem"].peak_memory for reports in batch),
        predicted_postorder=tuple(
            postorder_memory_bound(branches, level, memory, epsilon) for level in levels
        ),
        predicted_optimal=tuple(
            optimal_memory_bound(branches, level, memory, epsilon) for level in levels
        ),
    )
