"""Experiment drivers regenerating the paper's tables and figures.

Every driver consumes a list of :class:`~repro.analysis.datasets.TreeInstance`
and returns a small result object holding the per-instance raw data plus
helpers to produce the paper's artefacts:

* :func:`run_minmemory_comparison` -- PostOrder versus optimal memory
  (Figure 5 + Table I on assembly trees, Figure 9 + Table II on random trees);
* :func:`run_runtime_comparison`   -- run times of PostOrder, Liu and MinMem
  (Figure 6);
* :func:`run_minio_heuristics`     -- I/O volume of the six eviction
  heuristics on the traversals of one algorithm (Figure 7);
* :func:`run_traversal_io`         -- I/O volume of the three traversal
  algorithms combined with one heuristic (Figure 8);
* :func:`run_harpoon_ablation`     -- the Theorem 1 worst-case family.

The drivers are deliberately free of any printing; the benchmark harness and
the CLI format their outputs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.liu import liu_optimal_traversal
from ..core.minio import HEURISTICS, run_out_of_core
from ..core.minmem import min_mem
from ..core.postorder import best_postorder
from ..core.traversal import Traversal
from ..core.tree import Tree
from ..generators.harpoon import (
    iterated_harpoon_tree,
    optimal_memory_bound,
    postorder_memory_bound,
)
from .datasets import TreeInstance
from .performance_profiles import PerformanceProfile, performance_profile
from .statistics import RatioStatistics, ratio_statistics

__all__ = [
    "MINMEMORY_ALGORITHMS",
    "traversal_for",
    "MinMemoryComparison",
    "run_minmemory_comparison",
    "RuntimeComparison",
    "run_runtime_comparison",
    "MinIOComparison",
    "run_minio_heuristics",
    "run_traversal_io",
    "HarpoonAblation",
    "run_harpoon_ablation",
]


def _postorder_solver(tree: Tree) -> Tuple[float, Traversal]:
    result = best_postorder(tree)
    return result.memory, result.traversal


def _liu_solver(tree: Tree) -> Tuple[float, Traversal]:
    result = liu_optimal_traversal(tree)
    return result.memory, result.traversal


def _minmem_solver(tree: Tree) -> Tuple[float, Traversal]:
    result = min_mem(tree)
    return result.memory, result.traversal


#: name -> callable returning (memory, traversal) for each MinMemory algorithm
MINMEMORY_ALGORITHMS: Dict[str, Callable[[Tree], Tuple[float, Traversal]]] = {
    "PostOrder": _postorder_solver,
    "Liu": _liu_solver,
    "MinMem": _minmem_solver,
}


def traversal_for(tree: Tree, algorithm: str) -> Tuple[float, Traversal]:
    """Memory and traversal computed by one of the MinMemory algorithms."""
    try:
        solver = MINMEMORY_ALGORITHMS[algorithm]
    except KeyError as exc:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(MINMEMORY_ALGORITHMS)}"
        ) from exc
    return solver(tree)


# ----------------------------------------------------------------------
# Figure 5 / Table I / Figure 9 / Table II
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MinMemoryComparison:
    """PostOrder versus optimal memory on a set of trees."""

    names: Tuple[str, ...]
    postorder: Tuple[float, ...]
    optimal: Tuple[float, ...]

    def statistics(self) -> RatioStatistics:
        """Table I / Table II statistics."""
        return ratio_statistics(self.postorder, self.optimal)

    def profile(self, non_optimal_only: bool = True) -> PerformanceProfile:
        """Figure 5 / Figure 9 performance profile.

        The paper's Figure 5 only plots the instances where PostOrder is not
        optimal; set ``non_optimal_only=False`` to keep every instance.
        """
        post, opt = list(self.postorder), list(self.optimal)
        if non_optimal_only:
            keep = [i for i, (p, o) in enumerate(zip(post, opt)) if p > o * (1 + 1e-9)]
            if keep:
                post = [post[i] for i in keep]
                opt = [opt[i] for i in keep]
        return performance_profile({"Optimal": opt, "PostOrder": post})

    def rows(self) -> List[Dict[str, object]]:
        """Raw per-instance rows (name, postorder, optimal, ratio)."""
        return [
            {
                "instance": name,
                "postorder": post,
                "optimal": opt,
                "ratio": post / opt if opt else 1.0,
            }
            for name, post, opt in zip(self.names, self.postorder, self.optimal)
        ]


def run_minmemory_comparison(instances: Sequence[TreeInstance]) -> MinMemoryComparison:
    """Compute PostOrder and optimal (MinMem) memory for every instance."""
    names, postorder, optimal = [], [], []
    for instance in instances:
        names.append(instance.name)
        postorder.append(best_postorder(instance.tree).memory)
        optimal.append(min_mem(instance.tree).memory)
    return MinMemoryComparison(tuple(names), tuple(postorder), tuple(optimal))


# ----------------------------------------------------------------------
# Figure 6 -- run times
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuntimeComparison:
    """Wall-clock run times of the MinMemory algorithms."""

    names: Tuple[str, ...]
    times: Dict[str, Tuple[float, ...]]
    memories: Dict[str, Tuple[float, ...]]

    def profile(self) -> PerformanceProfile:
        """Figure 6 performance profile (run-time ratios)."""
        return performance_profile({alg: list(vals) for alg, vals in self.times.items()})

    def total_time(self, algorithm: str) -> float:
        """Total wall-clock time of one algorithm over the data set."""
        return sum(self.times[algorithm])


def run_runtime_comparison(
    instances: Sequence[TreeInstance],
    algorithms: Sequence[str] = ("PostOrder", "Liu", "MinMem"),
    repeats: int = 1,
) -> RuntimeComparison:
    """Time every MinMemory algorithm on every instance (best of ``repeats``)."""
    names = tuple(instance.name for instance in instances)
    times: Dict[str, List[float]] = {alg: [] for alg in algorithms}
    memories: Dict[str, List[float]] = {alg: [] for alg in algorithms}
    for instance in instances:
        for alg in algorithms:
            solver = MINMEMORY_ALGORITHMS[alg]
            best_time = float("inf")
            memory = float("nan")
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                memory, _traversal = solver(instance.tree)
                best_time = min(best_time, time.perf_counter() - start)
            times[alg].append(best_time)
            memories[alg].append(memory)
    return RuntimeComparison(
        names=names,
        times={alg: tuple(vals) for alg, vals in times.items()},
        memories={alg: tuple(vals) for alg, vals in memories.items()},
    )


# ----------------------------------------------------------------------
# Figures 7 and 8 -- MinIO experiments
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MinIOComparison:
    """I/O volumes of several methods over (tree, memory) cases."""

    cases: Tuple[str, ...]
    io_volumes: Dict[str, Tuple[float, ...]]

    def profile(self) -> PerformanceProfile:
        return performance_profile({m: list(v) for m, v in self.io_volumes.items()})

    def total_io(self, method: str) -> float:
        return sum(self.io_volumes[method])


def _memory_grid(tree: Tree, peak: float, fractions: Sequence[float]) -> List[float]:
    """Memory values between ``max MemReq`` and ``peak`` (the paper's sweep)."""
    lower = tree.max_mem_req()
    upper = max(peak, lower)
    return [lower + frac * (upper - lower) for frac in fractions]


def run_minio_heuristics(
    instances: Sequence[TreeInstance],
    *,
    traversal_algorithm: str = "MinMem",
    heuristics: Sequence[str] = tuple(HEURISTICS),
    memory_fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
) -> MinIOComparison:
    """Figure 7: compare the eviction heuristics on one algorithm's traversals.

    For every tree, the traversal of ``traversal_algorithm`` is computed once
    and replayed with every heuristic for several main-memory sizes between
    ``max MemReq`` and the traversal's in-core peak.
    """
    cases: List[str] = []
    io: Dict[str, List[float]] = {h: [] for h in heuristics}
    for instance in instances:
        peak, traversal = traversal_for(instance.tree, traversal_algorithm)
        for memory in _memory_grid(instance.tree, peak, memory_fractions):
            cases.append(f"{instance.name}@M={memory:.6g}")
            for heuristic in heuristics:
                result = run_out_of_core(instance.tree, memory, traversal, heuristic)
                io[heuristic].append(result.io_volume)
    return MinIOComparison(
        cases=tuple(cases), io_volumes={h: tuple(v) for h, v in io.items()}
    )


def run_traversal_io(
    instances: Sequence[TreeInstance],
    *,
    algorithms: Sequence[str] = ("PostOrder", "Liu", "MinMem"),
    heuristic: str = "first_fit",
    memory_fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8),
) -> MinIOComparison:
    """Figure 8: compare traversal algorithms under a fixed eviction policy.

    The memory sweep of every tree is shared by all algorithms (from
    ``max MemReq`` to the *optimal* in-core memory), so the comparison is
    fair even though the traversals have different in-core peaks.
    """
    cases: List[str] = []
    io: Dict[str, List[float]] = {f"{alg} + {heuristic}": [] for alg in algorithms}
    for instance in instances:
        traversals = {alg: traversal_for(instance.tree, alg) for alg in algorithms}
        optimal_peak = min(peak for peak, _ in traversals.values())
        for memory in _memory_grid(instance.tree, optimal_peak, memory_fractions):
            cases.append(f"{instance.name}@M={memory:.6g}")
            for alg in algorithms:
                _, traversal = traversals[alg]
                result = run_out_of_core(instance.tree, memory, traversal, heuristic)
                io[f"{alg} + {heuristic}"].append(result.io_volume)
    return MinIOComparison(
        cases=tuple(cases), io_volumes={m: tuple(v) for m, v in io.items()}
    )


# ----------------------------------------------------------------------
# Theorem 1 ablation -- iterated harpoons
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HarpoonAblation:
    """Postorder/optimal memory ratios on the iterated-harpoon family."""

    levels: Tuple[int, ...]
    postorder: Tuple[float, ...]
    optimal: Tuple[float, ...]
    predicted_postorder: Tuple[float, ...]
    predicted_optimal: Tuple[float, ...]

    def ratios(self) -> Tuple[float, ...]:
        return tuple(p / o for p, o in zip(self.postorder, self.optimal))


def run_harpoon_ablation(
    branches: int = 4,
    levels: Sequence[int] = (1, 2, 3, 4, 5),
    memory: float = 1.0,
    epsilon: float = 0.01,
) -> HarpoonAblation:
    """Measure how the PostOrder/optimal ratio grows with the nesting level."""
    post, opt, pred_post, pred_opt = [], [], [], []
    for level in levels:
        tree = iterated_harpoon_tree(branches, level, memory=memory, epsilon=epsilon)
        post.append(best_postorder(tree).memory)
        opt.append(min_mem(tree).memory)
        pred_post.append(postorder_memory_bound(branches, level, memory, epsilon))
        pred_opt.append(optimal_memory_bound(branches, level, memory, epsilon))
    return HarpoonAblation(
        levels=tuple(levels),
        postorder=tuple(post),
        optimal=tuple(opt),
        predicted_postorder=tuple(pred_post),
        predicted_optimal=tuple(pred_opt),
    )
