"""Harpoon graphs: the worst-case and hardness constructions of the paper.

Two families are provided:

* :func:`harpoon_tree` and :func:`iterated_harpoon_tree` -- the construction
  of Theorem 1 (Figure 3).  A single-level harpoon has a root with a light
  file ``epsilon`` and ``b`` branches, each a chain ``M/b -> epsilon -> M``.
  A postorder traversal must keep the untouched heavy ``M/b`` files of the
  other branches while it finishes one branch, so it needs
  ``M + eps + (b-1) M/b`` memory, whereas the optimal traversal first turns
  every heavy ``M/b`` file into a light ``epsilon`` file and only then
  descends, needing only ``M + b*eps``.  Iterating the construction -- every
  branch tip of level ``k < L`` becomes the root of a level-``k+1`` harpoon,
  and only the deepest tips carry the heavy ``M`` files -- makes the
  postorder/optimal ratio arbitrarily large:

  ``M_PO = M + eps + L (b-1) M/b``   vs   ``M_min = M + eps + L (b-1) eps``.

* :func:`two_partition_harpoon` -- the reduction of Theorem 2 (Figure 4).
  Given the integers of a 2-Partition instance, the tree admits an
  out-of-core execution with at most ``S/2`` I/O and ``M = 2S`` memory if and
  only if the instance has a solution, which makes MinIO NP-complete.

Both generators produce the top-down (out-tree) reading used in the paper's
figures; the trees can be handed directly to every algorithm of
:mod:`repro.core`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.tree import Tree

__all__ = [
    "harpoon_tree",
    "iterated_harpoon_tree",
    "two_partition_harpoon",
    "postorder_memory_bound",
    "optimal_memory_bound",
    "postorder_vs_optimal_ratio_bound",
]


def harpoon_tree(branches: int, memory: float = 1.0, epsilon: float = 0.01) -> Tree:
    """Single-level harpoon of Theorem 1 (Figure 3a)."""
    return iterated_harpoon_tree(branches, levels=1, memory=memory, epsilon=epsilon)


def iterated_harpoon_tree(
    branches: int, levels: int, memory: float = 1.0, epsilon: float = 0.01
) -> Tree:
    """Iterated harpoon of Theorem 1 (Figure 3b).

    Parameters
    ----------
    branches:
        Number of branches ``b`` per level (at least 2 for the theorem).
    levels:
        Number of nested levels ``L``.
    memory:
        The parameter ``M``: heavy branch files have size ``M / b`` and the
        deepest tips size ``M``.
    epsilon:
        Size of the light files.

    Returns
    -------
    Tree
        ``1 + 3 b (b^L - 1) / (b - 1)`` nodes (for ``b > 1``); all execution
        files are zero.  The best postorder needs
        ``M + eps + L (b-1) M / b`` memory while the optimal traversal needs
        only ``M + eps + L (b-1) eps``.
    """
    if branches < 1:
        raise ValueError("need at least one branch")
    if levels < 1:
        raise ValueError("need at least one level")
    # emit the flat parent-array form and bulk-build (the iterated harpoon
    # of the large benchmark scenarios has ~3 b^L nodes)
    ids: List[str] = ["root"]
    parents: List[int] = [-1]
    f: List[float] = [epsilon]
    heavy_size = memory / branches
    frontier: List[Tuple[int, str]] = [(0, "root")]
    for level in range(1, levels + 1):
        last = level == levels
        tip_size = memory if last else epsilon
        next_frontier: List[Tuple[int, str]] = []
        for anchor_idx, anchor in frontier:
            for b in range(branches):
                stem = f"{anchor}/{level}.{b}"
                ids.extend((stem + "/heavy", stem + "/light", stem + "/tip"))
                heavy_idx = len(parents)
                parents.extend((anchor_idx, heavy_idx, heavy_idx + 1))
                f.extend((heavy_size, epsilon, tip_size))
                next_frontier.append((heavy_idx + 2, stem + "/tip"))
        frontier = next_frontier
    tree = Tree.from_parents(parents, f, [0.0] * len(parents), ids=ids)
    tree.validate()
    return tree


def postorder_memory_bound(
    branches: int, levels: int, memory: float = 1.0, epsilon: float = 0.01
) -> float:
    """Memory needed by the best postorder on the iterated harpoon
    (``M + eps + L (b-1) M / b``, Theorem 1)."""
    return memory + epsilon + levels * (branches - 1) * memory / branches


def optimal_memory_bound(
    branches: int, levels: int, memory: float = 1.0, epsilon: float = 0.01
) -> float:
    """Memory needed by the optimal traversal on the iterated harpoon
    (``M + eps + L (b-1) eps``, Theorem 1)."""
    return memory + epsilon + levels * (branches - 1) * epsilon


def postorder_vs_optimal_ratio_bound(
    branches: int, levels: int, memory: float = 1.0, epsilon: float = 0.01
) -> float:
    """Postorder/optimal memory ratio forced by the iterated harpoon."""
    return postorder_memory_bound(branches, levels, memory, epsilon) / optimal_memory_bound(
        branches, levels, memory, epsilon
    )


def two_partition_harpoon(values: Sequence[float]) -> Tree:
    """NP-hardness instance of Theorem 2 (Figure 4).

    Parameters
    ----------
    values:
        The integers ``a_1 .. a_n`` of a 2-Partition instance with total
        ``S = sum(values)``.

    Returns
    -------
    Tree
        The harpoon with root ``T_in`` (file 0, ``MemReq = 2S`` through its
        children), ``n`` branches with files ``a_i`` followed by leaves
        ``T_out_i`` of size ``S``, and one branch ``T_big`` with file ``S``
        followed by a leaf ``T_out_big`` of size ``S/2``.  With memory
        ``M = 2S`` (the root's requirement), an out-of-core execution with
        I/O at most ``S/2`` exists iff the 2-Partition instance is solvable:
        after the root executes the memory is full, descending into any
        ``T_i`` branch would force ``S`` units of eviction, so ``T_big`` must
        go first and exactly ``S/2`` units -- a subset of the ``a_i`` files --
        must be written out.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("need at least one value")
    total = sum(values)
    tree = Tree()
    tree.add_node("T_in", f=0.0, n=0.0)
    for i, value in enumerate(values):
        tree.add_node(f"T_{i}", parent="T_in", f=value, n=0.0)
        tree.add_node(f"T_out_{i}", parent=f"T_{i}", f=total, n=0.0)
    tree.add_node("T_big", parent="T_in", f=total, n=0.0)
    tree.add_node("T_out_big", parent="T_big", f=total / 2.0, n=0.0)
    tree.validate()
    return tree
