"""Random weighted trees (the paper's Section VI-E protocol and more).

Section VI-E keeps the *shape* of every assembly tree but replaces its
weights: node weights are drawn uniformly from ``[1, N/500]`` and edge
weights from ``[1, N]``, where ``N`` is the number of tree nodes.  This
module implements that reweighting plus a few random-shape generators used to
enlarge the data sets:

* :func:`reweight_random` -- the Section VI-E protocol on an existing tree;
* :func:`random_attachment_tree` -- each new node attaches to a uniformly
  random earlier node (shallow, bushy trees);
* :func:`random_recent_attachment_tree` -- attachment biased towards recent
  nodes (deep trees, closer to elimination trees of banded matrices);
* :func:`random_binary_tree` -- uniformly random full binary topologies;
* :func:`random_caterpillar` -- a spine with random numbers of leaf children.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.tree import Tree

__all__ = [
    "reweight_random",
    "random_attachment_tree",
    "random_recent_attachment_tree",
    "random_binary_tree",
    "random_caterpillar",
]


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def reweight_random(
    tree: Tree,
    seed: Optional[int] = None,
    *,
    node_high: Optional[int] = None,
    edge_high: Optional[int] = None,
) -> Tree:
    """Apply the Section VI-E random reweighting to a tree.

    Node (execution) weights are drawn uniformly from ``[1, N/500]`` and edge
    (file) weights from ``[1, N]``, with ``N`` the number of nodes; the upper
    bounds can be overridden.  The root keeps ``f = 0`` if it had it (the
    paper's assembly trees have no file above the root).
    """
    rng = _rng(seed)
    n_nodes = tree.size
    node_high = max(1, n_nodes // 500) if node_high is None else max(1, node_high)
    edge_high = max(1, n_nodes) if edge_high is None else max(1, edge_high)
    out = tree.copy()
    for node in out.nodes():
        out.set_n(node, float(rng.randint(1, node_high)))
        if node == out.root and tree.f(node) == 0.0:
            out.set_f(node, 0.0)
        else:
            out.set_f(node, float(rng.randint(1, edge_high)))
    return out


def random_attachment_tree(
    n_nodes: int,
    seed: Optional[int] = None,
    *,
    max_f: float = 100.0,
    max_n: float = 20.0,
) -> Tree:
    """Uniform random attachment: node ``i`` picks its parent in ``[0, i-1]``.

    Produces shallow trees of expected height ``O(log n)`` with a wide degree
    distribution.  Weights are uniform integers in ``[1, max_f]`` /
    ``[0, max_n]``.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    rng = _rng(seed)
    # emit the flat parent-array form and bulk-build; the RNG call order per
    # node (parent, f, n) matches the historical add_node loop, so seeded
    # instances are bit-identical across versions
    parents = [-1]
    f = [0.0]
    n = [float(rng.randint(0, int(max_n)))]
    for i in range(1, n_nodes):
        parents.append(rng.randrange(i))
        f.append(float(rng.randint(1, int(max_f))))
        n.append(float(rng.randint(0, int(max_n))))
    return Tree.from_parents(parents, f, n)


def random_recent_attachment_tree(
    n_nodes: int,
    seed: Optional[int] = None,
    *,
    window: int = 16,
    max_f: float = 100.0,
    max_n: float = 20.0,
) -> Tree:
    """Random attachment restricted to the ``window`` most recent nodes.

    Produces deep, chain-like trees reminiscent of elimination trees of
    banded matrices.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    rng = _rng(seed)
    parents = [-1]
    f = [0.0]
    n = [float(rng.randint(0, int(max_n)))]
    for i in range(1, n_nodes):
        parents.append(rng.randrange(max(0, i - window), i))
        f.append(float(rng.randint(1, int(max_f))))
        n.append(float(rng.randint(0, int(max_n))))
    return Tree.from_parents(parents, f, n)


def random_binary_tree(
    n_leaves: int,
    seed: Optional[int] = None,
    *,
    max_f: float = 100.0,
    max_n: float = 20.0,
) -> Tree:
    """A random full binary tree with ``n_leaves`` leaves.

    Built top-down by recursively splitting the leaf count uniformly at
    random; internal nodes have exactly two children.
    """
    if n_leaves < 1:
        raise ValueError("need at least one leaf")
    rng = _rng(seed)
    parents: list = []
    f: list = []
    n: list = []

    def new_node(parent) -> int:
        idx = len(parents)
        parents.append(-1 if parent is None else parent)
        f.append(0.0 if parent is None else float(rng.randint(1, int(max_f))))
        n.append(float(rng.randint(0, int(max_n))))
        return idx

    stack = [(new_node(None), n_leaves)]
    while stack:
        node, leaves = stack.pop()
        if leaves <= 1:
            continue
        left = rng.randint(1, leaves - 1)
        right = leaves - left
        stack.append((new_node(node), left))
        stack.append((new_node(node), right))
    return Tree.from_parents(parents, f, n)


def random_caterpillar(
    spine: int,
    seed: Optional[int] = None,
    *,
    max_leaves: int = 4,
    max_f: float = 100.0,
    max_n: float = 20.0,
) -> Tree:
    """A caterpillar: a spine of ``spine`` nodes, each with random leaves."""
    if spine < 1:
        raise ValueError("need a spine of at least one node")
    rng = _rng(seed)
    parents = [-1]
    f = [0.0]
    n = [float(rng.randint(0, int(max_n)))]
    for i in range(1, spine):
        parents.append(i - 1)
        f.append(float(rng.randint(1, int(max_f))))
        n.append(float(rng.randint(0, int(max_n))))
    for i in range(spine):
        for _ in range(rng.randint(0, max_leaves)):
            parents.append(i)
            f.append(float(rng.randint(1, int(max_f))))
            n.append(float(rng.randint(0, int(max_n))))
    return Tree.from_parents(parents, f, n)
