"""Deterministic parametric tree shapes.

Small, fully deterministic families used by the unit tests and by the
documentation examples: chains, stars, balanced ``k``-ary trees, brooms,
bamboo-with-bushes and the textbook expression trees of the Sethi--Ullman
register-allocation problem.
"""

from __future__ import annotations

from ..core.tree import Tree

__all__ = [
    "balanced_tree",
    "broom_tree",
    "bamboo_with_bushes",
    "full_binary_expression_tree",
]


def balanced_tree(arity: int, depth: int, f: float = 1.0, n: float = 0.0) -> Tree:
    """A perfect ``arity``-ary tree of the given ``depth`` (root at depth 0)."""
    if arity < 1 or depth < 0:
        raise ValueError("arity must be >= 1 and depth >= 0")
    parents = [-1]
    frontier = [0]
    for _ in range(depth):
        nxt = []
        for parent in frontier:
            for _ in range(arity):
                nxt.append(len(parents))
                parents.append(parent)
        frontier = nxt
    p = len(parents)
    return Tree.from_parents(parents, [f] * p, [n] * p)


def broom_tree(handle: int, bristles: int, f: float = 1.0, n: float = 0.0) -> Tree:
    """A chain of ``handle`` nodes ending in ``bristles`` leaves."""
    if handle < 1 or bristles < 0:
        raise ValueError("handle must be >= 1 and bristles >= 0")
    parents = [-1] + list(range(handle - 1)) + [handle - 1] * bristles
    p = handle + bristles
    return Tree.from_parents(parents, [f] * p, [n] * p)


def bamboo_with_bushes(
    segments: int, bush_size: int, f_spine: float = 1.0, f_bush: float = 1.0, n: float = 0.0
) -> Tree:
    """A spine where every node carries a star of ``bush_size`` leaves."""
    if segments < 1 or bush_size < 0:
        raise ValueError("segments must be >= 1 and bush_size >= 0")
    parents = [-1] + list(range(segments - 1))
    f = [f_spine] * segments
    for i in range(segments):
        parents.extend([i] * bush_size)
        f.extend([f_bush] * bush_size)
    return Tree.from_parents(parents, f, [n] * len(parents))


def full_binary_expression_tree(depth: int) -> Tree:
    """The expression tree of a balanced binary arithmetic expression.

    Unit file sizes and zero execution files: together with the
    replacement-model reduction this is exactly the Sethi--Ullman register
    allocation instance, whose optimal register count is ``depth + 1``.
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    tree = balanced_tree(2, depth, f=1.0, n=0.0)
    return tree
