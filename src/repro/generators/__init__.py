"""Synthetic tree families: worst cases, hardness instances and random trees."""

from .harpoon import (
    harpoon_tree,
    iterated_harpoon_tree,
    optimal_memory_bound,
    postorder_memory_bound,
    postorder_vs_optimal_ratio_bound,
    two_partition_harpoon,
)
from .random_trees import (
    random_attachment_tree,
    random_binary_tree,
    random_caterpillar,
    random_recent_attachment_tree,
    reweight_random,
)
from .synthetic import (
    balanced_tree,
    bamboo_with_bushes,
    broom_tree,
    full_binary_expression_tree,
)

__all__ = [
    "harpoon_tree",
    "iterated_harpoon_tree",
    "two_partition_harpoon",
    "postorder_memory_bound",
    "optimal_memory_bound",
    "postorder_vs_optimal_ratio_bound",
    "reweight_random",
    "random_attachment_tree",
    "random_recent_attachment_tree",
    "random_binary_tree",
    "random_caterpillar",
    "balanced_tree",
    "broom_tree",
    "bamboo_with_bushes",
    "full_binary_expression_tree",
]
