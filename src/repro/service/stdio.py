"""NDJSON stdio front end: one JSON document per line, in and out.

This is the transport tests and CI use: no sockets, no ports, fully
deterministic to drive.  Each input line is either a solve request (the
:mod:`repro.service.protocol` schema) or a control document::

    {"op": "stats"}      -> {"op": "stats", "stats": {...}}
    {"op": "metrics"}    -> {"op": "metrics", "content_type": ..., "body": ...}
    {"op": "shutdown"}   -> stop reading (equivalent to EOF)

The ``metrics`` body is the same Prometheus text document ``GET /metrics``
serves on the HTTP front end, carried as one JSON string.

Requests run concurrently -- the reader never blocks on a solve -- and
responses are written as they complete, one JSON document per line, matched
to requests by ``id``.  EOF (or ``shutdown``) stops the reader; in-flight
requests still drain to a response line before :func:`serve_stdio` returns.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable, Dict, Optional

from .daemon import SolverService
from .errors import BadRequestError
from .protocol import error_response

__all__ = ["serve_stdio", "run_stdio_server"]

ReadLine = Callable[[], Awaitable[Optional[str]]]
WriteLine = Callable[[str], Awaitable[None]]


async def serve_stdio(
    service: SolverService,
    read_line: ReadLine,
    write_line: WriteLine,
) -> Dict[str, Any]:
    """Serve NDJSON requests until EOF; returns the final stats snapshot.

    ``read_line`` yields one line per call (``None`` at EOF); ``write_line``
    emits one line.  Both are async callables, so tests can drive the front
    end with in-memory queues and the CLI can wrap real stdin/stdout.
    """
    write_lock = asyncio.Lock()
    tasks: set = set()

    async def emit(doc: Dict[str, Any]) -> None:
        text = json.dumps(doc, separators=(",", ":"))
        async with write_lock:  # response lines must never interleave
            await write_line(text)

    async def run_one(doc: Dict[str, Any]) -> None:
        response = await service.handle(doc)
        await emit(response.to_dict())

    while True:
        line = await read_line()
        if line is None:
            break
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            service.stats.bad_requests += 1
            await emit(
                error_response(
                    None, BadRequestError(f"invalid JSON line: {exc}")
                ).to_dict()
            )
            continue
        op = doc.get("op") if isinstance(doc, dict) else None
        if op == "stats":
            await emit({"op": "stats", "stats": service.snapshot()})
            continue
        if op == "metrics":
            from ..obs import PROMETHEUS_CONTENT_TYPE

            await emit({
                "op": "metrics",
                "content_type": PROMETHEUS_CONTENT_TYPE,
                "body": service.render_metrics(),
            })
            continue
        if op == "shutdown":
            break
        task = asyncio.ensure_future(run_one(doc))
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    if tasks:
        await asyncio.gather(*tasks)
    return service.snapshot()


async def run_stdio_server(service: SolverService) -> Dict[str, Any]:
    """Wire :func:`serve_stdio` to the real stdin/stdout of the process.

    Reading happens on the default thread executor so a quiet stdin never
    blocks the event loop (and the daemon keeps solving while waiting).
    """
    import sys

    loop = asyncio.get_running_loop()

    def _read_blocking() -> Optional[str]:
        line = sys.stdin.readline()
        return line if line else None

    async def read_line() -> Optional[str]:
        return await loop.run_in_executor(None, _read_blocking)

    def _write_blocking(text: str) -> None:
        sys.stdout.write(text + "\n")
        sys.stdout.flush()

    async def write_line(text: str) -> None:
        await loop.run_in_executor(None, _write_blocking, text)

    return await serve_stdio(service, read_line, write_line)
