"""HTTP/JSON front end on asyncio streams -- no framework, no dependency.

A deliberately small HTTP/1.1 server (``asyncio.start_server``) exposing the
shared :class:`~repro.service.daemon.SolverService` core:

* ``POST /solve`` -- a request document (see :mod:`repro.service.protocol`)
  in, a response document out.  Error responses use the typed error's
  ``http_status`` (400 bad request, 429 queue full, 503 closed, 504
  deadline, 500 solver failure), so plain HTTP clients get meaningful
  status codes without reading the body.
* ``GET /healthz`` -- liveness: ``{"status": "ok", "accepting": ...}``.
* ``GET /stats`` -- the live counters/percentiles snapshot.
* ``GET /metrics`` -- the same state as Prometheus text exposition
  (``text/plain; version=0.0.4``), rendered per scrape from the live
  metric objects.

Connections are keep-alive by default (``Connection: close`` honoured), one
request at a time per connection -- concurrency comes from concurrent
connections, which is how the open-loop load generator drives it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from ..obs import PROMETHEUS_CONTENT_TYPE, get_logger, log_event
from .daemon import SolverService
from .errors import BadRequestError, ServiceError
from .protocol import error_response

__all__ = ["start_http_server", "MAX_BODY_BYTES"]

_log = get_logger("service.http")

#: request bodies beyond this are refused (a million-node parent array fits)
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _encode(
    status: int,
    payload: Any,
    *,
    keep_alive: bool,
    content_type: str = "application/json",
) -> bytes:
    """One HTTP/1.1 response; dict payloads are JSON, str payloads verbatim."""
    if isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = json.dumps(payload, separators=(",", ":")).encode()
    reason = _REASONS.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode() + body


async def _read_request(
    reader: "asyncio.StreamReader",
) -> Optional[Tuple[str, str, bytes]]:
    """One request off the wire: (method, path, body); ``None`` at EOF."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) < 2:
        raise BadRequestError("malformed HTTP request line")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line:
            return None  # peer went away mid-headers
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, _, value = text.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise BadRequestError(f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    if headers.get("connection", "").lower() == "close":
        method = "!" + method  # flag: close after responding
    return method, path, body


async def _handle_connection(
    service: SolverService,
    reader: "asyncio.StreamReader",
    writer: "asyncio.StreamWriter",
) -> None:
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except (BadRequestError, ValueError, asyncio.IncompleteReadError):
                writer.write(_encode(
                    400,
                    error_response(None, BadRequestError("malformed request")).to_dict(),
                    keep_alive=False,
                ))
                await writer.drain()
                return
            if parsed is None:
                return
            method, path, body = parsed
            keep_alive = not method.startswith("!")
            method = method.lstrip("!")
            status, payload, content_type = await _route(
                service, method, path, body
            )
            writer.write(_encode(
                status, payload, keep_alive=keep_alive,
                content_type=content_type,
            ))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


_JSON = "application/json"


async def _route(
    service: SolverService, method: str, path: str, body: bytes
) -> Tuple[int, Any, str]:
    """Dispatch one request: ``(status, payload, content_type)``."""
    path = path.split("?", 1)[0]
    if path == "/healthz":
        if method != "GET":
            return 405, {"error": {"code": "method_not_allowed"}}, _JSON
        return (
            200,
            {"status": "ok", "accepting": service.snapshot()["accepting"]},
            _JSON,
        )
    if path == "/stats":
        if method != "GET":
            return 405, {"error": {"code": "method_not_allowed"}}, _JSON
        return 200, service.snapshot(), _JSON
    if path == "/metrics":
        if method != "GET":
            return 405, {"error": {"code": "method_not_allowed"}}, _JSON
        return 200, service.render_metrics(), PROMETHEUS_CONTENT_TYPE
    if path == "/solve":
        if method != "POST":
            return 405, {"error": {"code": "method_not_allowed"}}, _JSON
        try:
            doc = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            err = BadRequestError(f"invalid JSON body: {exc}")
            return err.http_status, error_response(None, err).to_dict(), _JSON
        response = await service.handle(doc)
        status = 200
        if response.error is not None:
            error: ServiceError = response.error
            status = error.http_status
        return status, response.to_dict(), _JSON
    return 404, {"error": {"code": "not_found", "message": path}}, _JSON


async def start_http_server(
    service: SolverService, host: str = "127.0.0.1", port: int = 8787
):
    """Bind the HTTP front end; returns the ``asyncio.AbstractServer``.

    The caller owns both lifetimes: ``server.close()`` first, then
    ``await service.close()`` to drain.  Pass ``port=0`` for an ephemeral
    port (tests); the bound address is ``server.sockets[0].getsockname()``.
    """

    async def _client(reader, writer):
        await _handle_connection(service, reader, writer)

    server = await asyncio.start_server(_client, host=host, port=port)
    for sock in server.sockets or ():
        bound_host, bound_port = sock.getsockname()[:2]
        log_event(
            _log, "http_listening", host=bound_host, port=bound_port,
        )
    return server
