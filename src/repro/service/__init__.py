"""Solver-as-a-service: an async daemon over the persistent solve engine.

Where :func:`repro.solve_many` answers "solve this batch now", this package
answers "keep solving whatever arrives": a long-lived asyncio daemon
(:class:`SolverService`) wrapping the persistent engine with

* a **bounded request queue with admission control** -- submissions beyond
  ``max_pending`` are rejected synchronously with the typed
  :class:`QueueFullError` (backpressure, never silent queueing);
* **per-request deadlines** with cooperative cancellation -- a request's
  response resolves *at* its deadline with a :class:`DeadlineError` naming
  the stage it died in (``queued`` or ``executing``), whatever the queue
  looks like;
* **tree interning** -- payloads are built into trees once per content
  token and shipped to the engine's worker processes once per kernel (the
  service-side analogue of the arena's scatter-once transport);
* **graceful drain-and-shutdown** -- ``close()`` stops admission, settles
  every admitted request, then releases the workers and shared memory;
* two thin **front ends over one core**: HTTP/JSON on asyncio streams
  (:func:`start_http_server`, no dependency) and newline-delimited JSON on
  stdio (:func:`serve_stdio`) for tests, CI and pipelines.

Quickstart::

    import asyncio
    from repro.service import SolverService

    async def main():
        async with SolverService(workers=4, pool="persistent") as svc:
            resp = await svc.handle({
                "tree": {"parents": [-1, 0, 0, 1], "f": [0, 2, 3, 1]},
                "algorithm": "minmem",
            })
            print(resp.status, resp.report.peak_memory)

    asyncio.run(main())

or from a shell: ``repro serve --stdio`` / ``repro serve --port 8787``.

The open-loop traffic benchmarks over this daemon live in
:mod:`repro.bench.traffic`.
"""

from .daemon import SERVICE_POOL_MODES, ServiceStats, SolverService
from .errors import (
    BadRequestError,
    CircuitOpenError,
    DeadlineError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    SolverFailedError,
    UnknownTreeTokenError,
    error_from_dict,
)
from .http import start_http_server
from .protocol import (
    ServiceRequest,
    ServiceResponse,
    TreeInterner,
    error_response,
    parse_request,
    tree_payload_token,
)
from .stdio import run_stdio_server, serve_stdio

__all__ = [
    "SolverService",
    "ServiceStats",
    "SERVICE_POOL_MODES",
    "ServiceError",
    "BadRequestError",
    "UnknownTreeTokenError",
    "QueueFullError",
    "CircuitOpenError",
    "DeadlineError",
    "ServiceClosedError",
    "SolverFailedError",
    "error_from_dict",
    "ServiceRequest",
    "ServiceResponse",
    "TreeInterner",
    "parse_request",
    "tree_payload_token",
    "error_response",
    "start_http_server",
    "serve_stdio",
    "run_stdio_server",
]
