"""Typed errors of the solver service.

Every failure a request can hit has a dedicated exception class carrying a
stable wire ``code`` (the ``status`` field of an error response) and the
HTTP status the JSON front end maps it to.  The daemon never lets a request
hang: admission failures raise synchronously
(:class:`QueueFullError`, :class:`ServiceClosedError`), and asynchronous
failures (deadlines, solver crashes) resolve the request's response with the
error attached -- :meth:`~repro.service.protocol.ServiceResponse.raise_for_status`
re-raises the typed form for Python callers.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "ServiceError",
    "BadRequestError",
    "UnknownTreeTokenError",
    "QueueFullError",
    "CircuitOpenError",
    "DeadlineError",
    "ServiceClosedError",
    "SolverFailedError",
    "error_from_dict",
]


class ServiceError(Exception):
    """Base class of every service-level failure.

    Attributes
    ----------
    code:
        Stable wire identifier, used as the ``status`` of error responses.
    http_status:
        Status code the HTTP front end responds with.
    """

    code = "error"
    http_status = 500

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe description (the ``error`` block of a response)."""
        return {"type": type(self).__name__, "code": self.code,
                "message": str(self)}


class BadRequestError(ServiceError):
    """The request document is malformed (unparseable tree, bad field, ...)."""

    code = "bad_request"
    http_status = 400


class UnknownTreeTokenError(BadRequestError):
    """A ``{"tree": {"token": ...}}`` payload named a token not interned.

    Tokens are an optimisation, not storage: the interner is a bounded LRU,
    so clients must be prepared to re-send the full payload when a token has
    been evicted.
    """

    code = "unknown_tree_token"


class QueueFullError(ServiceError):
    """Admission control rejected the request: the pending queue is full.

    Raised synchronously at submission -- the request is *not* enqueued, so
    callers get immediate backpressure instead of silent queueing.
    """

    code = "rejected"
    http_status = 429


class CircuitOpenError(ServiceError):
    """The engine circuit breaker is open: the request is refused at once.

    Raised synchronously at submission after ``failure_threshold``
    consecutive engine infrastructure failures
    (:class:`~repro.faults.CircuitBreaker`).  A 503, not a 429: the queue
    may be empty -- the *engine* is the problem, and callers should back off
    for at least the breaker's cooldown rather than retry immediately.
    """

    code = "circuit_open"
    http_status = 503


class DeadlineError(ServiceError):
    """The request exceeded its deadline (while queued or while executing).

    ``stage`` records where the deadline fired: ``"queued"`` means the
    request never reached a worker (the solve was skipped entirely),
    ``"executing"`` means the solve was already running -- the service
    responds at the deadline and accounts the miss, while the abandoned
    solve finishes (or is cancelled, if it had not started) in the
    background.
    """

    code = "deadline"
    http_status = 504

    def __init__(self, message: str, *, stage: str) -> None:
        super().__init__(message)
        self.stage = stage

    def to_dict(self) -> Dict[str, Any]:
        doc = super().to_dict()
        doc["stage"] = self.stage
        return doc


class ServiceClosedError(ServiceError):
    """The service is draining or closed and accepts no new requests."""

    code = "closed"
    http_status = 503


class SolverFailedError(ServiceError):
    """The solver itself raised; the original exception is summarised.

    Requests carrying solver-level mistakes (an option value the algorithm
    rejects, an infeasible memory bound) land here rather than taking the
    daemon down.
    """

    code = "solver_error"
    http_status = 500

    def __init__(self, message: str, *, cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.cause_type = type(cause).__name__ if cause is not None else None

    def to_dict(self) -> Dict[str, Any]:
        doc = super().to_dict()
        doc["cause"] = self.cause_type
        return doc


#: wire code -> exception class, for rebuilding typed errors client-side
_BY_CODE = {
    cls.code: cls
    for cls in (
        ServiceError,
        BadRequestError,
        UnknownTreeTokenError,
        QueueFullError,
        CircuitOpenError,
        ServiceClosedError,
        SolverFailedError,
    )
}


def error_from_dict(doc: Dict[str, Any]) -> ServiceError:
    """Rebuild the typed error described by an error-response block.

    Used by clients (the load generator, tests) to turn a wire response back
    into the exception the server raised; unknown codes degrade to the base
    :class:`ServiceError`.
    """
    code = doc.get("code") or doc.get("status") or "error"
    message = str(doc.get("message", code))
    if code == DeadlineError.code:
        return DeadlineError(message, stage=str(doc.get("stage", "unknown")))
    cls = _BY_CODE.get(code, ServiceError)
    if cls is SolverFailedError:
        return SolverFailedError(message)
    return cls(message)
