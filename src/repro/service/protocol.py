"""Wire protocol of the solver service: requests, responses, tree interning.

Both front ends (HTTP/JSON and newline-delimited-JSON stdio) speak the same
documents:

Request::

    {
      "id": "req-1",                   # optional; generated when absent
      "tree": {"parents": [-1, 0, 0], "f": [0, 4, 3], "n": [1, 2, 1]},
      "algorithm": "minmem",           # any registered solver (default minmem)
      "memory": 12.5,                  # optional budget (budgeted solvers)
      "deadline": 0.5,                 # optional seconds, from acceptance
      "options": {"engine": "kernel"}, # solver options (lenient dispatch)
      "report": "full"                 # "full" | "summary" | "none"
    }

The ``tree`` payload takes three forms: a parent-array document as above
(the compact form the generators and the kernel use), a stored-tree document
(:func:`repro.core.serialize.tree_to_dict` schema), or ``{"token": "..."}``
referencing a tree interned by an earlier request.  Interning is the
service-side analogue of the engine's scatter-once arena: the first request
carrying a payload builds the :class:`~repro.core.tree.Tree` (kernel
included) exactly once, every response echoes the payload's ``tree_token``,
and later requests -- or clients that compute the token themselves via
:func:`tree_payload_token`, it is a pure content digest -- send the token
instead of the arrays.  Because the daemon also keeps the interned tree
alive, the engine's :class:`~repro.solvers.engine.TreeArena` ships it to the
worker processes exactly once across the whole request stream.

Response::

    {
      "id": "req-1",
      "status": "ok",                  # or an error code, see service.errors
      "algorithm": "minmem",
      "tree_token": "t-1d9c51cbe0e04a35",
      "timing": {"queue_seconds": ..., "solve_seconds": ..., "total_seconds": ...},
      "report": {...}                  # SolveReport document ("ok" only)
      # error responses instead carry {"error": {"type", "code", "message", ...}}
    }
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..core.tree import Tree, TreeValidationError
from ..obs import SpanTimeline
from ..solvers.registry import UnknownSolverError, get_solver
from ..solvers.report import SolveReport, report_to_dict
from .errors import BadRequestError, ServiceError, UnknownTreeTokenError

__all__ = [
    "TreeInterner",
    "ServiceRequest",
    "ServiceResponse",
    "parse_request",
    "tree_payload_token",
    "error_response",
]

#: options reserved by the batch facade; a request smuggling one in would be
#: silently dropped by lenient dispatch, so reject it loudly instead
RESERVED_OPTIONS = ("pool",)

#: report verbosity levels a request may ask for
REPORT_MODES = ("full", "summary", "none")

_request_counter = itertools.count(1)


# ----------------------------------------------------------------------
# tree payloads
# ----------------------------------------------------------------------
def tree_payload_token(payload: Dict[str, Any]) -> str:
    """Content token of a tree payload (stable across processes and runs).

    Clients may compute this locally to switch to token form without a
    round trip: the token depends only on the payload document.
    """
    digest = hashlib.sha1(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    return f"t-{digest[:16]}"


def _tree_from_payload(payload: Dict[str, Any]) -> Tree:
    """Build a :class:`Tree` from a parent-array or stored-tree document."""
    if "parents" in payload:
        parents = payload["parents"]
        if not isinstance(parents, list) or not parents:
            raise BadRequestError("tree.parents must be a non-empty list")
        f = payload.get("f")
        n = payload.get("n")
        for name, weights in (("f", f), ("n", n)):
            if weights is not None and len(weights) != len(parents):
                raise BadRequestError(
                    f"tree.{name} has {len(weights)} entries for "
                    f"{len(parents)} nodes"
                )
        try:
            first = parents[0]
            topological = (first is None or first == -1) and all(
                isinstance(p, int) and 0 <= p < i
                for i, p in enumerate(parents[1:], start=1)
            )
            if topological:
                # the fast path also caches the kernel, so the engine arena
                # can export the tree without a per-request rebuild
                return Tree.from_parents(parents, f=f, n=n, build_kernel=True)
            from ..core.builders import from_parent_list

            return from_parent_list(parents, f=f, n=n)
        except (TreeValidationError, ValueError, TypeError) as exc:
            raise BadRequestError(f"invalid tree payload: {exc}") from None
    if "nodes" in payload:
        from ..core.serialize import tree_from_dict

        try:
            return tree_from_dict(payload)
        except (TreeValidationError, KeyError, TypeError) as exc:
            raise BadRequestError(f"invalid tree document: {exc}") from None
    raise BadRequestError(
        "tree payload must carry 'parents', 'nodes' or 'token'"
    )


class TreeInterner:
    """Bounded LRU of trees keyed by payload content token.

    The intern step happens once per distinct payload: the tree (and its
    cached kernel) is built on first sight and every later request -- token
    form or full form -- reuses the same object.  Keeping the object alive
    here is what makes the engine arena's scatter-once effective: segment
    exports are keyed by kernel identity, so as long as the interner holds
    the tree, its flat arrays never cross to the workers twice.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("interner capacity must be >= 1")
        self.capacity = capacity
        self._trees: "OrderedDict[str, Tree]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._trees)

    def intern(self, payload: Dict[str, Any]) -> Tuple[str, Tree]:
        """Tree for ``payload`` (built once per distinct content token)."""
        token = tree_payload_token(payload)
        tree = self._trees.get(token)
        if tree is not None:
            self._trees.move_to_end(token)
            self.hits += 1
            return token, tree
        self.misses += 1
        tree = _tree_from_payload(payload)
        while len(self._trees) >= self.capacity:
            self._trees.popitem(last=False)
        self._trees[token] = tree
        return token, tree

    def lookup(self, token: str) -> Tree:
        """Resolve a token from an earlier intern; typed error when evicted."""
        tree = self._trees.get(token)
        if tree is None:
            raise UnknownTreeTokenError(
                f"unknown tree token {token!r} (evicted or never interned); "
                "re-send the full tree payload"
            )
        self._trees.move_to_end(token)
        self.hits += 1
        return tree


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
@dataclass
class ServiceRequest:
    """One parsed, admitted-or-not solve request."""

    id: str
    tree: Tree
    tree_token: str
    algorithm: str
    memory: Optional[float] = None
    deadline: Optional[float] = None
    options: Dict[str, Any] = field(default_factory=dict)
    report_mode: str = "full"
    #: stamped by the daemon at admission (perf_counter seconds)
    accepted_at: float = 0.0
    #: per-request span timeline; created by :func:`parse_request` (or by
    #: the daemon at admission for hand-built requests)
    trace: Optional[SpanTimeline] = field(default=None, repr=False, compare=False)


def parse_request(
    doc: Dict[str, Any],
    interner: TreeInterner,
    *,
    default_deadline: Optional[float] = None,
    trace: Optional[SpanTimeline] = None,
) -> ServiceRequest:
    """Validate a request document into a :class:`ServiceRequest`.

    Every malformed field raises :class:`BadRequestError` (or the more
    specific :class:`UnknownTreeTokenError`) -- parsing happens *before*
    admission, so a bad request never occupies a queue slot.

    The request's span timeline starts here: field validation is recorded
    as ``parse`` (two disjoint stretches around the intern call, summed),
    tree construction/lookup as ``intern``.  Pass an existing ``trace`` to
    extend a timeline that began upstream (e.g. at socket accept).
    """
    if trace is None:
        trace = SpanTimeline()
    trace.begin("parse")
    if not isinstance(doc, dict):
        raise BadRequestError("request must be a JSON object")
    request_id = doc.get("id")
    if request_id is None:
        request_id = f"req-{next(_request_counter)}"
    elif not isinstance(request_id, str) or not request_id:
        raise BadRequestError("request id must be a non-empty string")

    payload = doc.get("tree")
    if not isinstance(payload, dict):
        raise BadRequestError("request must carry a 'tree' object")
    trace.end("parse")
    trace.begin("intern")
    if "token" in payload:
        token = payload["token"]
        if not isinstance(token, str):
            raise BadRequestError("tree.token must be a string")
        tree = interner.lookup(token)
    else:
        token, tree = interner.intern(payload)
    trace.end("intern")
    trace.begin("parse")

    algorithm = doc.get("algorithm", "minmem")
    try:
        algorithm = get_solver(algorithm).name
    except UnknownSolverError as exc:
        raise BadRequestError(str(exc)) from None

    memory = doc.get("memory")
    if memory is not None:
        try:
            memory = float(memory)
        except (TypeError, ValueError):
            raise BadRequestError("memory must be a number") from None

    deadline = doc.get("deadline", default_deadline)
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise BadRequestError("deadline must be a number (seconds)") from None
        if deadline <= 0:
            raise BadRequestError("deadline must be > 0 seconds")

    options = doc.get("options") or {}
    if not isinstance(options, dict):
        raise BadRequestError("options must be an object")
    reserved = sorted(set(options) & set(RESERVED_OPTIONS))
    if reserved:
        raise BadRequestError(
            f"option(s) {reserved} are reserved by the batch facade and "
            "have no effect on a service request"
        )

    report_mode = doc.get("report", "full")
    if report_mode not in REPORT_MODES:
        raise BadRequestError(
            f"report must be one of {REPORT_MODES}, not {report_mode!r}"
        )

    trace.end("parse")
    return ServiceRequest(
        id=request_id,
        tree=tree,
        tree_token=token,
        algorithm=algorithm,
        memory=memory,
        deadline=deadline,
        options=dict(options),
        report_mode=report_mode,
        trace=trace,
    )


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
@dataclass
class ServiceResponse:
    """Outcome of one request: a report or a typed error, plus timing.

    The timing breakdown separates where a request spent its life:
    ``queue_seconds`` from admission to dispatch, ``solve_seconds`` from
    dispatch to completion (service-side, IPC included -- the report's own
    ``wall_time`` is the in-worker stamp), ``total_seconds`` from admission
    to the response.  ``stages`` refines that further: the per-stage span
    durations (``parse``/``intern``/``queued``/``dispatch``/``solve``/
    ``report``) of the request's :class:`~repro.obs.SpanTimeline`, surfaced
    under ``timing.stages`` on the wire.

    ``extras`` carries execution metadata that is not part of the solver's
    answer -- today the degradation ladder: ``tier`` names where the solve
    actually ran (the engine backend, the service thread pool, or inline)
    and ``degraded`` flags requests that fell below the configured tier.
    Serialized as the top-level ``extras`` object when non-empty.
    """

    request_id: str
    status: str
    algorithm: Optional[str] = None
    tree_token: Optional[str] = None
    report: Optional[SolveReport] = None
    error: Optional[ServiceError] = None
    report_mode: str = "full"
    queue_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    stages: Optional[Dict[str, float]] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def raise_for_status(self) -> "ServiceResponse":
        """Return self when ok; re-raise the typed error otherwise."""
        if self.error is not None:
            raise self.error
        if not self.ok:  # pragma: no cover - error always set on failure
            raise ServiceError(f"request {self.request_id} failed: {self.status}")
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The wire document (report verbosity per the request's ask)."""
        doc: Dict[str, Any] = {
            "id": self.request_id,
            "status": self.status,
            "timing": {
                "queue_seconds": self.queue_seconds,
                "solve_seconds": self.solve_seconds,
                "total_seconds": self.total_seconds,
            },
        }
        if self.stages is not None:
            doc["timing"]["stages"] = dict(self.stages)
        if self.algorithm is not None:
            doc["algorithm"] = self.algorithm
        if self.tree_token is not None:
            doc["tree_token"] = self.tree_token
        if self.report is not None and self.report_mode != "none":
            if self.report_mode == "summary":
                doc["report"] = {
                    "algorithm": self.report.algorithm,
                    "peak_memory": self.report.peak_memory,
                    "io_volume": self.report.io_volume,
                    "wall_time": self.report.wall_time,
                    "extras": dict(self.report.extras),
                }
            else:
                doc["report"] = report_to_dict(self.report)
        if self.error is not None:
            doc["error"] = self.error.to_dict()
        if self.extras:
            doc["extras"] = dict(self.extras)
        return doc


def error_response(
    request_id: Optional[str],
    error: ServiceError,
    *,
    tree_token: Optional[str] = None,
    algorithm: Optional[str] = None,
    queue_seconds: float = 0.0,
    solve_seconds: float = 0.0,
    total_seconds: float = 0.0,
) -> ServiceResponse:
    """A :class:`ServiceResponse` describing ``error`` (status = its code)."""
    return ServiceResponse(
        request_id=request_id or "unknown",
        status=error.code,
        algorithm=algorithm,
        tree_token=tree_token,
        error=error,
        queue_seconds=queue_seconds,
        solve_seconds=solve_seconds,
        total_seconds=total_seconds,
    )
