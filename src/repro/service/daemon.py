"""The long-lived asyncio daemon over the persistent solve engine.

:class:`SolverService` is the core both front ends share -- a single-process
control loop modelled on the scatter-once / stop-flag structure of treeck's
``DistributedVerifier``:

* **accept**: a request document is parsed and its tree interned
  (:mod:`repro.service.protocol`) *before* it can occupy a queue slot;
* **admit**: admission control bounds the number of pending requests
  (queued + executing); a full service rejects synchronously with the typed
  :class:`~repro.service.errors.QueueFullError` -- backpressure, never
  silent queueing;
* **intern**: the interned tree's kernel is exported to the engine's shared
  arena once, so a stream of requests against the same tree ships it to the
  worker processes exactly once;
* **dispatch**: a dispatcher task feeds admitted requests to the executor --
  per-request futures on the persistent :class:`~repro.solvers.engine.SolveEngine`
  (``pool="persistent"``) or an in-process thread pool (``pool="serial"``,
  also the automatic fallback where subprocesses are unavailable) -- with a
  bounded number in flight;
* **report**: the response carries the frozen
  :class:`~repro.solvers.SolveReport` plus the queue/solve/total timing
  breakdown.

Deadlines are cooperative: each request may carry one (seconds from
acceptance), enforced by a per-request watchdog timer.  When it fires the
response resolves *immediately* with a typed
:class:`~repro.service.errors.DeadlineError` naming the stage (``queued`` --
the solve is skipped entirely, and a not-yet-started engine future is
cancelled -- or ``executing`` -- the miss is accounted and the abandoned
solve drains in the background).  A request therefore never hangs past its
deadline, whatever the queue looks like.

Shutdown is graceful by default: :meth:`SolverService.close` stops admission
(:class:`~repro.service.errors.ServiceClosedError`), drains every admitted
request to a response, then releases the engine's workers and shared-memory
segments (``drain=False`` aborts instead: queued requests are flushed with
``closed`` responses and the engine's stop flag cuts new dispatches).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..solvers.facade import _solve_task
from .errors import (
    DeadlineError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    SolverFailedError,
)
from .protocol import (
    ServiceRequest,
    ServiceResponse,
    TreeInterner,
    error_response,
    parse_request,
)

__all__ = ["SolverService", "ServiceStats", "SERVICE_POOL_MODES"]

#: executor modes of the service: the persistent process engine or an
#: in-process thread pool (the latter also the automatic fallback)
SERVICE_POOL_MODES = ("persistent", "serial")

#: hard cap on recorded latencies (the stats snapshot stays bounded)
_MAX_LATENCY_SAMPLES = 200_000


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation percentile of an ascending list (q in 0..100)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


@dataclass
class ServiceStats:
    """Lifetime counters of one service instance."""

    accepted: int = 0
    completed: int = 0
    rejected: int = 0
    bad_requests: int = 0
    solver_errors: int = 0
    deadline_miss_queued: int = 0
    deadline_miss_executing: int = 0
    drained: int = 0
    max_queue_depth: int = 0
    _latencies: List[float] = field(default_factory=list, repr=False)

    @property
    def deadline_misses(self) -> int:
        return self.deadline_miss_queued + self.deadline_miss_executing

    def record_latency(self, seconds: float) -> None:
        if len(self._latencies) < _MAX_LATENCY_SAMPLES:
            self._latencies.append(seconds)

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of the completed requests' total latency (seconds)."""
        ordered = sorted(self._latencies)
        return {
            "p50": _percentile(ordered, 50.0),
            "p95": _percentile(ordered, 95.0),
            "p99": _percentile(ordered, 99.0),
        }

    def snapshot(self) -> Dict[str, Any]:
        doc = {
            "accepted": self.accepted,
            "completed": self.completed,
            "rejected": self.rejected,
            "bad_requests": self.bad_requests,
            "solver_errors": self.solver_errors,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_queued": self.deadline_miss_queued,
            "deadline_miss_executing": self.deadline_miss_executing,
            "drained": self.drained,
            "max_queue_depth": self.max_queue_depth,
        }
        doc["latency_seconds"] = self.latency_percentiles()
        return doc


class _Pending:
    """Book-keeping of one admitted request."""

    __slots__ = (
        "request", "future", "timer", "state", "dispatched_at", "exec_future",
    )

    def __init__(self, request: ServiceRequest, future: "asyncio.Future") -> None:
        self.request = request
        self.future = future
        self.timer = None           # watchdog handle (deadline requests)
        self.state = "queued"       # -> "executing" -> responded
        self.dispatched_at = 0.0
        self.exec_future = None     # engine future, for cooperative cancel

    def done(self) -> bool:
        return self.future.done()


_SENTINEL = object()


class SolverService:
    """Async request queue + admission control over the solve engine.

    Parameters
    ----------
    workers:
        Worker processes of the persistent engine (``pool="persistent"``);
        ``None``/``0``/``1`` with the default pool selects the in-process
        thread executor instead.
    pool:
        ``"persistent"`` -- the service owns a
        :class:`~repro.solvers.engine.SolveEngine` (processes, shared-memory
        arena), shut down with the service; ``"serial"`` -- an in-process
        thread pool (deterministic, sandbox-safe); ``None`` picks
        ``"persistent"`` when ``workers > 1``.  Unknown strings raise
        :class:`ValueError` eagerly, mirroring ``solve_many``.
    max_pending:
        Admission bound on requests alive in the service (queued plus
        executing).  Submissions beyond it raise :class:`QueueFullError`.
    max_inflight:
        Solves running concurrently; defaults to ``2 x workers`` on the
        engine (one extra per worker hides IPC latency at the boundary) and
        ``workers or 1`` on threads.
    default_deadline:
        Deadline (seconds) applied to requests that do not carry one;
        ``None`` = no implicit deadline.
    solver_options:
        Options merged under every request's own (e.g. ``engine="kernel"``).
    interner_capacity:
        LRU size of the tree interner.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        pool: Optional[str] = None,
        max_pending: int = 128,
        max_inflight: Optional[int] = None,
        default_deadline: Optional[float] = None,
        solver_options: Optional[Dict[str, Any]] = None,
        interner_capacity: int = 512,
        use_shared_memory: Optional[bool] = None,
    ) -> None:
        if pool not in (None, *SERVICE_POOL_MODES):
            raise ValueError(
                f"unknown service pool mode {pool!r}; expected one of "
                f"{SERVICE_POOL_MODES}"
            )
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.workers = int(workers or 0)
        if pool is None:
            pool = "persistent" if self.workers > 1 else "serial"
        self.pool_mode = pool
        self.max_pending = max_pending
        if max_inflight is None:
            if pool == "persistent":
                max_inflight = 2 * max(1, self.workers)
            else:
                max_inflight = max(1, self.workers)
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.default_deadline = default_deadline
        self.solver_options = dict(solver_options or {})
        self.interner = TreeInterner(capacity=interner_capacity)
        self.stats = ServiceStats()
        self._use_shared_memory = use_shared_memory
        self._engine = None
        self._thread_pool = None
        self._queue: "asyncio.Queue" = None  # created in start()
        self._inflight: "asyncio.Semaphore" = None
        self._idle: "asyncio.Event" = None
        self._dispatcher: "asyncio.Task" = None
        self._tasks: set = set()
        self._pending_count = 0
        self._started = False
        self._accepting = False
        self._closed = False
        self._abort = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SolverService":
        """Start the dispatcher (idempotent); returns self for chaining."""
        if self._started:
            return self
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._inflight = asyncio.Semaphore(self.max_inflight)
        self._idle = asyncio.Event()
        self._idle.set()
        if self.pool_mode == "persistent":
            from ..solvers.engine import SolveEngine

            self._engine = SolveEngine(use_shared_memory=self._use_shared_memory)
        self._dispatcher = loop.create_task(self._dispatch_loop())
        self._started = True
        self._accepting = True
        return self

    async def __aenter__(self) -> "SolverService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    @property
    def pending(self) -> int:
        """Requests alive in the service (queued + executing)."""
        return self._pending_count

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    async def close(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop admission, settle every admitted request, release the engine.

        With ``drain=True`` (the default) every admitted request still runs
        to a real response before the workers go away.  With ``drain=False``
        the engine's stop flag is set, queued requests are flushed with
        ``closed`` responses, and not-yet-started solves are cancelled.
        ``timeout`` bounds the wait; stragglers are then flushed with
        ``closed`` responses as well, so no caller is left hanging.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        self._accepting = False
        if not drain:
            self._abort = True
            if self._engine is not None:
                self._engine.stop()
        self._queue.put_nowait(_SENTINEL)
        try:
            await asyncio.wait_for(self._dispatcher, timeout)
        except asyncio.TimeoutError:
            self._dispatcher.cancel()
        if self._tasks:
            done, stragglers = await asyncio.wait(set(self._tasks), timeout=timeout)
            for task in stragglers:
                task.cancel()
        # whatever is still unresponded (abort path, timeout) gets a typed
        # closed response -- callers never hang on a closing service
        for pending in list(self._by_future_pendings()):
            self._finish(
                pending,
                error_response(
                    pending.request.id,
                    ServiceClosedError("service closed before the solve finished"),
                    tree_token=pending.request.tree_token,
                    algorithm=pending.request.algorithm,
                    total_seconds=perf_counter() - pending.request.accepted_at,
                ),
            )
        if self._engine is not None:
            self._engine.shutdown()
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)

    def _by_future_pendings(self) -> List[_Pending]:
        # pendings are reachable through the queue (never dispatched) only;
        # executing ones respond through their task, which has settled by now
        out = []
        while self._queue is not None and not self._queue.empty():
            item = self._queue.get_nowait()
            if item is not _SENTINEL and not item.done():
                out.append(item)
        return out

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_nowait(self, request: ServiceRequest) -> "asyncio.Future":
        """Admit ``request`` and return the future of its response.

        Raises
        ------
        ServiceClosedError
            When the service is not started, closing or closed.
        QueueFullError
            When admission control finds ``max_pending`` requests alive --
            the request is *not* enqueued.
        """
        if not self._started or not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        if self._pending_count >= self.max_pending:
            self.stats.rejected += 1
            raise QueueFullError(
                f"request queue is full ({self._pending_count} pending, "
                f"bound {self.max_pending}); retry with backoff"
            )
        loop = asyncio.get_running_loop()
        request.accepted_at = perf_counter()
        pending = _Pending(request, loop.create_future())
        self._pending_count += 1
        self._idle.clear()
        self.stats.accepted += 1
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, self._queue.qsize() + 1
        )
        if request.deadline is not None:
            pending.timer = loop.call_later(
                request.deadline, self._expire, pending
            )
        self._queue.put_nowait(pending)
        return pending.future

    async def submit(self, request: ServiceRequest) -> ServiceResponse:
        """Admit ``request`` and await its response (admission may raise)."""
        return await self.submit_nowait(request)

    async def handle(self, doc: Dict[str, Any]) -> ServiceResponse:
        """Full request lifecycle for one wire document; never raises.

        Parse + intern, admit, await.  Every failure -- malformed document,
        queue full, closed service -- comes back as an error *response*, so
        the front ends share one code path.
        """
        try:
            request = parse_request(
                doc, self.interner, default_deadline=self.default_deadline
            )
        except ServiceError as exc:
            self.stats.bad_requests += 1
            request_id = doc.get("id") if isinstance(doc, dict) else None
            return error_response(
                request_id if isinstance(request_id, str) else None, exc
            )
        try:
            future = self.submit_nowait(request)
        except ServiceError as exc:
            return error_response(
                request.id, exc,
                tree_token=request.tree_token, algorithm=request.algorithm,
            )
        return await future

    async def join(self) -> None:
        """Wait until no request is pending (the service is idle)."""
        await self._idle.wait()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _SENTINEL:
                break
            if item.done():  # deadline fired while queued
                continue
            await self._inflight.acquire()
            if item.done():  # ... or while waiting for an inflight slot
                self._inflight.release()
                continue
            if self._abort:
                self._inflight.release()
                self._finish(
                    item,
                    error_response(
                        item.request.id,
                        ServiceClosedError("service closed before dispatch"),
                        tree_token=item.request.tree_token,
                        algorithm=item.request.algorithm,
                        queue_seconds=perf_counter() - item.request.accepted_at,
                        total_seconds=perf_counter() - item.request.accepted_at,
                    ),
                )
                continue
            task = asyncio.get_running_loop().create_task(self._execute(item))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _execute(self, pending: _Pending) -> None:
        request = pending.request
        try:
            pending.state = "executing"
            pending.dispatched_at = perf_counter()
            cell = (
                request.tree,
                request.algorithm,
                request.memory,
                {**self.solver_options, **request.options},
            )
            try:
                report = await self._run_cell(cell, pending)
            except asyncio.CancelledError:
                # the watchdog cancelled a not-yet-started engine future (or
                # an aborting close tore the pool down); the response -- a
                # deadline or closed error -- is already settled
                return
            except ServiceError as exc:
                self._respond_error(pending, exc)
                return
            except Exception as exc:
                self._respond_error(
                    pending,
                    SolverFailedError(f"{type(exc).__name__}: {exc}", cause=exc),
                )
                return
            if pending.done():
                # deadline fired mid-solve: the miss is already accounted,
                # the late report is dropped on the floor
                return
            end = perf_counter()
            self._finish(
                pending,
                ServiceResponse(
                    request_id=request.id,
                    status="ok",
                    algorithm=request.algorithm,
                    tree_token=request.tree_token,
                    report=report,
                    report_mode=request.report_mode,
                    queue_seconds=pending.dispatched_at - request.accepted_at,
                    solve_seconds=end - pending.dispatched_at,
                    total_seconds=end - request.accepted_at,
                ),
            )
        finally:
            self._inflight.release()

    async def _run_cell(self, cell: Tuple, pending: _Pending):
        """Run one cell on the engine (future seam) or the thread fallback."""
        if self._engine is not None:
            from ..solvers.engine import EngineStoppedError

            try:
                exec_future = self._engine.submit(cell, self.workers)
            except EngineStoppedError:
                raise ServiceClosedError("engine is stopping") from None
            if exec_future is not None:
                pending.exec_future = exec_future
                from concurrent.futures.process import BrokenProcessPool

                try:
                    return await asyncio.wrap_future(exec_future)
                except BrokenProcessPool:
                    # a worker crashed mid-request: heal the pool and give
                    # this request its answer in-process
                    self._engine.pool.reset()
                    pending.exec_future = None
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._threads(), _solve_task, cell)

    def _threads(self):
        if self._thread_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.max_inflight,
                thread_name_prefix="repro-service",
            )
        return self._thread_pool

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _expire(self, pending: _Pending) -> None:
        """Watchdog: the request's deadline fired -- respond *now*."""
        if pending.done():
            return
        request = pending.request
        stage = pending.state
        now = perf_counter()
        if stage == "queued":
            queue_seconds = now - request.accepted_at
            solve_seconds = 0.0
        else:
            queue_seconds = pending.dispatched_at - request.accepted_at
            solve_seconds = now - pending.dispatched_at
        if pending.exec_future is not None:
            # cooperative cancellation: an engine future still in the pool
            # queue dies here; a running solve merely gets abandoned
            pending.exec_future.cancel()
        self._finish(
            pending,
            error_response(
                request.id,
                DeadlineError(
                    f"deadline of {request.deadline:g}s exceeded while {stage}",
                    stage=stage,
                ),
                tree_token=request.tree_token,
                algorithm=request.algorithm,
                queue_seconds=queue_seconds,
                solve_seconds=solve_seconds,
                total_seconds=now - request.accepted_at,
            ),
        )

    def _respond_error(self, pending: _Pending, error: ServiceError) -> None:
        if pending.done():
            return
        request = pending.request
        now = perf_counter()
        self._finish(
            pending,
            error_response(
                request.id, error,
                tree_token=request.tree_token, algorithm=request.algorithm,
                queue_seconds=pending.dispatched_at - request.accepted_at,
                solve_seconds=now - pending.dispatched_at,
                total_seconds=now - request.accepted_at,
            ),
        )

    def _finish(self, pending: _Pending, response: ServiceResponse) -> None:
        """Resolve one pending request exactly once and account it."""
        if pending.done():
            return
        if pending.timer is not None:
            pending.timer.cancel()
            pending.timer = None
        pending.future.set_result(response)
        self._pending_count -= 1
        if self._pending_count == 0:
            self._idle.set()
        error = response.error
        if response.ok:
            self.stats.completed += 1
            self.stats.record_latency(response.total_seconds)
        elif isinstance(error, DeadlineError):
            if error.stage == "queued":
                self.stats.deadline_miss_queued += 1
            else:
                self.stats.deadline_miss_executing += 1
        elif isinstance(error, SolverFailedError):
            self.stats.solver_errors += 1
        elif isinstance(error, ServiceClosedError):
            self.stats.drained += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Live stats document (the ``/stats`` and stdio ``op: stats`` body)."""
        doc = self.stats.snapshot()
        doc.update(
            pending=self._pending_count,
            queue_depth=self.queue_depth,
            max_pending=self.max_pending,
            max_inflight=self.max_inflight,
            pool=self.pool_mode,
            workers=self.workers,
            interned_trees=len(self.interner),
            interner_hits=self.interner.hits,
            interner_misses=self.interner.misses,
            accepting=self._accepting,
        )
        return doc
