"""The long-lived asyncio daemon over the persistent solve engine.

:class:`SolverService` is the core both front ends share -- a single-process
control loop modelled on the scatter-once / stop-flag structure of treeck's
``DistributedVerifier``:

* **accept**: a request document is parsed and its tree interned
  (:mod:`repro.service.protocol`) *before* it can occupy a queue slot;
* **admit**: admission control bounds the number of pending requests
  (queued + executing); a full service rejects synchronously with the typed
  :class:`~repro.service.errors.QueueFullError` -- backpressure, never
  silent queueing;
* **intern**: the interned tree's kernel is exported to the engine's shared
  arena once, so a stream of requests against the same tree ships it to the
  worker processes exactly once;
* **dispatch**: a dispatcher task feeds admitted requests to the executor --
  per-request futures on a :class:`~repro.solvers.engine.SolveEngine` over
  any service-capable executor backend (``pool="persistent"`` processes,
  ``pool="threads"``, ``pool="dask"``) or an in-process thread pool
  (``pool="serial"``, also the automatic fallback where the backend is
  unavailable) -- with a bounded number in flight;
* **report**: the response carries the frozen
  :class:`~repro.solvers.SolveReport` plus the queue/solve/total timing
  breakdown.

Deadlines are cooperative: each request may carry one (seconds from
acceptance), enforced by a per-request watchdog timer.  When it fires the
response resolves *immediately* with a typed
:class:`~repro.service.errors.DeadlineError` naming the stage (``queued`` --
the solve is skipped entirely, and a not-yet-started engine future is
cancelled -- or ``executing`` -- the miss is accounted and the abandoned
solve drains in the background).  A request therefore never hangs past its
deadline, whatever the queue looks like.

Shutdown is graceful by default: :meth:`SolverService.close` stops admission
(:class:`~repro.service.errors.ServiceClosedError`), drains every admitted
request to a response, then releases the engine's workers and shared-memory
segments (``drain=False`` aborts instead: queued requests are flushed with
``closed`` responses and the engine's stop flag cuts new dispatches).
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

from ..faults import CircuitBreaker
from ..faults.stats import global_fault_stats
from ..obs import (
    Histogram,
    MetricsRegistry,
    SpanTimeline,
    get_logger,
    log_event,
    render_prometheus,
)
from ..solvers.engine.backends import backend_names
from ..solvers.facade import _solve_task
from .errors import (
    CircuitOpenError,
    DeadlineError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    SolverFailedError,
)
from .protocol import (
    ServiceRequest,
    ServiceResponse,
    TreeInterner,
    error_response,
    parse_request,
)

__all__ = ["SolverService", "ServiceStats", "SERVICE_POOL_MODES"]

_log = get_logger("service")

#: executor modes of the service, straight from the backend registry --
#: every future-capable backend plus forced in-process execution (also the
#: automatic fallback); ``fresh`` is excluded, a one-shot pool per request
#: being the antithesis of a long-lived daemon
SERVICE_POOL_MODES = backend_names(service_only=True)


@dataclass
class ServiceStats:
    """Lifetime counters + streaming latency histograms of one service.

    Latencies live in fixed-bucket :class:`~repro.obs.Histogram` objects,
    not raw sample lists: memory is bounded by the bucket ladder and the
    p50/p95/p99 estimates keep tracking the live distribution at any request
    volume (the previous design capped the sample list and silently froze
    its percentiles past the cap).
    """

    accepted: int = 0
    completed: int = 0
    rejected: int = 0
    bad_requests: int = 0
    solver_errors: int = 0
    deadline_miss_queued: int = 0
    deadline_miss_executing: int = 0
    drained: int = 0
    max_queue_depth: int = 0
    #: total (admission -> response) latency of completed requests
    latency: Histogram = field(default_factory=Histogram, repr=False)
    #: stage histograms of the same requests (admission -> dispatch,
    #: dispatch -> completion)
    queue_latency: Histogram = field(default_factory=Histogram, repr=False)
    solve_latency: Histogram = field(default_factory=Histogram, repr=False)

    @property
    def deadline_misses(self) -> int:
        return self.deadline_miss_queued + self.deadline_miss_executing

    def record_latency(
        self,
        seconds: float,
        *,
        queue_seconds: Optional[float] = None,
        solve_seconds: Optional[float] = None,
    ) -> None:
        self.latency.observe(seconds)
        if queue_seconds is not None:
            self.queue_latency.observe(queue_seconds)
        if solve_seconds is not None:
            self.solve_latency.observe(solve_seconds)

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 of the completed requests' total latency (seconds)."""
        return self.latency.percentiles((50.0, 95.0, 99.0))

    def snapshot(self) -> Dict[str, Any]:
        doc = {
            "accepted": self.accepted,
            "completed": self.completed,
            "rejected": self.rejected,
            "bad_requests": self.bad_requests,
            "solver_errors": self.solver_errors,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_queued": self.deadline_miss_queued,
            "deadline_miss_executing": self.deadline_miss_executing,
            "drained": self.drained,
            "max_queue_depth": self.max_queue_depth,
        }
        doc["latency_seconds"] = self.latency_percentiles()
        doc["latency_seconds"]["mean"] = self.latency.mean
        doc["latency_seconds"]["count"] = self.latency.count
        return doc


class _Pending:
    """Book-keeping of one admitted request."""

    __slots__ = (
        "request", "future", "timer", "state", "dispatched_at", "exec_future",
    )

    def __init__(self, request: ServiceRequest, future: "asyncio.Future") -> None:
        self.request = request
        self.future = future
        self.timer = None           # watchdog handle (deadline requests)
        self.state = "queued"       # -> "executing" -> responded
        self.dispatched_at = 0.0
        self.exec_future = None     # engine future, for cooperative cancel

    def done(self) -> bool:
        return self.future.done()


_SENTINEL = object()


class SolverService:
    """Async request queue + admission control over the solve engine.

    Parameters
    ----------
    workers:
        Worker processes of the persistent engine (``pool="persistent"``);
        ``None``/``0``/``1`` with the default pool selects the in-process
        thread executor instead.
    pool:
        Executor backend of the service (any name in
        :data:`SERVICE_POOL_MODES`).  Non-serial modes make the service own
        a :class:`~repro.solvers.engine.SolveEngine` on that backend
        (``"persistent"`` processes + shared-memory arena, ``"threads"``,
        ``"dask"``), shut down with the service; ``"serial"`` uses an
        in-process thread pool (deterministic, sandbox-safe).  ``None``
        picks ``"persistent"`` when ``workers > 1``.  Unknown strings raise
        :class:`ValueError` eagerly, mirroring ``solve_many``.
    max_pending:
        Admission bound on requests alive in the service (queued plus
        executing).  Submissions beyond it raise :class:`QueueFullError`.
    max_inflight:
        Solves running concurrently; defaults to ``2 x workers`` on the
        engine (one extra per worker hides IPC latency at the boundary) and
        ``workers or 1`` on threads.
    default_deadline:
        Deadline (seconds) applied to requests that do not carry one;
        ``None`` = no implicit deadline.
    solver_options:
        Options merged under every request's own (e.g. ``engine="kernel"``).
    interner_capacity:
        LRU size of the tree interner.
    breaker_threshold / breaker_cooldown:
        Circuit-breaker tuning: consecutive engine infrastructure failures
        that open the circuit, and seconds before a half-open probe is let
        through.  ``breaker`` injects a pre-built
        :class:`~repro.faults.CircuitBreaker` instead (tests use a stepped
        clock).  While open, submissions are refused synchronously with the
        typed 503 :class:`~repro.service.errors.CircuitOpenError`.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; when given, the engine
        backend is wrapped in a
        :class:`~repro.faults.FaultyBackend` so the daemon runs under
        deterministic chaos (the service smoke drives the breaker this way).
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        pool: Optional[str] = None,
        max_pending: int = 128,
        max_inflight: Optional[int] = None,
        default_deadline: Optional[float] = None,
        solver_options: Optional[Dict[str, Any]] = None,
        interner_capacity: int = 512,
        use_shared_memory: Optional[bool] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        breaker: Optional[CircuitBreaker] = None,
        fault_plan: Optional[Any] = None,
    ) -> None:
        if pool not in (None, *SERVICE_POOL_MODES):
            raise ValueError(
                f"unknown service pool mode {pool!r}; expected one of "
                f"{SERVICE_POOL_MODES}"
            )
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.workers = int(workers or 0)
        if pool is None:
            pool = "persistent" if self.workers > 1 else "serial"
        self.pool_mode = pool
        self.max_pending = max_pending
        if max_inflight is None:
            if pool != "serial":
                max_inflight = 2 * max(1, self.workers)
            else:
                max_inflight = max(1, self.workers)
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.default_deadline = default_deadline
        self.solver_options = dict(solver_options or {})
        self.interner = TreeInterner(capacity=interner_capacity)
        self.stats = ServiceStats()
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=breaker_threshold, cooldown=breaker_cooldown
        )
        self._fault_plan = fault_plan
        self._use_shared_memory = use_shared_memory
        self._engine = None
        self._thread_pool = None
        self._queue: "asyncio.Queue" = None  # created in start()
        self._inflight: "asyncio.Semaphore" = None
        self._idle: "asyncio.Event" = None
        self._dispatcher: "asyncio.Task" = None
        self._tasks: set = set()
        #: every admitted-but-unresponded request, queued *or* executing --
        #: the abort-close flush and the watchdog-leak seam iterate this
        self._pendings: set = set()
        self._pending_count = 0
        self._started = False
        self._accepting = False
        self._closed = False
        self._abort = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SolverService":
        """Start the dispatcher (idempotent); returns self for chaining."""
        if self._started:
            return self
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._inflight = asyncio.Semaphore(self.max_inflight)
        self._idle = asyncio.Event()
        self._idle.set()
        if self.pool_mode != "serial":
            from ..solvers.engine import SolveEngine

            # the arena toggle only exists on the persistent backend; other
            # backends take no construction options from the service
            backend_options: Dict[str, Any] = {}
            if self.pool_mode == "persistent" and self._use_shared_memory is not None:
                backend_options["use_shared_memory"] = self._use_shared_memory
            if self._fault_plan is not None:
                from ..faults import FaultyBackend
                from ..solvers.engine.backends import create_backend

                self._engine = SolveEngine(
                    backend=FaultyBackend(
                        create_backend(self.pool_mode, **backend_options),
                        self._fault_plan,
                    )
                )
            else:
                self._engine = SolveEngine(
                    backend=self.pool_mode, **backend_options
                )
        self._dispatcher = loop.create_task(self._dispatch_loop())
        self._started = True
        self._accepting = True
        log_event(
            _log, "service_started",
            pool=self.pool_mode, workers=self.workers,
            max_pending=self.max_pending, max_inflight=self.max_inflight,
        )
        return self

    async def __aenter__(self) -> "SolverService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    @property
    def pending(self) -> int:
        """Requests alive in the service (queued + executing)."""
        return self._pending_count

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    async def close(
        self, *, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop admission, settle every admitted request, release the engine.

        With ``drain=True`` (the default) every admitted request still runs
        to a real response before the workers go away.  With ``drain=False``
        the engine's stop flag is set, queued requests are flushed with
        ``closed`` responses, and not-yet-started solves are cancelled.
        ``timeout`` bounds the wait; stragglers are then flushed with
        ``closed`` responses as well, so no caller is left hanging.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        self._accepting = False
        if not drain:
            self._abort = True
            if self._engine is not None:
                self._engine.stop()
        self._queue.put_nowait(_SENTINEL)
        try:
            await asyncio.wait_for(self._dispatcher, timeout)
        except asyncio.TimeoutError:
            self._dispatcher.cancel()
        if self._tasks:
            tasks = set(self._tasks)
            if not drain:
                # abort: executing solves are cut loose *now*, not awaited --
                # their pendings settle in the flush below
                for task in tasks:
                    task.cancel()
            done, stragglers = await asyncio.wait(tasks, timeout=timeout)
            for task in stragglers:
                task.cancel()
        # whatever is still unresponded -- queued on the abort path, torn out
        # of an executing task, or past the drain timeout -- gets a typed
        # closed response; _finish also cancels its watchdog timer, so an
        # abort-close leaves no armed deadline timers behind (live_timers==0)
        for pending in list(self._pendings):
            if pending.done():
                self._pendings.discard(pending)
                continue
            self._finish(
                pending,
                error_response(
                    pending.request.id,
                    ServiceClosedError("service closed before the solve finished"),
                    tree_token=pending.request.tree_token,
                    algorithm=pending.request.algorithm,
                    total_seconds=perf_counter() - pending.request.accepted_at,
                ),
            )
        if self._engine is not None:
            self._engine.shutdown()
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
        log_event(
            _log, "service_closed",
            drain=drain, completed=self.stats.completed,
            rejected=self.stats.rejected, drained=self.stats.drained,
        )

    @property
    def live_timers(self) -> int:
        """Armed watchdog timers over unresponded requests.

        The regression seam of the close-path timer leak: after ``close()``
        -- graceful or abort -- this must be 0, or cancelled deadline timers
        would keep firing into a dead service.
        """
        return sum(1 for p in list(self._pendings) if p.timer is not None)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_nowait(self, request: ServiceRequest) -> "asyncio.Future":
        """Admit ``request`` and return the future of its response.

        Raises
        ------
        ServiceClosedError
            When the service is not started, closing or closed.
        CircuitOpenError
            When the engine circuit breaker is open -- the engine tier is
            failing, and admitting more work would only queue it onto a
            dead pool.
        QueueFullError
            When admission control finds ``max_pending`` requests alive --
            the request is *not* enqueued.
        """
        if not self._started or not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        if not self.breaker.allow():
            log_event(
                _log, "circuit_open", level=logging.WARNING,
                id=request.id, breaker=self.breaker.state,
            )
            raise CircuitOpenError(
                "engine circuit breaker is "
                f"{self.breaker.state}; back off for at least "
                f"{self.breaker.cooldown:g}s"
            )
        if self._pending_count >= self.max_pending:
            self.stats.rejected += 1
            log_event(
                _log, "request_rejected", level=logging.WARNING,
                id=request.id, pending=self._pending_count,
                max_pending=self.max_pending,
            )
            raise QueueFullError(
                f"request queue is full ({self._pending_count} pending, "
                f"bound {self.max_pending}); retry with backoff"
            )
        loop = asyncio.get_running_loop()
        request.accepted_at = perf_counter()
        if request.trace is None:
            # hand-built requests (tests, embedding callers) get a timeline
            # at admission; parse_request-built ones arrive with one
            request.trace = SpanTimeline(origin=request.accepted_at)
        request.trace.begin("queued", at=request.accepted_at)
        pending = _Pending(request, loop.create_future())
        self._pendings.add(pending)
        self._pending_count += 1
        self._idle.clear()
        self.stats.accepted += 1
        self.stats.max_queue_depth = max(
            self.stats.max_queue_depth, self._queue.qsize() + 1
        )
        if request.deadline is not None:
            pending.timer = loop.call_later(
                request.deadline, self._expire, pending
            )
        self._queue.put_nowait(pending)
        return pending.future

    async def submit(self, request: ServiceRequest) -> ServiceResponse:
        """Admit ``request`` and await its response (admission may raise)."""
        return await self.submit_nowait(request)

    async def handle(self, doc: Dict[str, Any]) -> ServiceResponse:
        """Full request lifecycle for one wire document; never raises.

        Parse + intern, admit, await.  Every failure -- malformed document,
        queue full, closed service -- comes back as an error *response*, so
        the front ends share one code path.
        """
        try:
            request = parse_request(
                doc, self.interner, default_deadline=self.default_deadline
            )
        except ServiceError as exc:
            self.stats.bad_requests += 1
            request_id = doc.get("id") if isinstance(doc, dict) else None
            log_event(
                _log, "bad_request", level=logging.WARNING,
                id=request_id, code=exc.code, message=str(exc),
            )
            return error_response(
                request_id if isinstance(request_id, str) else None, exc
            )
        try:
            future = self.submit_nowait(request)
        except ServiceError as exc:
            return error_response(
                request.id, exc,
                tree_token=request.tree_token, algorithm=request.algorithm,
            )
        return await future

    async def join(self) -> None:
        """Wait until no request is pending (the service is idle)."""
        await self._idle.wait()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _SENTINEL:
                break
            if item.done():  # deadline fired while queued
                continue
            await self._inflight.acquire()
            if item.done():  # ... or while waiting for an inflight slot
                self._inflight.release()
                continue
            if self._abort:
                self._inflight.release()
                self._finish(
                    item,
                    error_response(
                        item.request.id,
                        ServiceClosedError("service closed before dispatch"),
                        tree_token=item.request.tree_token,
                        algorithm=item.request.algorithm,
                        queue_seconds=perf_counter() - item.request.accepted_at,
                        total_seconds=perf_counter() - item.request.accepted_at,
                    ),
                )
                continue
            task = asyncio.get_running_loop().create_task(self._execute(item))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _execute(self, pending: _Pending) -> None:
        request = pending.request
        try:
            pending.state = "executing"
            pending.dispatched_at = perf_counter()
            if request.trace is not None:
                request.trace.end("queued", at=pending.dispatched_at)
                request.trace.begin("dispatch", at=pending.dispatched_at)
            cell = (
                request.tree,
                request.algorithm,
                request.memory,
                {**self.solver_options, **request.options},
            )
            try:
                report, tier = await self._run_cell(cell, pending)
            except asyncio.CancelledError:
                # the watchdog cancelled a not-yet-started engine future (or
                # an aborting close tore the pool down); the response -- a
                # deadline or closed error -- is already settled
                return
            except ServiceError as exc:
                self._respond_error(pending, exc)
                return
            except Exception as exc:
                self._respond_error(
                    pending,
                    SolverFailedError(f"{type(exc).__name__}: {exc}", cause=exc),
                )
                return
            if pending.done():
                # deadline fired mid-solve: the miss is already accounted,
                # the late report is dropped on the floor
                return
            end = perf_counter()
            if request.trace is not None:
                request.trace.close_open(at=end)  # settles the solve span
                request.trace.begin("report", at=end)
            # the degradation ladder: which tier actually answered, and
            # whether it sits below the engine tier the service was built on
            extras: Dict[str, Any] = {"tier": tier}
            if self._engine is not None and tier != self._engine.backend_name:
                extras["degraded"] = True
            self._finish(
                pending,
                ServiceResponse(
                    request_id=request.id,
                    status="ok",
                    algorithm=request.algorithm,
                    tree_token=request.tree_token,
                    report=report,
                    report_mode=request.report_mode,
                    queue_seconds=pending.dispatched_at - request.accepted_at,
                    solve_seconds=end - pending.dispatched_at,
                    total_seconds=end - request.accepted_at,
                    extras=extras,
                ),
            )
        finally:
            self._inflight.release()

    async def _run_cell(self, cell: Tuple, pending: _Pending):
        """Run one cell and name the tier that answered it.

        Returns ``(report, tier)`` where ``tier`` walks the degradation
        ladder: the engine backend's name when the engine answered,
        ``"threads"`` when a broken pool pushed the request onto the
        in-process thread fallback, ``"serial"`` when the service has no
        engine at all (``pool="serial"``).  Engine outcomes feed the circuit
        breaker: a pool crash is a failure, anything else -- including a
        solver-level exception, which proves the engine alive -- a success.
        """
        trace = pending.request.trace
        if self._engine is not None:
            from ..solvers.engine import EngineStoppedError

            try:
                exec_future = self._engine.submit(cell, self.workers)
            except EngineStoppedError:
                raise ServiceClosedError("engine is stopping") from None
            if exec_future is not None:
                pending.exec_future = exec_future
                if trace is not None:
                    trace.end("dispatch")
                    trace.begin("solve")
                from concurrent.futures.process import BrokenProcessPool

                try:
                    report = await self._await_engine_future(exec_future)
                except BrokenProcessPool:
                    # a worker crashed mid-request: feed the breaker, heal
                    # the backend, and give this request its answer
                    # in-process -- one rung down the ladder
                    self.breaker.record_failure()
                    global_fault_stats.record_retry("service", "broken_pool")
                    log_event(
                        _log, "pool_broken", level=logging.WARNING,
                        id=pending.request.id, breaker=self.breaker.state,
                    )
                    self._engine.reset()
                    pending.exec_future = None
                except asyncio.CancelledError:
                    raise
                except Exception:
                    self.breaker.record_success()
                    raise
                else:
                    self.breaker.record_success()
                    return report, self._engine.backend_name
        loop = asyncio.get_running_loop()
        if trace is not None:
            # thread fallback: the dispatch span (if still open) ends here;
            # after a broken-pool retry it is already closed and the second
            # solve stretch simply extends the summed solve duration
            trace.end_if_open("dispatch")
            trace.begin("solve")
        report = await loop.run_in_executor(self._threads(), _solve_task, cell)
        return report, ("threads" if self._engine is not None else "serial")

    @staticmethod
    async def _await_engine_future(exec_future):
        """Await any backend's future without blocking the event loop.

        In-process backends hand out :class:`concurrent.futures.Future`
        (bridged by ``asyncio.wrap_future``); dask futures only share the
        blocking ``result()`` surface, so they park on the default thread
        executor instead.
        """
        import concurrent.futures

        if isinstance(exec_future, concurrent.futures.Future):
            return await asyncio.wrap_future(exec_future)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, exec_future.result)

    def _threads(self):
        if self._thread_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.max_inflight,
                thread_name_prefix="repro-service",
            )
        return self._thread_pool

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _expire(self, pending: _Pending) -> None:
        """Watchdog: the request's deadline fired -- respond *now*."""
        if pending.done():
            return
        request = pending.request
        stage = pending.state
        now = perf_counter()
        if stage == "queued":
            queue_seconds = now - request.accepted_at
            solve_seconds = 0.0
        else:
            queue_seconds = pending.dispatched_at - request.accepted_at
            solve_seconds = now - pending.dispatched_at
        if pending.exec_future is not None:
            # cooperative cancellation: an engine future still in the pool
            # queue dies here; a running solve merely gets abandoned
            pending.exec_future.cancel()
        log_event(
            _log, "deadline_miss", level=logging.WARNING,
            id=request.id, stage=stage, deadline=request.deadline,
        )
        self._finish(
            pending,
            error_response(
                request.id,
                DeadlineError(
                    f"deadline of {request.deadline:g}s exceeded while {stage}",
                    stage=stage,
                ),
                tree_token=request.tree_token,
                algorithm=request.algorithm,
                queue_seconds=queue_seconds,
                solve_seconds=solve_seconds,
                total_seconds=now - request.accepted_at,
            ),
        )

    def _respond_error(self, pending: _Pending, error: ServiceError) -> None:
        if pending.done():
            return
        request = pending.request
        now = perf_counter()
        self._finish(
            pending,
            error_response(
                request.id, error,
                tree_token=request.tree_token, algorithm=request.algorithm,
                queue_seconds=pending.dispatched_at - request.accepted_at,
                solve_seconds=now - pending.dispatched_at,
                total_seconds=now - request.accepted_at,
            ),
        )

    def _finish(self, pending: _Pending, response: ServiceResponse) -> None:
        """Resolve one pending request exactly once and account it."""
        if pending.done():
            return
        if pending.timer is not None:
            pending.timer.cancel()
            pending.timer = None
        self._pendings.discard(pending)
        trace = pending.request.trace
        if trace is not None:
            # whatever stage the request died in is still open on the error
            # paths (deadline, drain, solver crash); settle it so the stages
            # account for all the elapsed time
            trace.close_open()
            response.stages = trace.durations()
        pending.future.set_result(response)
        self._pending_count -= 1
        if self._pending_count == 0:
            self._idle.set()
        error = response.error
        if response.ok:
            self.stats.completed += 1
            self.stats.record_latency(
                response.total_seconds,
                queue_seconds=response.queue_seconds,
                solve_seconds=response.solve_seconds,
            )
        elif isinstance(error, DeadlineError):
            if error.stage == "queued":
                self.stats.deadline_miss_queued += 1
            else:
                self.stats.deadline_miss_executing += 1
        elif isinstance(error, SolverFailedError):
            self.stats.solver_errors += 1
        elif isinstance(error, ServiceClosedError):
            self.stats.drained += 1
        log_event(
            _log, "request_complete", level=logging.DEBUG,
            id=response.request_id, status=response.status,
            algorithm=response.algorithm,
            total_seconds=response.total_seconds,
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Live stats document (the ``/stats`` and stdio ``op: stats`` body)."""
        doc = self.stats.snapshot()
        doc.update(
            pending=self._pending_count,
            queue_depth=self.queue_depth,
            max_pending=self.max_pending,
            max_inflight=self.max_inflight,
            pool=self.pool_mode,
            workers=self.workers,
            interned_trees=len(self.interner),
            interner_hits=self.interner.hits,
            interner_misses=self.interner.misses,
            accepting=self._accepting,
        )
        doc["breaker"] = self.breaker.snapshot()
        if self._engine is not None:
            doc["engine"] = self._engine.snapshot()
        return doc

    def metrics_registry(self) -> MetricsRegistry:
        """A fresh registry over the live metric state, built per scrape.

        Counters and gauges are snapshotted into the registry; the latency
        histograms are *attached* (the live objects, one source of truth).
        Building per scrape keeps the daemon free of a parallel metrics
        store that could drift from :class:`ServiceStats`.
        """
        from .. import __version__

        reg = MetricsRegistry()
        stats = self.stats
        reg.gauge(
            "repro_build_info", "Build/version marker (value is always 1).",
            labels={"version": __version__}, value=1,
        )
        reg.counter(
            "repro_service_accepted_total",
            "Requests admitted past admission control.",
            value=stats.accepted,
        )
        outcomes = {
            "completed": stats.completed,
            "rejected": stats.rejected,
            "bad_request": stats.bad_requests,
            "solver_error": stats.solver_errors,
            "deadline_queued": stats.deadline_miss_queued,
            "deadline_executing": stats.deadline_miss_executing,
            "drained": stats.drained,
        }
        for outcome, value in outcomes.items():
            reg.counter(
                "repro_service_requests_total",
                "Settled requests by outcome.",
                labels={"outcome": outcome}, value=value,
            )
        reg.attach(
            "repro_service_latency_seconds",
            "Total latency (admission to response) of completed requests.",
            stats.latency,
        )
        reg.attach(
            "repro_service_stage_seconds",
            "Per-stage latency of completed requests.",
            stats.queue_latency, {"stage": "queued"},
        )
        reg.attach(
            "repro_service_stage_seconds",
            "Per-stage latency of completed requests.",
            stats.solve_latency, {"stage": "solve"},
        )
        reg.gauge(
            "repro_service_pending", "Requests alive (queued + executing).",
            value=self._pending_count,
        )
        reg.gauge(
            "repro_service_queue_depth", "Requests waiting for dispatch.",
            value=self.queue_depth,
        )
        reg.gauge(
            "repro_service_max_pending", "Admission bound on live requests.",
            value=self.max_pending,
        )
        reg.gauge(
            "repro_service_max_inflight", "Concurrent solve bound.",
            value=self.max_inflight,
        )
        reg.gauge(
            "repro_service_accepting",
            "1 while admission is open, 0 during/after close.",
            value=1 if self._accepting else 0,
        )
        reg.gauge(
            "repro_service_queue_depth_max", "High-water mark of the queue.",
            value=stats.max_queue_depth,
        )
        reg.gauge(
            "repro_interner_trees", "Trees held by the interner LRU.",
            value=len(self.interner),
        )
        reg.counter(
            "repro_interner_hits_total", "Interner lookups served from cache.",
            value=self.interner.hits,
        )
        reg.counter(
            "repro_interner_misses_total", "Interner misses (tree builds).",
            value=self.interner.misses,
        )
        if self._engine is not None:
            engine = self._engine.snapshot()
            backend = {"backend": engine["backend"]}
            reg.counter(
                "repro_engine_submits_total",
                "Single-cell submissions to the solve engine.",
                labels=backend, value=engine["submits"],
            )
            reg.counter(
                "repro_engine_batches_total",
                "Batches mapped over the solve engine.",
                labels=backend, value=engine["batches"],
            )
            reg.counter(
                "repro_engine_serial_fallbacks_total",
                "Engine calls degraded to serial/in-process execution.",
                labels=backend, value=engine["serial_fallbacks"],
            )
            reg.counter(
                "repro_engine_broken_pools_total",
                "Worker-pool crashes healed by a pool reset.",
                labels=backend, value=engine["broken_pools"],
            )
            reg.counter(
                "repro_engine_retries_total",
                "Engine batch retries after retryable faults.",
                labels=backend, value=engine["retries"],
            )
            # backend sub-documents are capability-dependent: process and
            # thread backends expose a pool, only the process engine an arena
            pool = engine.get("pool")
            if pool is not None:
                reg.gauge(
                    "repro_engine_pool_workers", "Workers of the live pool.",
                    labels=backend, value=pool["workers"],
                )
                reg.counter(
                    "repro_engine_pool_creations_total",
                    "Worker pools built from scratch.",
                    labels=backend, value=pool["creations"],
                )
                reg.counter(
                    "repro_engine_pool_grows_total",
                    "Worker pools rebuilt larger.",
                    labels=backend, value=pool["grows"],
                )
                reg.counter(
                    "repro_engine_pool_resets_total",
                    "Broken worker pools discarded.",
                    labels=backend, value=pool["resets"],
                )
            arena = engine.get("arena")
            if arena is not None:
                for transport, value in (
                    ("shm", arena["shm_exports"]),
                    ("blob", arena["blob_exports"]),
                ):
                    reg.counter(
                        "repro_engine_arena_exports_total",
                        "Tree kernels shipped to the workers, by transport.",
                        labels={"transport": transport, **backend}, value=value,
                    )
                reg.counter(
                    "repro_engine_arena_reuses_total",
                    "Exports answered by an already-shipped segment.",
                    labels=backend, value=arena["reuses"],
                )
                reg.gauge(
                    "repro_engine_arena_segments",
                    "Live shared-memory segments.",
                    labels=backend, value=arena["live_segments"],
                )
        reg.gauge(
            "repro_circuit_state",
            "Engine circuit breaker state (closed=0, open=1, half_open=2).",
            value=self.breaker.state_code,
        )
        for transition, value in self.breaker.transition_items():
            reg.counter(
                "repro_circuit_transitions_total",
                "Circuit breaker state transitions.",
                labels={"transition": transition}, value=value,
            )
        reg.counter(
            "repro_circuit_rejections_total",
            "Requests refused while the circuit was open or half-open.",
            value=self.breaker.rejections,
        )
        for (layer, fault), value in global_fault_stats.retry_items():
            reg.counter(
                "repro_retry_attempts_total",
                "Retry attempts by resilience layer and fault class.",
                labels={"layer": layer, "fault": fault}, value=value,
            )
        for kind, value in global_fault_stats.injection_items():
            reg.counter(
                "repro_fault_injections_total",
                "Faults fired by the chaos injector, by kind.",
                labels={"kind": kind}, value=value,
            )
        reg.counter(
            "repro_checkpoint_cells_total",
            "Campaign cells journaled to checkpoint sidecars.",
            value=global_fault_stats.checkpoint_cells,
        )
        return reg

    def render_metrics(self) -> str:
        """The Prometheus text document (``GET /metrics``, ``op: metrics``)."""
        return render_prometheus(self.metrics_registry())
