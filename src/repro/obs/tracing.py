"""Per-request tracing: a span timeline across the service lifecycle.

A :class:`SpanTimeline` records named stages against one ``perf_counter``
origin.  The service daemon opens a timeline when a request document
arrives and records one span per lifecycle stage::

    parse -> intern -> queued -> dispatch -> solve -> report

Spans are explicit ``(name, start, end)`` records rather than nested
context managers because the daemon's stages cross ``await`` boundaries and
callbacks (the queue sits between admission and dispatch, the watchdog can
close a request from a timer).  The timeline is cheap -- a list of tuples,
no locks -- and renders two ways: :meth:`SpanTimeline.durations` (the
``timing.stages`` block of a :class:`~repro.service.protocol.ServiceResponse`)
and :meth:`SpanTimeline.to_list` (offset + duration per span, for log lines
and debugging).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SpanTimeline", "REQUEST_STAGES"]

#: the lifecycle stages of one service request, in order
REQUEST_STAGES = ("parse", "intern", "queued", "dispatch", "solve", "report")


class SpanTimeline:
    """Ordered named spans over one ``perf_counter`` origin."""

    __slots__ = ("origin", "_spans", "_open")

    def __init__(self, origin: Optional[float] = None) -> None:
        self.origin = perf_counter() if origin is None else origin
        self._spans: List[Tuple[str, float, float]] = []
        self._open: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def begin(self, name: str, at: Optional[float] = None) -> float:
        """Open span ``name``; returns the start stamp (absolute seconds)."""
        start = perf_counter() if at is None else at
        self._open[name] = start
        return start

    def end(self, name: str, at: Optional[float] = None) -> float:
        """Close span ``name`` opened by :meth:`begin`; returns its duration."""
        end = perf_counter() if at is None else at
        start = self._open.pop(name, self.origin)
        self.record(name, start, end)
        return end - start

    def record(self, name: str, start: float, end: float) -> None:
        """Add a closed span (absolute ``perf_counter`` stamps)."""
        self._spans.append((name, start, max(start, end)))

    def end_if_open(self, name: str, at: Optional[float] = None) -> bool:
        """Close span ``name`` only when it is open; True when it was.

        For paths reached more than one way (e.g. the daemon's thread
        fallback, entered both directly and after a broken-pool retry) where
        an unconditional :meth:`end` would fabricate an origin-anchored span.
        """
        if name not in self._open:
            return False
        self.end(name, at=at)
        return True

    def close_open(self, at: Optional[float] = None) -> None:
        """Close every still-open span at ``at`` (now by default).

        The settle-on-any-path hook: when a request dies early (deadline,
        drain, solver crash) whatever stage it was in is still open; closing
        it here makes the reported stages account for *all* the elapsed
        time, whichever path ended the request.
        """
        if not self._open:
            return
        stamp = perf_counter() if at is None else at
        for name, start in list(self._open.items()):
            self.record(name, start, stamp)
        self._open.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __contains__(self, name: str) -> bool:
        return any(span_name == name for span_name, _, _ in self._spans)

    # ------------------------------------------------------------------
    def durations(self) -> Dict[str, float]:
        """``{stage: seconds}`` in recording order (repeat names summed)."""
        out: Dict[str, float] = {}
        for name, start, end in self._spans:
            out[name] = out.get(name, 0.0) + (end - start)
        return out

    def to_list(self) -> List[Dict[str, Any]]:
        """Spans as offset/duration documents (offsets from the origin)."""
        return [
            {
                "stage": name,
                "offset_seconds": start - self.origin,
                "duration_seconds": end - start,
            }
            for name, start, end in self._spans
        ]

    @property
    def elapsed(self) -> float:
        """Seconds from the origin to the latest recorded span end."""
        if not self._spans:
            return 0.0
        return max(end for _, _, end in self._spans) - self.origin
