"""``repro.obs`` -- the observability layer: metrics, tracing, logs, reports.

One subsystem, four concerns, shared by every layer of the repo:

* :mod:`repro.obs.metrics` -- counters, gauges and **fixed-bucket mergeable
  streaming histograms** (bounded memory, quantiles that keep tracking the
  live distribution at any volume), plus the exact list-based
  :func:`percentile` helper;
* :mod:`repro.obs.tracing` -- :class:`SpanTimeline`, the per-request stage
  timeline the service daemon threads through
  accept -> admit -> intern -> dispatch -> engine -> solve -> report;
* :mod:`repro.obs.structlog` -- structured stdlib logging (key=value or
  JSON lines) with per-subsystem ``repro.*`` loggers;
* :mod:`repro.obs.exposition` -- Prometheus text rendering of a
  :class:`MetricsRegistry` (served by ``GET /metrics`` and the stdio
  ``op: metrics``);
* :mod:`repro.obs.report` -- the static HTML dashboard renderer over the
  committed ``BENCH_*.json`` trajectory (the ``repro-treemem report``
  subcommand; imported lazily, it needs nothing beyond the stdlib).

The design bias is *bounded state and one source of truth*: live metric
objects (the service's latency histograms, the engine's counters) are
attached to a registry at scrape time rather than mirrored into one.
"""

from .exposition import (
    PROMETHEUS_CONTENT_TYPE,
    parse_exposition,
    render_prometheus,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_bounds,
    exponential_bounds,
    percentile,
)
from .structlog import (
    LOG_LEVELS,
    JsonFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
    log_event,
)
from .tracing import REQUEST_STAGES, SpanTimeline

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "default_latency_bounds",
    "exponential_bounds",
    # exposition
    "render_prometheus",
    "parse_exposition",
    "PROMETHEUS_CONTENT_TYPE",
    # tracing
    "SpanTimeline",
    "REQUEST_STAGES",
    # logging
    "configure_logging",
    "get_logger",
    "log_event",
    "KeyValueFormatter",
    "JsonFormatter",
    "LOG_LEVELS",
]
