"""Prometheus text exposition (format version 0.0.4) for a registry.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the plain-text scrape format Prometheus and its ecosystem understand:

* one ``# HELP`` / ``# TYPE`` pair per metric family, samples after;
* label values escaped (``\\``, ``"`` and newlines);
* histograms rendered as cumulative ``_bucket{le="..."}`` series ending at
  ``le="+Inf"``, plus ``_sum`` and ``_count``.

The renderer is intentionally standalone -- the HTTP front end serves it
under ``GET /metrics`` and the stdio front end under ``op: metrics``, but
anything holding a registry can render (tests validate well-formedness by
parsing this output back).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from .metrics import Histogram, MetricsRegistry

__all__ = ["render_prometheus", "parse_exposition", "PROMETHEUS_CONTENT_TYPE"]

#: the Content-Type of the text exposition format
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    return f"{bound:.12g}"


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _histogram_lines(
    name: str, labels: Dict[str, str], histogram: Histogram
) -> List[str]:
    lines = []
    for bound, cumulative in histogram.cumulative_buckets():
        bucket_labels = dict(labels)
        bucket_labels["le"] = _format_bound(bound)
        lines.append(
            f"{name}_bucket{_labels_text(bucket_labels)} {cumulative}"
        )
    lines.append(f"{name}_sum{_labels_text(labels)} {_format_value(histogram.sum)}")
    lines.append(f"{name}_count{_labels_text(labels)} {histogram.count}")
    return lines


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text format (trailing newline included)."""
    lines: List[str] = []
    for name, help_text, kind, children in registry.collect():
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, metric in children:
            if kind == "histogram":
                lines.extend(_histogram_lines(name, labels, metric))
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_format_value(metric.value)}"
                )
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text back into ``{family: {...}}`` (validation aid).

    Not a full openmetrics parser -- just enough structure for tests and the
    CI well-formedness gate: per family the declared ``type``, ``help`` and
    the list of ``(sample_name, labels, value)`` triples, in order.  Raises
    :class:`ValueError` on malformed lines, duplicate TYPE declarations, or
    samples appearing before their family's TYPE line.
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base]["type"] == "histogram":
                return base
        return sample_name

    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"help": None, "type": None, "samples": []})
            families[name]["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram"):
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            entry = families.setdefault(
                name, {"help": None, "type": None, "samples": []}
            )
            if entry["type"] is not None:
                raise ValueError(f"duplicate TYPE declaration for {name!r}")
            entry["type"] = kind
            continue
        if line.startswith("#"):
            continue
        # a sample line: name{labels} value
        brace = line.find("{")
        labels: Dict[str, str] = {}
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ValueError(f"malformed sample line {line!r}")
            sample_name = line[:brace]
            label_text = line[brace + 1 : close]
            value_text = line[close + 1 :].strip()
            for part in filter(None, _split_labels(label_text)):
                label_name, _, label_value = part.partition("=")
                if not label_value.startswith('"') or not label_value.endswith('"'):
                    raise ValueError(f"unquoted label value in {line!r}")
                labels[label_name] = (
                    label_value[1:-1]
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
        else:
            sample_name, _, value_text = line.partition(" ")
        base = family_of(sample_name)
        if base not in families or families[base]["type"] is None:
            raise ValueError(f"sample {sample_name!r} precedes its TYPE line")
        value = float(value_text)
        families[base]["samples"].append((sample_name, labels, value))
    return families


def _split_labels(label_text: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    parts: List[str] = []
    current = []
    in_quotes = False
    escaped = False
    for ch in label_text:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if current:
        parts.append("".join(current))
    return parts
