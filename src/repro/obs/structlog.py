"""Structured logging on the stdlib: key=value or JSON lines, per subsystem.

The repo's daemons and benchmarks log *events with fields*, not prose.
Every logger lives under the ``repro`` root (``repro.service``,
``repro.engine``, ``repro.bench``, ...), the message is a short snake_case
event name, and the structured payload rides in ``record.fields``::

    log = get_logger("service")
    log_event(log, "request_complete", id="req-1", status="ok",
              total_seconds=0.0123)

Two formatters render the same records:

* :class:`KeyValueFormatter` -- ``2026-08-08T10:00:00Z INFO repro.service
  request_complete id=req-1 status=ok total_seconds=0.0123`` (values with
  spaces or quotes are double-quoted) -- the human default;
* :class:`JsonFormatter` -- one JSON object per line with ``ts``,
  ``level``, ``logger``, ``event`` and the fields inlined -- what log
  shippers want (``repro serve --log-json``).

:func:`configure_logging` installs a handler on the ``repro`` root logger
(idempotent: reconfiguring replaces the previous handler, so tests and
repeated CLI invocations never stack duplicates) and stops propagation, so
embedding applications keep full control of their own root logger.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, IO, Optional

__all__ = [
    "ROOT_LOGGER_NAME",
    "LOG_LEVELS",
    "get_logger",
    "log_event",
    "configure_logging",
    "KeyValueFormatter",
    "JsonFormatter",
]

ROOT_LOGGER_NAME = "repro"

#: CLI-facing level names (``--log-level``)
LOG_LEVELS = ("debug", "info", "warning", "error")


def get_logger(subsystem: str = "") -> logging.Logger:
    """The ``repro.<subsystem>`` logger (the bare root for ``""``)."""
    if not subsystem:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{subsystem}")


def log_event(
    logger: logging.Logger, event: str, *, level: int = logging.INFO, **fields: Any
) -> None:
    """Emit ``event`` with structured ``fields`` at ``level``.

    A thin convenience over ``logger.log`` that carries the fields on the
    record (``record.fields``), where both formatters pick them up; third
    parties using plain formatters still see the event name as the message.
    """
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"fields": fields})


def _timestamp(record: logging.LogRecord) -> str:
    parts = time.gmtime(record.created)
    return (
        f"{time.strftime('%Y-%m-%dT%H:%M:%S', parts)}."
        f"{int(record.msecs):03d}Z"
    )


def _record_fields(record: logging.LogRecord) -> Dict[str, Any]:
    fields = getattr(record, "fields", None)
    return fields if isinstance(fields, dict) else {}


class KeyValueFormatter(logging.Formatter):
    """``ts LEVEL logger event key=value ...`` -- grep-friendly lines."""

    @staticmethod
    def _format_value(value: Any) -> str:
        if isinstance(value, float):
            text = f"{value:.6g}"
        elif value is None:
            text = "null"
        elif isinstance(value, bool):
            text = "true" if value else "false"
        else:
            text = str(value)
        if any(ch in text for ch in (' ', '"', "=")) or not text:
            return '"' + text.replace('"', '\\"') + '"'
        return text

    def format(self, record: logging.LogRecord) -> str:
        head = (
            f"{_timestamp(record)} {record.levelname} {record.name} "
            f"{record.getMessage()}"
        )
        fields = _record_fields(record)
        if fields:
            head += " " + " ".join(
                f"{key}={self._format_value(value)}"
                for key, value in fields.items()
            )
        if record.exc_info:
            head += "\n" + self.formatException(record.exc_info)
        return head


class JsonFormatter(logging.Formatter):
    """One JSON object per line; fields inlined next to the envelope."""

    def format(self, record: logging.LogRecord) -> str:
        doc: Dict[str, Any] = {
            "ts": _timestamp(record),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in _record_fields(record).items():
            if key not in doc:
                doc[key] = value
        if record.exc_info:
            doc["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(doc, separators=(",", ":"), default=str)


def configure_logging(
    level: str = "info",
    *,
    json_lines: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Install a handler + formatter on the ``repro`` root logger.

    Idempotent: the previously installed repro handler (marked by an
    attribute, so foreign handlers are left alone) is replaced, never
    stacked.  Returns the configured root logger.
    """
    name = level.strip().lower()
    if name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LOG_LEVELS}"
        )
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(getattr(logging, name.upper()))
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_lines else KeyValueFormatter())
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    return root
