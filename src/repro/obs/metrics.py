"""Metrics core: counters, gauges and mergeable streaming histograms.

The service layer used to keep *raw latency lists* capped at a sample count
-- once the cap was hit, every later request was dropped from the
percentiles, which therefore silently froze on exactly the long-running
deployments that need them.  This module replaces that with the standard
production design:

* :class:`Counter` / :class:`Gauge` -- monotone and instantaneous scalars;
* :class:`Histogram` -- a **fixed-bucket** latency histogram: a static,
  exponentially-spaced bound ladder, one integer per bucket, plus running
  ``count`` / ``sum`` / ``min`` / ``max``.  Memory is bounded by the bucket
  count (not the observation count), quantiles stream (every observation
  keeps counting forever), and two histograms over the same ladder
  :meth:`~Histogram.merge` exactly -- the property that lets per-worker or
  per-cell histograms aggregate into one service-wide view;
* :class:`MetricsRegistry` -- a named collection of metric families (with
  optional labels) that :mod:`repro.obs.exposition` renders as Prometheus
  text format;
* :func:`percentile` -- the exact list-based linear-interpolation
  percentile, promoted here from ``service.daemon`` so the bench traffic
  client (which keeps its raw per-request list) and the tests share one
  implementation instead of importing a private helper.

Quantiles from a histogram are *approximate*: exact bucket identification,
linear interpolation inside the bucket, clamped to the observed min/max.
With the default latency ladder (12 buckets per decade) the relative error
is bounded by the bucket width, about 21% worst-case and far better in
practice -- and unlike the frozen-list design the estimate keeps tracking
the live distribution at any request volume.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "percentile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_latency_bounds",
    "exponential_bounds",
]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an ascending sequence (q in 0..100).

    The exact small-sample estimator (numpy's default ``linear`` method):
    rank ``q/100 * (n-1)`` interpolated between its neighbours.  Callers
    keeping raw sample lists (the traffic load generator) use this; callers
    with bounded memory use :class:`Histogram` instead.
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


def exponential_bounds(
    start: float, stop: float, *, per_decade: int = 12
) -> Tuple[float, ...]:
    """Exponentially-spaced bucket upper bounds from ``start`` to >= ``stop``.

    ``per_decade`` buckets per factor-of-10 bounds the relative quantile
    error at roughly ``10**(1/per_decade) - 1`` (about 21% at the default
    12), independent of how many observations stream in.
    """
    if start <= 0 or stop <= start:
        raise ValueError("need 0 < start < stop")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    decades = math.log10(stop / start)
    steps = int(math.ceil(decades * per_decade))
    bounds = [start * 10.0 ** (i / per_decade) for i in range(steps + 1)]
    # regenerate through round() so equal exponents give identical floats
    return tuple(round(b, 12 - int(math.floor(math.log10(abs(b))))) for b in bounds)


#: the default latency ladder: 10 microseconds to 100 seconds
_DEFAULT_LATENCY_BOUNDS = exponential_bounds(1e-5, 100.0, per_decade=12)


def default_latency_bounds() -> Tuple[float, ...]:
    """The shared latency bucket ladder (10us .. 100s, 12 buckets/decade)."""
    return _DEFAULT_LATENCY_BOUNDS


class Counter:
    """A monotonically increasing scalar."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, value: float = 0.0) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._value:g})"


class Gauge:
    """An instantaneous scalar that can move both ways."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, value: float = 0.0) -> None:
        self._value = float(value)

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self._value:g})"


class Histogram:
    """Fixed-bucket streaming histogram with mergeable counts.

    Buckets follow the Prometheus convention: ``bounds`` are the inclusive
    upper bounds (``value <= bound`` lands in that bucket), plus one
    implicit overflow bucket for everything beyond the last bound.  The
    structure is *bounded*: however many observations stream in, the state
    is ``len(bounds) + 1`` integers plus four scalars.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        if bounds is None:
            bounds = default_latency_bounds()
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        # observe() is called from watchdog callbacks and executor threads;
        # the lock keeps count/sum/buckets mutually consistent
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation (streaming; never drops a sample)."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram (same ladder)."""
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket ladders "
                f"({len(self.bounds)} vs {len(other.bounds)} bounds)"
            )
        with self._lock:
            for i, c in enumerate(other.counts):
                self.counts[i] += c
            self.count += other.count
            self.sum += other.sum
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (q in 0..100) of the observed stream.

        Exact bucket, linear interpolation within it, clamped to the
        observed ``[min, max]`` -- so a single-sample histogram returns the
        sample exactly, and no estimate ever leaves the observed range.
        """
        if self.count == 0:
            return 0.0
        if q <= 0:
            return self.min
        if q >= 100:
            return self.max
        target = (q / 100.0) * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else min(self.min, self.bounds[0])
                upper = self.bounds[index] if index < len(self.bounds) else self.max
                fraction = (target - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return max(self.min, min(self.max, estimate))
            cumulative += bucket_count
        return self.max  # pragma: no cover - cumulative always reaches count

    def percentiles(
        self, qs: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for the requested qs."""
        return {f"p{q:g}": self.quantile(q) for q in qs}

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, sum={self.sum:g}, "
            f"buckets={len(self.bounds) + 1})"
        )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsRegistry:
    """A named, ordered collection of metric families.

    Each *family* is one metric name with a help string and a kind; it holds
    one child per distinct label set (possibly the empty label set).  The
    registry is deliberately storage-agnostic: callers may create fresh
    metrics through :meth:`counter` / :meth:`gauge` / :meth:`histogram`, or
    :meth:`attach` live metric objects they already maintain (the service
    attaches its long-lived latency histograms at scrape time, so there is
    exactly one source of truth).
    """

    def __init__(self) -> None:
        # name -> (help, kind, [(labels tuple, metric), ...])
        self._families: "Dict[str, Tuple[str, str, List[Tuple[Tuple[Tuple[str, str], ...], Any]]]]" = {}
        self._order: List[str] = []

    # ------------------------------------------------------------------
    def attach(
        self,
        name: str,
        help_text: str,
        metric: Any,
        labels: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Register a live metric object under ``name`` and return it."""
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        kind = getattr(metric, "kind", None)
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unsupported metric object {metric!r}")
        label_items = tuple(
            (str(k), str(v)) for k, v in sorted((labels or {}).items())
        )
        for label_name, _ in label_items:
            if not _LABEL_NAME.match(label_name):
                raise ValueError(f"invalid label name {label_name!r}")
        family = self._families.get(name)
        if family is None:
            self._families[name] = (help_text, kind, [(label_items, metric)])
            self._order.append(name)
            return metric
        help_known, kind_known, children = family
        if kind_known != kind:
            raise ValueError(
                f"metric {name!r} already registered as {kind_known}, "
                f"cannot re-register as {kind}"
            )
        for existing_labels, _ in children:
            if existing_labels == label_items:
                raise ValueError(
                    f"metric {name!r} with labels {dict(label_items)} is "
                    "already registered"
                )
        children.append((label_items, metric))
        return metric

    def counter(
        self,
        name: str,
        help_text: str,
        *,
        labels: Optional[Dict[str, Any]] = None,
        value: float = 0.0,
    ) -> Counter:
        """Create and register a :class:`Counter` (optionally pre-set)."""
        return self.attach(name, help_text, Counter(value), labels)

    def gauge(
        self,
        name: str,
        help_text: str,
        *,
        labels: Optional[Dict[str, Any]] = None,
        value: float = 0.0,
    ) -> Gauge:
        """Create and register a :class:`Gauge` (optionally pre-set)."""
        return self.attach(name, help_text, Gauge(value), labels)

    def histogram(
        self,
        name: str,
        help_text: str,
        *,
        labels: Optional[Dict[str, Any]] = None,
        bounds: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Create and register a fresh :class:`Histogram`."""
        return self.attach(name, help_text, Histogram(bounds), labels)

    # ------------------------------------------------------------------
    def collect(
        self,
    ) -> Iterable[Tuple[str, str, str, List[Tuple[Dict[str, str], Any]]]]:
        """Yield ``(name, help, kind, [(labels_dict, metric), ...])`` families."""
        for name in self._order:
            help_text, kind, children = self._families[name]
            yield name, help_text, kind, [
                (dict(labels), metric) for labels, metric in children
            ]

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._families
