"""The BENCH trajectory dashboard: committed artifacts -> one static HTML page.

``repro-treemem report`` renders the repository's committed ``BENCH_*.json``
artifacts (the schema-v1 documents :mod:`repro.bench.artifact` writes) into a
self-contained dashboard -- no JavaScript dependencies, no network, inline
SVG -- suitable for committing next to the artifacts or uploading as a CI
artifact.  Sections:

* **headline tiles** -- artifact count, record volume, latest run's date and
  campaign wall time;
* **family timing trajectories** -- one sparkline per scenario family
  showing the mean best-time across the artifact sequence (the de-emphasized
  line + accent end-dot idiom: the trajectory is context, "now" is the datum);
* **traffic latency ladder** -- p50/p95/p99 per load cell of the newest
  traffic artifact, horizontal bars on a sequential blue ramp;
* **optimality ratios** -- mean postorder-vs-optimal ratio per family from
  the newest campaign artifact;
* **artifact table** -- the inventory, newest first.

Every chart carries ``<title>`` hover tooltips and a sibling ``<details>``
table view, identity is never encoded by color alone, and the palette
follows the repo's light/dark token sheet (``prefers-color-scheme`` plus a
``data-theme`` override hook).
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["load_artifacts", "render_dashboard", "write_dashboard"]

#: ordinal blue ramp (light mode) for the p50 < p95 < p99 ladder
_LADDER_LIGHT = ("#86b6ef", "#2a78d6", "#104281")
#: same ladder re-stepped for the dark surface (never darker than step 600)
_LADDER_DARK = ("#86b6ef", "#3987e5", "#184f95")


# ----------------------------------------------------------------------
# artifact loading
# ----------------------------------------------------------------------
def load_artifacts(paths: Sequence[Path]) -> List[Dict[str, Any]]:
    """Parse artifact documents, oldest first; unreadable files raise."""
    docs = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        if not isinstance(doc, dict) or "records" not in doc:
            raise ValueError(f"{path}: not a BENCH artifact (no 'records')")
        doc["_path"] = str(path)
        doc["_name"] = Path(path).name
        docs.append(doc)
    docs.sort(key=lambda d: str(d.get("created_utc", "")))
    return docs


def _families(doc: Dict[str, Any]) -> List[str]:
    return sorted({
        str(r.get("family", "?")) for r in doc.get("records", ())
    })


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _fmt_seconds(seconds: float) -> str:
    if seconds == 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.3g}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.3g}s"


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


# ----------------------------------------------------------------------
# data shaping
# ----------------------------------------------------------------------
def _family_trajectories(
    docs: Sequence[Dict[str, Any]],
) -> Dict[str, List[Tuple[str, float]]]:
    """family -> [(artifact name, mean best_time), ...] in artifact order."""
    out: Dict[str, List[Tuple[str, float]]] = {}
    for doc in docs:
        per_family: Dict[str, List[float]] = {}
        for record in doc.get("records", ()):
            time = record.get("best_time")
            if isinstance(time, (int, float)) and time >= 0:
                per_family.setdefault(str(record.get("family", "?")), []).append(
                    float(time)
                )
        for family, times in per_family.items():
            out.setdefault(family, []).append((doc["_name"], _mean(times)))
    return dict(sorted(out.items()))


def _latest_traffic(
    docs: Sequence[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    for doc in reversed(docs):
        if any(
            r.get("family") == "traffic" and isinstance(r.get("extras"), dict)
            for r in doc.get("records", ())
        ):
            return doc
    return None


def _latest_ratios(
    docs: Sequence[Dict[str, Any]],
) -> Tuple[Optional[str], Dict[str, float]]:
    """(artifact name, family -> mean optimality ratio) of the newest campaign."""
    for doc in reversed(docs):
        per_family: Dict[str, List[float]] = {}
        for record in doc.get("records", ()):
            ratio = record.get("optimality_ratio")
            if isinstance(ratio, (int, float)) and ratio > 0:
                per_family.setdefault(str(record.get("family", "?")), []).append(
                    float(ratio)
                )
        if per_family:
            return doc["_name"], {
                family: _mean(values)
                for family, values in sorted(per_family.items())
            }
    return None, {}


# ----------------------------------------------------------------------
# SVG pieces
# ----------------------------------------------------------------------
def _sparkline(
    points: Sequence[Tuple[str, float]], width: int = 220, height: int = 44
) -> str:
    """De-emphasized trajectory line + accent end dot (inline SVG)."""
    pad = 6
    values = [value for _, value in points]
    low, high = min(values), max(values)
    span = (high - low) or max(high, 1e-12)

    def xy(i: int, value: float) -> Tuple[float, float]:
        x = pad + (width - 2 * pad) * (i / max(1, len(points) - 1))
        y = height - pad - (height - 2 * pad) * ((value - low) / span)
        return round(x, 1), round(y, 1)

    coords = [xy(i, value) for i, (_, value) in enumerate(points)]
    polyline = " ".join(f"{x},{y}" for x, y in coords)
    end_x, end_y = coords[-1]
    titles = "; ".join(
        f"{name}: {_fmt_seconds(value)}" for name, value in points
    )
    line = ""
    if len(coords) > 1:
        line = (
            f'<polyline points="{polyline}" fill="none" '
            'stroke="var(--line-muted)" stroke-width="2" '
            'stroke-linejoin="round" stroke-linecap="round"/>'
        )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="{_esc(titles)}">'
        f"<title>{_esc(titles)}</title>"
        f"{line}"
        f'<circle cx="{end_x}" cy="{end_y}" r="4" fill="var(--accent)"/>'
        "</svg>"
    )


def _hbar_rounded(
    x: float, y: float, width: float, height: float, fill: str, title: str
) -> str:
    """Horizontal bar anchored at the baseline, rounded only at the data end."""
    r = min(4.0, width / 2.0, height / 2.0)
    path = (
        f"M{x},{y} h{max(0.0, width - r)} "
        f"a{r},{r} 0 0 1 {r},{r} v{max(0.0, height - 2 * r)} "
        f"a{r},{r} 0 0 1 -{r},{r} h-{max(0.0, width - r)} z"
    )
    return (
        f'<path d="{path}" fill="{fill}"><title>{_esc(title)}</title></path>'
    )


def _latency_ladder(doc: Dict[str, Any]) -> Tuple[str, str]:
    """(svg, table_html) of the p50/p95/p99 ladder per traffic cell."""
    cells = []
    for record in doc.get("records", ()):
        extras = record.get("extras") or {}
        if record.get("family") != "traffic" or "latency_p50" not in extras:
            continue
        cells.append((
            f"{record.get('scenario', '?')}/{record.get('instance', '?')}",
            float(extras["latency_p50"]),
            float(extras.get("latency_p95", extras["latency_p50"])),
            float(extras.get("latency_p99", extras["latency_p50"])),
        ))
    if not cells:
        return "", ""
    label_w, bar_h, gap, group_gap = 250, 10, 2, 14
    chart_w = 760
    plot_w = chart_w - label_w - 90
    group_h = 3 * bar_h + 2 * gap
    height = len(cells) * (group_h + group_gap) + 8
    peak = max(p99 for _, _, _, p99 in cells) or 1e-12
    parts = [
        f'<svg class="chart" width="{chart_w}" height="{height}" '
        f'viewBox="0 0 {chart_w} {height}" role="img" '
        'aria-label="Latency percentiles per traffic cell">'
    ]
    rows = []
    for index, (name, p50, p95, p99) in enumerate(cells):
        top = 4 + index * (group_h + group_gap)
        parts.append(
            f'<text x="{label_w - 10}" y="{top + group_h / 2 + 4}" '
            f'text-anchor="end" class="label">{_esc(name)}</text>'
        )
        for level, (quantile, value) in enumerate(
            (("p50", p50), ("p95", p95), ("p99", p99))
        ):
            y = top + level * (bar_h + gap)
            width = max(1.0, plot_w * value / peak)
            parts.append(_hbar_rounded(
                label_w, y, round(width, 1), bar_h,
                f"var(--ladder-{level})",
                f"{name} {quantile}: {_fmt_seconds(value)}",
            ))
        parts.append(
            f'<text x="{label_w + max(1.0, plot_w * p99 / peak) + 8:.1f}" '
            f'y="{top + group_h / 2 + 4}" class="value">'
            f"{_esc(_fmt_seconds(p99))} p99</text>"
        )
        rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td>{_fmt_seconds(p50)}</td><td>{_fmt_seconds(p95)}</td>"
            f"<td>{_fmt_seconds(p99)}</td></tr>"
        )
    parts.append("</svg>")
    table = (
        '<details><summary>Table view</summary><table>'
        "<thead><tr><th>cell</th><th>p50</th><th>p95</th><th>p99</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table></details>"
    )
    return "".join(parts), table


def _ratio_bars(ratios: Dict[str, float]) -> Tuple[str, str]:
    """(svg, table_html) of mean optimality ratio per family."""
    if not ratios:
        return "", ""
    label_w, bar_h, gap = 140, 18, 8
    chart_w = 620
    plot_w = chart_w - label_w - 90
    height = len(ratios) * (bar_h + gap) + 8
    peak = max(ratios.values()) or 1.0
    parts = [
        f'<svg class="chart" width="{chart_w}" height="{height}" '
        f'viewBox="0 0 {chart_w} {height}" role="img" '
        'aria-label="Mean optimality ratio per family">'
    ]
    rows = []
    for index, (family, ratio) in enumerate(ratios.items()):
        y = 4 + index * (bar_h + gap)
        width = max(1.0, plot_w * ratio / peak)
        parts.append(
            f'<text x="{label_w - 10}" y="{y + bar_h / 2 + 4}" '
            f'text-anchor="end" class="label">{_esc(family)}</text>'
        )
        parts.append(_hbar_rounded(
            label_w, y, round(width, 1), bar_h, "var(--accent)",
            f"{family}: mean ratio {ratio:.4f}",
        ))
        parts.append(
            f'<text x="{label_w + width + 8:.1f}" y="{y + bar_h / 2 + 4}" '
            f'class="value">{ratio:.3f}×</text>'
        )
        rows.append(f"<tr><td>{_esc(family)}</td><td>{ratio:.4f}</td></tr>")
    parts.append("</svg>")
    table = (
        '<details><summary>Table view</summary><table>'
        "<thead><tr><th>family</th><th>mean ratio</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></details>"
    )
    return "".join(parts), table


# ----------------------------------------------------------------------
# page assembly
# ----------------------------------------------------------------------
_CSS = """
:root {
  --surface: #fcfcfb; --surface-raised: #f4f4f2; --border: #e3e3df;
  --ink: #1a1a19; --ink-secondary: #565651; --ink-muted: #77776f;
  --accent: #2a78d6; --line-muted: #b9b9b3;
  --ladder-0: #86b6ef; --ladder-1: #2a78d6; --ladder-2: #104281;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --surface-raised: #232322; --border: #3a3a37;
    --ink: #f2f2f0; --ink-secondary: #b4b4ae; --ink-muted: #8b8b84;
    --accent: #3987e5; --line-muted: #55554f;
    --ladder-0: #86b6ef; --ladder-1: #3987e5; --ladder-2: #184f95;
  }
}
[data-theme="light"] {
  --surface: #fcfcfb; --surface-raised: #f4f4f2; --border: #e3e3df;
  --ink: #1a1a19; --ink-secondary: #565651; --ink-muted: #77776f;
  --accent: #2a78d6; --line-muted: #b9b9b3;
  --ladder-0: #86b6ef; --ladder-1: #2a78d6; --ladder-2: #104281;
}
[data-theme="dark"] {
  --surface: #1a1a19; --surface-raised: #232322; --border: #3a3a37;
  --ink: #f2f2f0; --ink-secondary: #b4b4ae; --ink-muted: #8b8b84;
  --accent: #3987e5; --line-muted: #55554f;
  --ladder-0: #86b6ef; --ladder-1: #3987e5; --ladder-2: #184f95;
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 32px 24px 64px; max-width: 920px;
  background: var(--surface); color: var(--ink);
  font: 15px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 36px 0 4px; }
.sub { color: var(--ink-secondary); margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 20px 0; }
.tile {
  background: var(--surface-raised); border: 1px solid var(--border);
  border-radius: 10px; padding: 12px 16px; min-width: 150px;
}
.tile .big { font-size: 26px; font-weight: 600; font-variant-numeric: tabular-nums; }
.tile .name { color: var(--ink-secondary); font-size: 13px; }
.tile .ctx { color: var(--ink-muted); font-size: 12px; }
.sparkrow {
  display: grid; grid-template-columns: 130px 230px 1fr; gap: 10px;
  align-items: center; padding: 6px 0; border-bottom: 1px solid var(--border);
}
.sparkrow .fam { color: var(--ink); font-weight: 500; }
.sparkrow .now { color: var(--ink-secondary); font-variant-numeric: tabular-nums; }
svg .label { fill: var(--ink-secondary); font-size: 12px; }
svg .value { fill: var(--ink-secondary); font-size: 12px; font-variant-numeric: tabular-nums; }
.legend { display: flex; gap: 16px; margin: 8px 0; color: var(--ink-secondary); font-size: 13px; }
.legend .swatch {
  display: inline-block; width: 12px; height: 12px; border-radius: 3px;
  margin-right: 6px; vertical-align: -1px;
}
table { border-collapse: collapse; margin: 8px 0; font-variant-numeric: tabular-nums; }
th, td { text-align: left; padding: 4px 14px 4px 0; border-bottom: 1px solid var(--border); }
th { color: var(--ink-secondary); font-weight: 500; font-size: 13px; }
details summary { cursor: pointer; color: var(--ink-muted); font-size: 13px; margin-top: 6px; }
.empty { color: var(--ink-muted); font-style: italic; }
"""


def _tile(big: str, name: str, ctx: str = "") -> str:
    ctx_html = f'<div class="ctx">{_esc(ctx)}</div>' if ctx else ""
    return (
        f'<div class="tile"><div class="big">{_esc(big)}</div>'
        f'<div class="name">{_esc(name)}</div>{ctx_html}</div>'
    )


def render_dashboard(docs: Sequence[Dict[str, Any]]) -> str:
    """The full standalone HTML page over parsed artifact documents."""
    total_records = sum(len(d.get("records", ())) for d in docs)
    latest = docs[-1] if docs else None
    tiles = [
        _tile(str(len(docs)), "artifacts"),
        _tile(str(total_records), "bench records"),
    ]
    if latest is not None:
        created = str(latest.get("created_utc", "?"))
        run = latest.get("run") or {}
        tiles.append(_tile(
            created.split("T")[0], "latest run",
            f"v{latest.get('version', '?')} · {latest['_name']}",
        ))
        campaign = run.get("campaign_seconds")
        if isinstance(campaign, (int, float)):
            tiles.append(_tile(
                _fmt_seconds(float(campaign)), "latest campaign wall time",
                f"workers={run.get('workers') or 0}",
            ))

    spark_rows = []
    for family, points in _family_trajectories(docs).items():
        spark_rows.append(
            '<div class="sparkrow">'
            f'<span class="fam">{_esc(family)}</span>'
            f"{_sparkline(points)}"
            f'<span class="now">{_esc(_fmt_seconds(points[-1][1]))} mean '
            f"best-time · {len(points)} runs</span></div>"
        )
    sparks = "".join(spark_rows) or '<p class="empty">no timing records</p>'

    traffic_doc = _latest_traffic(docs)
    if traffic_doc is not None:
        ladder_svg, ladder_table = _latency_ladder(traffic_doc)
        legend = (
            '<div class="legend">'
            '<span><span class="swatch" style="background:var(--ladder-0)"></span>p50</span>'
            '<span><span class="swatch" style="background:var(--ladder-1)"></span>p95</span>'
            '<span><span class="swatch" style="background:var(--ladder-2)"></span>p99</span>'
            "</div>"
        )
        traffic_section = (
            f'<p class="sub">from {_esc(traffic_doc["_name"])}</p>'
            f"{legend}{ladder_svg}{ladder_table}"
        )
    else:
        traffic_section = '<p class="empty">no traffic artifacts</p>'

    ratio_name, ratios = _latest_ratios(docs)
    if ratios:
        ratio_svg, ratio_table = _ratio_bars(ratios)
        ratio_section = (
            f'<p class="sub">postorder vs optimal, from {_esc(ratio_name)}</p>'
            f"{ratio_svg}{ratio_table}"
        )
    else:
        ratio_section = '<p class="empty">no optimality-ratio records</p>'

    inventory_rows = []
    for doc in reversed(docs):
        run = doc.get("run") or {}
        campaign = run.get("campaign_seconds")
        inventory_rows.append(
            f"<tr><td>{_esc(doc['_name'])}</td>"
            f"<td>{_esc(doc.get('created_utc', '?'))}</td>"
            f"<td>{_esc(doc.get('version', '?'))}</td>"
            f"<td>{len(doc.get('records', ()))}</td>"
            f"<td>{_esc(', '.join(_families(doc)))}</td>"
            f"<td>{_fmt_seconds(float(campaign)) if isinstance(campaign, (int, float)) else '-'}</td></tr>"
        )
    inventory = (
        "<table><thead><tr><th>artifact</th><th>created</th><th>version</th>"
        "<th>records</th><th>families</th><th>campaign</th></tr></thead>"
        f"<tbody>{''.join(inventory_rows)}</tbody></table>"
        if inventory_rows else '<p class="empty">no artifacts found</p>'
    )

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>BENCH trajectory</title>
<style>{_CSS}</style>
</head>
<body>
<h1>BENCH trajectory</h1>
<p class="sub">repro-treemem benchmark artifacts, rendered by
<code>repro-treemem report</code></p>
<div class="tiles">{''.join(tiles)}</div>
<h2>Family timing trajectories</h2>
<p class="sub">mean best-time per scenario family across the artifact
sequence (oldest → newest; dot marks the newest run)</p>
{sparks}
<h2>Traffic latency ladder</h2>
{traffic_section}
<h2>Optimality ratios</h2>
{ratio_section}
<h2>Artifacts</h2>
{inventory}
</body>
</html>
"""


def write_dashboard(paths: Sequence[Path], output: Path) -> Path:
    """Render ``paths`` into ``output`` (HTML); returns the output path."""
    docs = load_artifacts(paths)
    output = Path(output)
    output.write_text(render_dashboard(docs), encoding="utf-8")
    return output
