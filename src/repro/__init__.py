"""repro -- memory-optimal tree traversals for sparse matrix factorization.

A from-scratch reproduction of *"On optimal tree traversals for sparse matrix
factorization"* (Jacquelin, Marchal, Robert, Uçar; IPPS 2011).

The library is organised in seven layers:

``repro.core``
    Task-tree model, traversal checkers, the three MinMemory algorithms
    (``PostOrder``, ``Liu``, ``MinMem``), the MinIO out-of-core scheduler with
    its six eviction heuristics, exhaustive oracles and pebble-game special
    cases.  Every solver hot path runs on the flat array-backed
    :class:`TreeKernel` of :mod:`repro.core.kernel` by default
    (``engine="reference"`` selects the original per-node implementations).
``repro.sparse``
    The sparse-matrix substrate that produces the assembly trees the paper
    evaluates on: matrix generators, fill-reducing orderings, elimination
    trees, symbolic factorization, supernode amalgamation and a multifrontal
    Cholesky engine.  The symbolic pipeline (etree, column counts, column
    patterns, amalgamation) follows the same ``engine="kernel"|"reference"``
    convention as the solvers: vectorized flat-array implementations by
    default, the per-entry originals as the test oracle.
``repro.generators``
    Synthetic tree families: harpoon graphs (Theorems 1 and 2), random-weight
    trees (Section VI-E), and parametric shapes.
``repro.solvers``
    The unified entry point: a registry of every algorithm exposed under a
    common name, the :class:`SolveReport` result type, the
    ``solve``/``solve_many``/``compare`` facade, and the persistent
    shared-memory batch engine (``repro.solvers.engine``) that fans
    parallel batches over a reusable worker pool, shipping each tree's
    kernel to the workers exactly once.
``repro.service``
    Solver-as-a-service: a long-lived asyncio daemon over the batch engine
    with a bounded request queue, admission control, per-request deadlines
    and content-token tree interning, behind HTTP/JSON and NDJSON stdio
    front ends (``repro serve``).
``repro.analysis``
    Dolan--Moré performance profiles, statistics tables, dataset builders and
    the experiment drivers that regenerate every table and figure of the
    paper.
``repro.bench``
    The benchmark subsystem: a decorator-based registry of *scenarios*
    (tree family x sizes x algorithms x memory budgets), an independent
    schedule-replay engine that re-validates every reported schedule, a
    campaign-planning runner with warmup/repeat timing that fans each
    scenario's full cell grid through the batch engine, and
    schema-versioned ``BENCH_<timestamp>.json`` artifacts with a regression
    ``compare`` mode.

Quickstart::

    from repro import Tree, solve, compare

    t = Tree()
    t.add_node(0, f=0.0, n=1.0)
    t.add_node(1, parent=0, f=4.0, n=2.0)
    t.add_node(2, parent=0, f=3.0, n=1.0)

    report = solve(t, "minmem")            # the paper's MinMem algorithm
    print(report.peak_memory, report.traversal.order)

    print(solve(t, "postorder").memory)    # best postorder traversal
    print(solve(t, "liu").memory)          # Liu's exact algorithm

    print(compare(t).format_table())       # ranked side-by-side reports

    # out-of-core scheduling under a memory bound
    print(solve(t, "minio", memory=t.max_mem_req(), heuristic="lsnf").io_volume)

Batches of trees fan out across worker processes::

    from repro import solve_many

    results = solve_many(trees, ["postorder", "minmem"], workers=4)

Benchmarks run through the scenario registry of :mod:`repro.bench` -- from
Python or via the ``bench`` subcommand::

    repro-treemem bench --list                 # enumerate the scenarios
    repro-treemem bench --filter minmem --json # run + write BENCH_*.json
    repro-treemem bench --compare OLD NEW      # exit 1 on regressions

Every emitted schedule is replay-validated: an independent engine re-executes
it step by step and recomputes peak memory and I/O volume from scratch (see
:mod:`repro.bench.replay`).

The pre-registry entry points (``best_postorder``, ``liu_optimal_traversal``,
``min_mem``, ``run_out_of_core``, ...) remain fully supported and are
re-exported below; ``solve`` is a thin dispatch layer over them.
"""

from .core import (
    BOTTOMUP,
    TOPDOWN,
    ExploreResult,
    ExploreSolver,
    KernelExploreSolver,
    LiuResult,
    MemoryProfile,
    MinMemResult,
    OutOfCoreSchedule,
    PostOrderResult,
    Traversal,
    TraversalError,
    Tree,
    TreeKernel,
    TreeValidationError,
    best_postorder,
    chain_tree,
    check_in_core,
    check_out_of_core,
    from_edges,
    from_liu_model,
    from_networkx,
    from_parent_list,
    from_replacement_model,
    is_postorder,
    is_topological,
    liu_min_memory,
    liu_optimal_traversal,
    memory_profile,
    min_mem,
    min_memory,
    peak_memory,
    postorder_with_rule,
    star_tree,
    uniform_weights,
)
from .core.minio import HEURISTICS, io_volume, run_out_of_core
from .core.serialize import load_tree, save_tree
from .solvers import (
    Comparison,
    SolveReport,
    SolverSpec,
    UnknownSolverError,
    compare,
    get_solver,
    list_solvers,
    register_solver,
    solve,
    solve_many,
)

__version__ = "1.10.0"

__all__ = [
    "__version__",
    "Tree",
    "TreeKernel",
    "TreeValidationError",
    "Traversal",
    "TraversalError",
    "OutOfCoreSchedule",
    "MemoryProfile",
    "TOPDOWN",
    "BOTTOMUP",
    "ExploreSolver",
    "ExploreResult",
    "KernelExploreSolver",
    "LiuResult",
    "MinMemResult",
    "PostOrderResult",
    "best_postorder",
    "postorder_with_rule",
    "liu_optimal_traversal",
    "liu_min_memory",
    "min_mem",
    "min_memory",
    "memory_profile",
    "peak_memory",
    "check_in_core",
    "check_out_of_core",
    "is_topological",
    "is_postorder",
    "from_parent_list",
    "from_edges",
    "from_networkx",
    "from_replacement_model",
    "from_liu_model",
    "chain_tree",
    "star_tree",
    "uniform_weights",
    "HEURISTICS",
    "run_out_of_core",
    "io_volume",
    "save_tree",
    "load_tree",
    # unified solver facade
    "solve",
    "solve_many",
    "compare",
    "Comparison",
    "SolveReport",
    "SolverSpec",
    "UnknownSolverError",
    "register_solver",
    "get_solver",
    "list_solvers",
]
