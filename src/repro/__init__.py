"""repro -- memory-optimal tree traversals for sparse matrix factorization.

A from-scratch reproduction of *"On optimal tree traversals for sparse matrix
factorization"* (Jacquelin, Marchal, Robert, Uçar; IPPS 2011).

The library is organised in four layers:

``repro.core``
    Task-tree model, traversal checkers, the three MinMemory algorithms
    (``PostOrder``, ``Liu``, ``MinMem``), the MinIO out-of-core scheduler with
    its six eviction heuristics, exhaustive oracles and pebble-game special
    cases.
``repro.sparse``
    The sparse-matrix substrate that produces the assembly trees the paper
    evaluates on: matrix generators, fill-reducing orderings, elimination
    trees, symbolic factorization, supernode amalgamation and a multifrontal
    Cholesky engine.
``repro.generators``
    Synthetic tree families: harpoon graphs (Theorems 1 and 2), random-weight
    trees (Section VI-E), and parametric shapes.
``repro.analysis``
    Dolan--Moré performance profiles, statistics tables, dataset builders and
    the experiment drivers that regenerate every table and figure of the
    paper.

Quickstart::

    from repro import Tree, best_postorder, liu_optimal_traversal, min_mem

    t = Tree()
    t.add_node(0, f=0.0, n=1.0)
    t.add_node(1, parent=0, f=4.0, n=2.0)
    t.add_node(2, parent=0, f=3.0, n=1.0)

    print(best_postorder(t).memory)        # best postorder traversal
    print(liu_optimal_traversal(t).memory) # Liu's exact algorithm
    print(min_mem(t).memory)               # the paper's MinMem algorithm
"""

from .core import (
    BOTTOMUP,
    TOPDOWN,
    ExploreResult,
    ExploreSolver,
    LiuResult,
    MemoryProfile,
    MinMemResult,
    OutOfCoreSchedule,
    PostOrderResult,
    Traversal,
    TraversalError,
    Tree,
    TreeValidationError,
    best_postorder,
    chain_tree,
    check_in_core,
    check_out_of_core,
    from_edges,
    from_liu_model,
    from_networkx,
    from_parent_list,
    from_replacement_model,
    is_postorder,
    is_topological,
    liu_min_memory,
    liu_optimal_traversal,
    memory_profile,
    min_mem,
    min_memory,
    peak_memory,
    postorder_with_rule,
    star_tree,
    uniform_weights,
)
from .core.minio import HEURISTICS, io_volume, run_out_of_core

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Tree",
    "TreeValidationError",
    "Traversal",
    "TraversalError",
    "OutOfCoreSchedule",
    "MemoryProfile",
    "TOPDOWN",
    "BOTTOMUP",
    "ExploreSolver",
    "ExploreResult",
    "LiuResult",
    "MinMemResult",
    "PostOrderResult",
    "best_postorder",
    "postorder_with_rule",
    "liu_optimal_traversal",
    "liu_min_memory",
    "min_mem",
    "min_memory",
    "memory_profile",
    "peak_memory",
    "check_in_core",
    "check_out_of_core",
    "is_topological",
    "is_postorder",
    "from_parent_list",
    "from_edges",
    "from_networkx",
    "from_replacement_model",
    "from_liu_model",
    "chain_tree",
    "star_tree",
    "uniform_weights",
    "HEURISTICS",
    "run_out_of_core",
    "io_volume",
]
