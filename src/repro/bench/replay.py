"""Schedule replay: an independent execution oracle for solver outputs.

Every solver of the registry returns a :class:`~repro.solvers.SolveReport`
whose headline numbers (peak memory, I/O volume) are computed *inside* the
algorithm.  This module re-executes the reported schedule step by step with
its own memory accounting and recomputes those numbers from scratch, so a
bug in a solver's bookkeeping cannot silently propagate into benchmark
artifacts or papers built on them.

* :func:`replay_traversal` replays an in-core traversal (full, or a
  top-down prefix for partial ``explore`` runs) and returns its peak memory;
* :func:`replay_schedule` replays an out-of-core schedule (traversal plus
  eviction steps), recomputing the peak *resident* memory and the I/O
  volume while enforcing every constraint of the paper's Algorithm 2;
* :func:`replay_report` dispatches on the report shape and *validates* the
  replayed metrics against the ones the solver claimed, raising
  :class:`ReplayMismatch` on any disagreement.

The replay shares no *accounting logic* with :mod:`repro.core.traversal` or
the MinIO scheduler -- it re-executes every schedule with its own
bookkeeping, which is what makes it usable as a cross-solver test oracle.
Two representations are available behind the ``engine`` keyword:
``"kernel"`` (default) replays on the flat index arrays of
:mod:`repro.core.kernel`; ``"reference"`` is the original implementation
written against the raw :class:`Tree` accessors only, and is what the
kernel-equivalence tests use as the independent oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from ..core.traversal import BOTTOMUP, TOPDOWN, OutOfCoreSchedule, Traversal
from ..core.tree import Tree
from ..solvers.report import SolveReport

__all__ = [
    "ReplayError",
    "ReplayMismatch",
    "ReplayResult",
    "replay_traversal",
    "replay_schedule",
    "replay_report",
]

NodeId = Hashable

#: relative tolerance for float metric comparisons; solver metrics are sums
#: of user-scale weights, so honest recomputations agree far below this
_REL_TOL = 1e-9
_ABS_TOL = 1e-9


class ReplayError(ValueError):
    """Raised when a schedule cannot be executed (infeasible or malformed)."""


class ReplayMismatch(ReplayError):
    """Raised when a replay disagrees with the metrics a solver reported."""


@dataclass(frozen=True)
class ReplayResult:
    """Metrics recomputed by replaying a schedule.

    Attributes
    ----------
    peak_memory:
        Largest memory simultaneously in use over the whole execution.  For
        out-of-core schedules this is the peak *resident* size.
    io_volume:
        Total volume written to secondary memory (``0.0`` in-core).
    steps:
        Number of nodes executed (smaller than the tree for partial runs).
    evictions:
        Number of files written to secondary memory.
    complete:
        True when every node of the tree was executed.
    """

    peak_memory: float
    io_volume: float = 0.0
    steps: int = 0
    evictions: int = 0
    complete: bool = True


def _close(a: float, b: float) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)


# ----------------------------------------------------------------------
# in-core replay
# ----------------------------------------------------------------------
def replay_traversal(
    tree: Tree,
    traversal: Traversal,
    *,
    partial: bool = False,
    engine: str = "kernel",
) -> ReplayResult:
    """Re-execute an in-core traversal and recompute its peak memory.

    Parameters
    ----------
    tree : Tree or TreeKernel
        The task tree (a flat :class:`~repro.core.kernel.TreeKernel` is
        accepted directly).
    traversal : Traversal
        The node order, in either convention.  Unless ``partial`` is set the
        order must be a permutation of the tree nodes.
    partial : bool
        Allow a strict prefix of a top-down execution (as produced by a
        budget-limited ``explore`` run).  Partial bottom-up replays are not
        defined and raise :class:`ReplayError`.
    engine : str
        ``"kernel"`` (default) replays on the flat index arrays of
        :mod:`repro.core.kernel`; ``"reference"`` replays against the raw
        :class:`Tree` accessors (the original oracle).  Both enforce the
        same constraints and recompute the same metrics.

    Returns
    -------
    ReplayResult
        The recomputed peak memory, step count, and completeness flag.

    Raises
    ------
    ReplayError
        On duplicate or unknown nodes, precedence violations, or an
        incomplete order without ``partial``.
    """
    if engine not in ("kernel", "reference"):
        raise ReplayError(f"unknown engine {engine!r}; expected 'kernel' or 'reference'")
    if engine == "kernel":
        from ..core.kernel import kernel_replay_traversal

        kern = tree.kernel() if isinstance(tree, Tree) else tree
        try:
            order_idx = kern.order_to_indices(traversal.order)
        except KeyError as exc:
            raise ReplayError(
                f"node {exc.args[0]!r} is not in the tree"
            ) from None
        try:
            peak, steps, complete = kernel_replay_traversal(
                kern,
                order_idx,
                topdown=traversal.convention == TOPDOWN,
                partial=partial,
            )
        except ValueError as exc:
            raise ReplayError(str(exc)) from None
        return ReplayResult(peak_memory=peak, steps=steps, complete=complete)

    if not isinstance(tree, Tree):
        tree = tree.to_tree()
    order = tuple(traversal.order)
    executed: Dict[NodeId, int] = {}
    for step, node in enumerate(order):
        if node not in tree:
            raise ReplayError(f"step {step}: node {node!r} is not in the tree")
        if node in executed:
            raise ReplayError(f"step {step}: node {node!r} executed twice")
        executed[node] = step
    complete = len(order) == tree.size
    if not complete and (not partial or traversal.convention != TOPDOWN):
        raise ReplayError(
            f"order covers {len(order)} of {tree.size} nodes; "
            "only top-down replays may be partial"
        )

    if traversal.convention == TOPDOWN:
        if order and order[0] != tree.root:
            raise ReplayError("top-down execution must start at the root")
        resident = tree.f(tree.root) if order else 0.0
        peak = resident
        for step, node in enumerate(order):
            parent = tree.parent(node)
            if parent is not None and executed.get(parent, step) >= step:
                raise ReplayError(
                    f"step {step}: node {node!r} executed before its parent"
                )
            children_size = sum(tree.f(c) for c in tree.children(node))
            peak = max(peak, resident + tree.n(node) + children_size)
            resident += children_size - tree.f(node)
        return ReplayResult(
            peak_memory=peak,
            steps=len(order),
            complete=complete,
        )

    # bottom-up: every child strictly before its parent, full permutation
    resident = 0.0
    peak = 0.0
    for step, node in enumerate(order):
        for child in tree.children(node):
            if executed[child] >= step:
                raise ReplayError(
                    f"step {step}: node {node!r} executed before child {child!r}"
                )
        children_size = sum(tree.f(c) for c in tree.children(node))
        peak = max(peak, resident + tree.n(node) + tree.f(node))
        resident += tree.f(node) - children_size
    return ReplayResult(peak_memory=peak, steps=len(order), complete=True)


# ----------------------------------------------------------------------
# out-of-core replay
# ----------------------------------------------------------------------
def replay_schedule(
    tree: Tree,
    schedule: OutOfCoreSchedule,
    *,
    memory: Optional[float] = None,
    engine: str = "kernel",
) -> ReplayResult:
    """Re-execute an out-of-core schedule, recomputing peak and I/O volume.

    The replay enforces the constraints of the paper's Algorithm 2: a file
    may only be evicted after it has been produced and before its owner
    executes, never twice, and -- when ``memory`` is given -- the resident
    set plus the executing node must fit the bound at every step.

    Parameters
    ----------
    tree : Tree or TreeKernel
        The task tree (a flat :class:`~repro.core.kernel.TreeKernel` is
        accepted directly).
    schedule : OutOfCoreSchedule
        Node order plus eviction steps.  Bottom-up orders are reversed into
        the top-down convention first (the eviction steps must then refer to
        the reversed order, as everywhere else in the library).
    memory : float, optional
        Optional main-memory bound to validate against.  ``None`` replays
        without a bound and only recomputes the metrics.
    engine : str
        ``"kernel"`` (default) replays on the flat index arrays of
        :mod:`repro.core.kernel`; ``"reference"`` replays against the raw
        :class:`Tree` accessors (the original oracle).

    Returns
    -------
    ReplayResult
        The recomputed peak resident memory, I/O volume, and counters.

    Raises
    ------
    ReplayError
        On any violated constraint.
    """
    if engine not in ("kernel", "reference"):
        raise ReplayError(f"unknown engine {engine!r}; expected 'kernel' or 'reference'")
    traversal = schedule.traversal
    if traversal.convention == BOTTOMUP:
        traversal = traversal.reversed()

    if engine == "kernel":
        from ..core.kernel import kernel_replay_schedule

        kern = tree.kernel() if isinstance(tree, Tree) else tree
        try:
            order_idx = kern.order_to_indices(traversal.order)
        except KeyError:
            raise ReplayError(
                "schedule order is not a permutation of the tree nodes"
            ) from None
        index = kern.index
        evictions_idx = {}
        for victim, step in schedule.evictions.items():
            j = index.get(victim)
            if j is None:
                raise ReplayError(f"eviction of unknown node {victim!r}")
            evictions_idx[j] = step
        try:
            peak, io_total, n_evictions = kernel_replay_schedule(
                kern,
                order_idx,
                evictions_idx,
                memory=memory,
                rel_tol=_REL_TOL,
                abs_tol=_ABS_TOL,
            )
        except ValueError as exc:
            raise ReplayError(str(exc)) from None
        return ReplayResult(
            peak_memory=peak,
            io_volume=io_total,
            steps=len(order_idx),
            evictions=n_evictions,
            complete=True,
        )

    if not isinstance(tree, Tree):
        tree = tree.to_tree()
    order = tuple(traversal.order)
    if len(order) != tree.size or set(order) != set(tree.nodes()):
        raise ReplayError("schedule order is not a permutation of the tree nodes")
    position = {node: step for step, node in enumerate(order)}

    evict_at: Dict[int, list] = {}
    for victim, step in schedule.evictions.items():
        if victim not in tree:
            raise ReplayError(f"eviction of unknown node {victim!r}")
        if not 0 <= step < len(order):
            raise ReplayError(f"eviction step {step} of {victim!r} out of range")
        if position[victim] <= step:
            raise ReplayError(
                f"node {victim!r} evicted at step {step} but executes at "
                f"step {position[victim]}; files must be evicted strictly "
                "before their owner runs"
            )
        evict_at.setdefault(step, []).append(victim)

    resident: Dict[NodeId, float] = {tree.root: tree.f(tree.root)}
    resident_size = tree.f(tree.root)
    on_disk = set()
    peak = resident_size
    io_total = 0.0

    for step, node in enumerate(order):
        for victim in evict_at.get(step, ()):  # evictions happen before step
            if victim not in resident:
                raise ReplayError(
                    f"step {step}: evicted file {victim!r} is not resident "
                    "(not produced yet, or already written out)"
                )
            resident_size -= resident.pop(victim)
            on_disk.add(victim)
            io_total += tree.f(victim)
        if node in on_disk:  # read the input file back from secondary memory
            on_disk.discard(node)
            resident[node] = tree.f(node)
            resident_size += tree.f(node)
        if node not in resident:
            raise ReplayError(
                f"step {step}: input file of {node!r} is not resident; "
                "the parent has not executed"
            )
        children_size = sum(tree.f(c) for c in tree.children(node))
        step_peak = resident_size + tree.n(node) + children_size
        if memory is not None and step_peak > memory * (1.0 + _REL_TOL) + _ABS_TOL:
            raise ReplayError(
                f"step {step}: executing {node!r} needs {step_peak:.6g} "
                f"but the memory bound is {memory:.6g}"
            )
        peak = max(peak, step_peak)
        resident_size -= resident.pop(node)
        for child in tree.children(node):
            resident[child] = tree.f(child)
            resident_size += tree.f(child)

    if on_disk:
        raise ReplayError(f"files never read back: {sorted(map(repr, on_disk))}")
    return ReplayResult(
        peak_memory=peak,
        io_volume=io_total,
        steps=len(order),
        evictions=len(schedule.evictions),
        complete=True,
    )


# ----------------------------------------------------------------------
# report validation
# ----------------------------------------------------------------------
def replay_report(
    tree: Tree, report: SolveReport, *, engine: str = "kernel"
) -> ReplayResult:
    """Replay a :class:`SolveReport` and validate its claimed metrics.

    Out-of-core reports are replayed through :func:`replay_schedule` under
    their ``extras["memory_limit"]`` bound (when recorded); in-core reports
    through :func:`replay_traversal`, allowing a partial prefix for
    ``explore`` runs that did not complete.  The recomputed peak memory must
    match ``report.peak_memory`` and the recomputed I/O volume must match
    ``report.io_volume``; any disagreement raises :class:`ReplayMismatch`.

    Parameters
    ----------
    tree : Tree or TreeKernel
        The task tree the report was computed on.
    report : SolveReport
        The solver output to validate.
    engine : str
        Replay engine (``"kernel"`` or ``"reference"``), forwarded to
        :func:`replay_traversal` / :func:`replay_schedule`.

    Returns
    -------
    ReplayResult
        The independently recomputed metrics.

    Raises
    ------
    ReplayMismatch
        When the replayed metrics disagree with the reported ones.
    ReplayError
        When the schedule itself is malformed or infeasible.
    """
    if report.schedule is not None:
        memory = report.extras.get("memory_limit")
        result = replay_schedule(
            tree,
            report.schedule,
            memory=float(memory) if memory is not None else None,
            engine=engine,
        )
        if not _close(result.io_volume, report.io_volume):
            raise ReplayMismatch(
                f"{report.algorithm}: replayed I/O volume {result.io_volume:.6g} "
                f"!= reported {report.io_volume:.6g}"
            )
    else:
        partial = not bool(report.extras.get("completed", True))
        result = replay_traversal(
            tree, report.traversal, partial=partial, engine=engine
        )
        if report.io_volume:
            raise ReplayMismatch(
                f"{report.algorithm}: in-core report claims nonzero I/O volume "
                f"{report.io_volume:.6g} without a schedule"
            )
    if not _close(result.peak_memory, report.peak_memory):
        raise ReplayMismatch(
            f"{report.algorithm}: replayed peak memory {result.peak_memory:.6g} "
            f"!= reported {report.peak_memory:.6g}"
        )
    return result
