"""Persistence and comparison of benchmark artifacts (``BENCH_*.json``).

Every benchmark campaign is persisted as one schema-versioned JSON document
so that performance trajectories are machine-comparable across commits and
machines.  The document layout (schema version 1):

.. code-block:: none

    {
      "schema": 1,                     # bump on incompatible layout changes
      "kind": "bench",
      "created_utc": "2026-07-30T12:34:56Z",
      "version": "1.2.0",              # repro.__version__
      "platform": {                    # machine identity for comparability
        "python": "3.11.7", "implementation": "CPython",
        "system": "Linux", "machine": "x86_64", "processor": "..."
      },
      "run": {                         # campaign parameters
        "seed": 0, "repeat": 3, "warmup": 1, "workers": null,
        "pool": null,                  # executor mode (null = persistent engine)
        "campaign_seconds": 12.3,      # end-to-end campaign wall time
        "scenarios": ["assembly", ...],
        "extras": {                    # run-level execution metadata
          "backend": "persistent",     # resolved executor backend name
          "work_units": 12,            # futures submitted by the planner
          "straggler_resplits": 0      # work units split and resubmitted
        }
      },
      "records": [ {                   # one object per benchmark cell
        "key": "random/binary-48/minmem",
        "scenario": ..., "family": ..., "instance": ..., "algorithm": ...,
        "nodes": 95,
        "peak_memory": 123.0,          # tree-weight units (peak resident)
        "io_volume": 0.0,              # tree-weight units written to disk
        "best_time": 0.0021,           # seconds (min over repeats)
        "mean_time": 0.0023,           # seconds (mean over repeats)
        "repeats": 3,
        "optimality_ratio": 1.0,       # peak / MinMem peak (in-core only)
        "memory_limit": null,          # budgeted runs: the memory bound
        "budget_fraction": null,       # budgeted runs: bound as a fraction
        "replay_ok": true,             # schedule replay validated
        "replay_error": null,
        "extras": {...}                # solver-specific scalars
      }, ... ]
    }

:func:`compare_artifacts` diffs two documents record by record (matching on
``key``) and flags deterministic regressions (peak memory or I/O volume
increased, replay broke) as well as timing regressions beyond a relative
threshold; the CLI's ``repro bench --compare A B`` exits non-zero when any
regression is found.
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict, dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .runner import BenchRun

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "ArtifactError",
    "RecordDelta",
    "ArtifactComparison",
    "run_to_dict",
    "write_artifact",
    "load_artifact",
    "compare_artifacts",
]

BENCH_SCHEMA_VERSION = 1

#: timing regressions below this relative slowdown are noise, not findings
DEFAULT_TIME_THRESHOLD = 0.25

#: deterministic metrics (peak, I/O) tolerate only float noise
_METRIC_RTOL = 1e-9


class ArtifactError(ValueError):
    """Raised for malformed or incompatible benchmark artifacts."""


def _platform_metadata() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "release": platform.release(),
        "machine": platform.machine(),
        "processor": platform.processor(),
    }


def run_to_dict(run: BenchRun, *, created_utc: Optional[str] = None) -> Dict[str, Any]:
    """Convert a :class:`BenchRun` into the schema-1 artifact document."""
    from .. import __version__

    if created_utc is None:
        created_utc = (
            datetime.now(timezone.utc).replace(microsecond=0).isoformat()
        ).replace("+00:00", "Z")
    records = []
    for record in run.records:
        doc = asdict(record)
        doc["key"] = record.key
        records.append(doc)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "created_utc": created_utc,
        "version": __version__,
        "platform": _platform_metadata(),
        "run": {
            "seed": run.seed,
            "repeat": run.repeat,
            "warmup": run.warmup,
            "workers": run.workers,
            "pool": run.pool,
            # end-to-end wall time of the campaign (dispatch overhead
            # included), unlike the per-solver wall_time stamps
            "campaign_seconds": run.campaign_seconds,
            "scenarios": list(run.scenarios),
            # run-level execution metadata: the resolved backend name and
            # the planner's work-splitting counters
            "extras": dict(run.extras),
        },
        "records": records,
    }


def write_artifact(
    run: BenchRun,
    path: Optional[Union[str, Path]] = None,
    *,
    root: Union[str, Path] = ".",
) -> Path:
    """Write the artifact; default name ``BENCH_<UTC timestamp>.json``.

    Returns the path written.  With ``path=None`` the file lands in ``root``
    (the repository root by convention) under a timestamped name, so
    successive runs never overwrite each other.
    """
    document = run_to_dict(run)
    if path is None:
        stamp = document["created_utc"].replace("-", "").replace(":", "")
        path = Path(root) / f"BENCH_{stamp}.json"
    path = Path(path)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def load_artifact(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and schema-check a benchmark artifact."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(document, dict) or document.get("kind") != "bench":
        raise ArtifactError(f"{path}: not a benchmark artifact")
    if document.get("schema") != BENCH_SCHEMA_VERSION:
        raise ArtifactError(
            f"{path}: unsupported schema {document.get('schema')!r} "
            f"(this build reads schema {BENCH_SCHEMA_VERSION})"
        )
    if not isinstance(document.get("records"), list):
        raise ArtifactError(f"{path}: missing records array")
    return document


# ----------------------------------------------------------------------
# artifact comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecordDelta:
    """One flagged difference between two artifacts."""

    key: str
    metric: str  # "peak_memory" | "io_volume" | "best_time" | "replay"
    before: float
    after: float

    @property
    def relative(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return self.after / self.before - 1.0

    def describe(self) -> str:
        if self.metric == "replay":
            return f"{self.key}: replay validation broke"
        return (
            f"{self.key}: {self.metric} {self.before:.6g} -> {self.after:.6g} "
            f"({self.relative:+.1%})"
        )


@dataclass(frozen=True)
class ArtifactComparison:
    """Outcome of diffing two benchmark artifacts."""

    regressions: Tuple[RecordDelta, ...]
    improvements: Tuple[RecordDelta, ...]
    missing: Tuple[str, ...]  # keys of the old artifact absent from the new
    added: Tuple[str, ...]  # keys new to the second artifact
    compared: int

    @property
    def ok(self) -> bool:
        """True when no regression (including lost coverage) was found."""
        return not self.regressions and not self.missing

    def format_report(self) -> str:
        lines = [
            f"compared {self.compared} records: "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.missing)} missing, {len(self.added)} added"
        ]
        for delta in self.regressions:
            lines.append(f"  REGRESSION  {delta.describe()}")
        for key in self.missing:
            lines.append(f"  MISSING     {key}: record dropped from the new artifact")
        for delta in self.improvements:
            lines.append(f"  improvement {delta.describe()}")
        return "\n".join(lines)


def _index(document: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    out = {}
    for record in document["records"]:
        if not isinstance(record, dict) or not isinstance(record.get("key"), str):
            raise ArtifactError(f"record without a string key: {record!r}")
        out[record["key"]] = record
    return out


def _metric(record: Dict[str, Any], name: str) -> float:
    try:
        return float(record[name])
    except (KeyError, TypeError, ValueError):
        raise ArtifactError(
            f"record {record.get('key')!r} has no numeric {name!r} field"
        ) from None


def compare_artifacts(
    old: Dict[str, Any],
    new: Dict[str, Any],
    *,
    time_threshold: float = DEFAULT_TIME_THRESHOLD,
) -> ArtifactComparison:
    """Diff two loaded artifacts and classify every changed record.

    Deterministic metrics (``peak_memory``, ``io_volume``) regress on *any*
    increase beyond float noise and improve on any decrease; ``best_time``
    regresses only beyond ``time_threshold`` relative slowdown (timing is
    machine-noisy).  A record whose replay validation flipped from ok to
    failing is always a regression.

    The two runs must share the same ``seed``: record keys would still match
    across seeds, but the seeded scenario builders would have produced
    different trees, so every diff would be noise.  A mismatch raises
    :class:`ArtifactError` (version and repeat skew are fine -- comparing
    across versions is the point of the artifact trail).
    """
    old_seed = (old.get("run") or {}).get("seed")
    new_seed = (new.get("run") or {}).get("seed")
    if old_seed != new_seed:
        raise ArtifactError(
            f"artifacts are not comparable: run seeds differ "
            f"({old_seed!r} vs {new_seed!r}), so the benchmarked instances "
            "are different trees"
        )
    old_index = _index(old)
    new_index = _index(new)
    regressions: List[RecordDelta] = []
    improvements: List[RecordDelta] = []
    compared = 0
    for key, old_record in old_index.items():
        new_record = new_index.get(key)
        if new_record is None:
            continue
        compared += 1
        if bool(old_record.get("replay_ok", True)) and not bool(
            new_record.get("replay_ok", True)
        ):
            regressions.append(RecordDelta(key, "replay", 1.0, 0.0))
        for metric in ("peak_memory", "io_volume"):
            before = _metric(old_record, metric)
            after = _metric(new_record, metric)
            if after > before * (1.0 + _METRIC_RTOL) + 1e-12:
                regressions.append(RecordDelta(key, metric, before, after))
            elif after < before * (1.0 - _METRIC_RTOL) - 1e-12:
                improvements.append(RecordDelta(key, metric, before, after))
        before = _metric(old_record, "best_time")
        after = _metric(new_record, "best_time")
        if before > 0 and after > before * (1.0 + time_threshold):
            regressions.append(RecordDelta(key, "best_time", before, after))
        elif before > 0 and after < before * (1.0 - time_threshold):
            improvements.append(RecordDelta(key, "best_time", before, after))
    missing = tuple(sorted(set(old_index) - set(new_index)))
    added = tuple(sorted(set(new_index) - set(old_index)))
    return ArtifactComparison(
        regressions=tuple(regressions),
        improvements=tuple(improvements),
        missing=missing,
        added=added,
        compared=compared,
    )
