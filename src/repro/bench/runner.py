"""Scenario runner: plan the campaign, execute it, collect per-run metrics.

:func:`run_scenarios` materialises every selected scenario's trees (seeded,
so repeated runs use identical instances) and collects one
:class:`BenchRecord` per (scenario, instance, algorithm, budget) cell:

* wall time: best and mean over the repeats, measured inside the solver via
  ``perf_counter`` (the facade stamps ``SolveReport.wall_time``);
* peak memory and I/O volume straight from the report;
* the optimality ratio against the exact MinMemory reference (``minmem``,
  itself part of the run or computed on demand);
* replay validation: every report's schedule is re-executed by
  :mod:`repro.bench.replay` and the recomputed metrics must match.

Budgeted solvers (``explore``, the ``minio`` family) are additionally swept
over the scenario's ``budget_fractions``, interpolating between the trivial
lower bound ``max MemReq`` and the in-core optimal peak.

Execution is a *campaign plan*: with the default ``pool="persistent"`` each
scenario's full cell grid is expanded into batched fan-outs over the
persistent shared-memory engine (:mod:`repro.solvers.engine`) -- first the
plain (unbudgeted) algorithms for every instance and round, then, once the
reference peaks are known, every budgeted (algorithm, budget, round) cell
across all instances at once.  Warmup cells fan out (and complete) before
the timed cells of the same stage, so warmup keeps its meaning under
parallel execution.  The budget sweeps that the per-call pool ran
as serial size-1 batches therefore parallelize, worker processes persist
across rounds, and each tree ships to the workers exactly once.
``pool="fresh"`` and ``pool="serial"`` keep the legacy loop structure (one
``solve_many`` call per round, one one-shot pool per call) for comparison;
all modes produce bit-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.tree import Tree
from ..solvers.facade import POOL_MODES, _solve_task, solve_many
from ..solvers.registry import get_solver
from ..solvers.report import SolveReport
from .replay import ReplayError, replay_report
from .scenario import Scenario

__all__ = ["BenchRecord", "BenchRun", "run_scenarios"]

#: solver families that consume a main-memory budget
_BUDGETED_FAMILIES = ("minio", "explore")

#: the exact algorithm used as the optimality-ratio denominator
REFERENCE_ALGORITHM = "minmem"


@dataclass(frozen=True)
class BenchRecord:
    """Metrics of one (scenario, instance, algorithm, budget) cell.

    ``key`` uniquely identifies the cell across runs and machines, so two
    artifacts can be diffed record by record.
    """

    scenario: str
    family: str
    instance: str
    algorithm: str
    nodes: int
    peak_memory: float
    io_volume: float
    best_time: float
    mean_time: float
    repeats: int
    optimality_ratio: Optional[float] = None
    memory_limit: Optional[float] = None
    budget_fraction: Optional[float] = None
    replay_ok: bool = True
    replay_error: Optional[str] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        budget = "" if self.budget_fraction is None else f"@{self.budget_fraction:g}"
        return f"{self.scenario}/{self.instance}/{self.algorithm}{budget}"


@dataclass(frozen=True)
class BenchRun:
    """Outcome of one benchmark campaign.

    ``pool`` records the executor mode the campaign ran with (``None`` =
    the default, the persistent engine) and ``campaign_seconds`` the
    end-to-end wall time of :func:`run_scenarios` -- tree building, solver
    rounds, replay validation and record assembly included -- which is the
    number that exposes dispatch overhead invisible to the per-solver
    ``wall_time`` stamps.
    """

    records: Tuple[BenchRecord, ...]
    seed: int
    repeat: int
    warmup: int
    workers: Optional[int]
    scenarios: Tuple[str, ...]
    pool: Optional[str] = None
    campaign_seconds: float = 0.0

    @property
    def families(self) -> Tuple[str, ...]:
        return tuple(sorted({r.family for r in self.records}))

    @property
    def algorithms(self) -> Tuple[str, ...]:
        return tuple(sorted({r.algorithm for r in self.records}))

    @property
    def replay_failures(self) -> Tuple[BenchRecord, ...]:
        return tuple(r for r in self.records if not r.replay_ok)

    def format_table(self) -> str:
        """Plain-text summary table (one line per record)."""
        header = (
            f"{'scenario/instance/algorithm':<58} {'nodes':>6} {'peak':>12} "
            f"{'IO':>10} {'ratio':>7} {'best':>9} {'replay':>6}"
        )
        lines = [header, "-" * len(header)]
        for r in self.records:
            ratio = "-" if r.optimality_ratio is None else f"{r.optimality_ratio:.4f}"
            lines.append(
                f"{r.key:<58} {r.nodes:>6} {r.peak_memory:>12.6g} "
                f"{r.io_volume:>10.6g} {ratio:>7} {r.best_time * 1e3:>7.2f}ms "
                f"{'ok' if r.replay_ok else 'FAIL':>6}"
            )
        return "\n".join(lines)


def _is_budgeted(algorithm: str) -> bool:
    return get_solver(algorithm).family in _BUDGETED_FAMILIES


def _budgets_for(
    tree: Tree, reference_peak: float, fractions: Sequence[float]
) -> List[Tuple[float, float]]:
    """(fraction, absolute memory) budgets between max MemReq and the peak."""
    floor = tree.max_mem_req()
    span = reference_peak - floor
    if span <= 0:
        # degenerate trees where the floor already fits the optimum: every
        # fraction collapses to the same unconstrained bound, so label the
        # single budget honestly as 1.0 rather than with the first fraction
        return [(1.0, floor)]
    budgets = []
    seen = set()
    for fraction in fractions:
        memory = floor + fraction * span
        if memory in seen:
            continue
        seen.add(memory)
        budgets.append((float(fraction), memory))
    return budgets or [(1.0, reference_peak)]


def run_scenarios(
    scenarios: Sequence[Scenario],
    *,
    seed: int = 0,
    repeat: int = 1,
    warmup: int = 0,
    workers: Optional[int] = None,
    validate: bool = True,
    engine: Optional[str] = None,
    pool: Optional[str] = None,
) -> BenchRun:
    """Execute ``scenarios`` and collect one record per benchmark cell.

    Parameters
    ----------
    scenarios:
        The scenarios to run (see :func:`repro.bench.select_scenarios`).
    seed:
        Passed to every scenario builder; identical seeds build identical
        instances.
    repeat:
        Timed rounds per batch; ``best_time``/``mean_time`` aggregate the
        per-solver wall times over the rounds.  Metrics are taken from the
        last round (all rounds are bit-identical, the solvers being
        deterministic).
    warmup:
        Untimed rounds discarded before the ``repeat`` timed ones.
    workers:
        Worker processes for the solver batches (``None`` = serial).
    validate:
        Replay-validate every report (see :mod:`repro.bench.replay`).
        Validation failures are recorded on the :class:`BenchRecord` rather
        than raised, so one bad solver cannot sink a whole campaign.
    engine:
        Execution engine forwarded to every solver: ``"kernel"`` (the
        array-backed hot paths, the solvers' default) or ``"reference"``
        (the original per-node implementations).  ``None`` leaves the
        solvers on their default.
    pool:
        Executor mode.  ``None`` or ``"persistent"`` run the campaign plan
        on the persistent shared-memory engine: one plan per scenario,
        budget sweeps parallelized, workers and resident trees reused
        across rounds.  ``"fresh"`` keeps the legacy structure -- one
        ``solve_many`` call (and one one-shot process pool) per round, plus
        serial size-1 batches per budget step; ``"serial"`` does the same
        fully in-process.  All modes produce bit-identical reports.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    if engine not in (None, "kernel", "reference"):
        raise ValueError(f"unknown engine {engine!r}; expected 'kernel' or 'reference'")
    if pool not in (None, *POOL_MODES):
        raise ValueError(f"unknown pool mode {pool!r}; expected one of {POOL_MODES}")
    start = perf_counter()
    records: List[BenchRecord] = []
    for scenario in scenarios:
        runner = _run_scenario_legacy if pool in ("fresh", "serial") else _run_scenario
        records.extend(
            runner(
                scenario,
                seed=seed,
                repeat=repeat,
                warmup=warmup,
                workers=workers,
                validate=validate,
                engine=engine,
                pool=pool,
            )
        )
    return BenchRun(
        records=tuple(records),
        seed=seed,
        repeat=repeat,
        warmup=warmup,
        workers=workers,
        scenarios=tuple(s.name for s in scenarios),
        pool=pool,
        campaign_seconds=perf_counter() - start,
    )


#: one planned solver invocation: (tree, algorithm, memory, options)
_Cell = Tuple[Any, str, Optional[float], Dict[str, Any]]


def _solve_cells(cells: List[_Cell], workers: Optional[int]) -> List[SolveReport]:
    """Fan a cell list through the persistent engine (serial fallback)."""
    if workers is not None and workers > 1 and len(cells) > 1:
        from ..solvers.engine import get_engine

        flat = get_engine().run_batch(cells, workers)
        if flat is not None:
            return flat
    return [_solve_task(cell) for cell in cells]


def _run_scenario(
    scenario: Scenario,
    *,
    seed: int,
    repeat: int,
    warmup: int,
    workers: Optional[int],
    validate: bool,
    engine: Optional[str] = None,
    pool: Optional[str] = None,
) -> List[BenchRecord]:
    """Campaign-planned execution: the scenario grid as engine fan-outs.

    Stage 1 expands the plain (unbudgeted) algorithms over every instance
    and round into batches.  Stage 2 -- which needs the stage-1 reference
    peaks to place the memory budgets -- expands every budgeted (instance,
    algorithm, budget, round) cell into a second pair of batches, so the
    budget sweeps the legacy path ran as serial size-1 calls execute in
    parallel.  Each stage fans out its warmup cells first and waits for
    them before the timed cells, preserving the documented warmup
    semantics (timed rounds never contend with, or run ahead of, warmup
    work).  Cells are ordered tree-major within each round, keeping arena
    chunks single-tree.
    """
    del pool  # this is the persistent-mode path; the engine is implicit
    instances = scenario.build(seed)
    trees = [tree for _, tree in instances]
    engine_options = {} if engine is None else {"engine": engine}
    plain = [a for a in scenario.algorithms if not _is_budgeted(a)]
    budgeted = [a for a in scenario.algorithms if _is_budgeted(a)]
    # the reference solver anchors optimality ratios and budget sweeps; run
    # it even when the scenario did not list it explicitly
    reference_in_run = REFERENCE_ALGORITHM in plain
    if not reference_in_run:
        plain = plain + [REFERENCE_ALGORITHM]
    n_trees, n_plain = len(trees), len(plain)

    # ---- stage 1: the plain grid ----------------------------------------
    # the options dict is shared across cells: solvers copy before use, and
    # the pickle memo ships it once per executor chunk
    def _plain_cells(n_rounds: int) -> List[_Cell]:
        return [
            (trees[i], name, None, engine_options)
            for _ in range(n_rounds)
            for i in range(n_trees)
            for name in plain
        ]

    _solve_cells(_plain_cells(warmup), workers)  # discarded (barrier below)
    flat1 = _solve_cells(_plain_cells(repeat), workers)
    timings: Dict[Tuple[int, str], List[float]] = {}
    for r in range(repeat):
        base = r * n_trees * n_plain
        for i in range(n_trees):
            for j, name in enumerate(plain):
                timings.setdefault((i, name), []).append(
                    flat1[base + i * n_plain + j].wall_time
                )
    last = (repeat - 1) * n_trees * n_plain
    batches = [
        {
            name: flat1[last + i * n_plain + j]
            for j, name in enumerate(plain)
        }
        for i in range(n_trees)
    ]

    # ---- stage 2: every budgeted cell across all instances --------------
    budgets_of: Dict[int, List[Tuple[float, float]]] = {}
    budget_option_of: Dict[int, Dict[str, Any]] = {}
    for i, tree in enumerate(trees):
        reference = batches[i][REFERENCE_ALGORITHM]
        budgets_of[i] = _budgets_for(
            tree, reference.peak_memory, scenario.budget_fractions
        )
        # hand the minio family the reference traversal and its peak so the
        # timed rounds measure the scheduler alone, not a hidden re-run of
        # the in-core base solver; explore ignores both (lenient dispatch)
        budget_option_of[i] = {
            "traversal": reference.traversal,
            "in_core_peak": reference.peak_memory,
            **engine_options,
        }

    def _budget_cells(n_rounds: int):
        cells: List[_Cell] = []
        meta: List[Tuple[int, str]] = []  # (instance, algorithm@budget)
        for i, tree in enumerate(trees):
            for name in budgeted:
                for b, (_, memory) in enumerate(budgets_of[i]):
                    for _ in range(n_rounds):
                        cells.append((tree, name, memory, budget_option_of[i]))
                        meta.append((i, f"{name}@{b}"))
        return cells, meta

    warm_cells, _ = _budget_cells(warmup)
    _solve_cells(warm_cells, workers)  # discarded (barrier below)
    timed_cells, meta = _budget_cells(repeat)
    flat2 = _solve_cells(timed_cells, workers)
    budget_reports: Dict[Tuple[int, str], SolveReport] = {}
    budget_times: Dict[Tuple[int, str], List[float]] = {}
    for (i, cell_key), report in zip(meta, flat2):
        budget_times.setdefault((i, cell_key), []).append(report.wall_time)
        budget_reports[(i, cell_key)] = report  # rounds are bit-identical

    # ---- records, in the same order as the legacy path ------------------
    records: List[BenchRecord] = []
    for i, (instance_name, tree) in enumerate(instances):
        reference_peak = batches[i][REFERENCE_ALGORITHM].peak_memory
        for name in plain:
            if name == REFERENCE_ALGORITHM and not reference_in_run:
                continue
            records.append(
                _make_record(
                    scenario,
                    instance_name,
                    tree,
                    batches[i][name],
                    timings[(i, name)],
                    reference_peak=reference_peak,
                    validate=validate,
                )
            )
        for name in budgeted:
            for b, (fraction, memory) in enumerate(budgets_of[i]):
                cell_key = f"{name}@{b}"
                records.append(
                    _make_record(
                        scenario,
                        instance_name,
                        tree,
                        budget_reports[(i, cell_key)],
                        budget_times[(i, cell_key)],
                        reference_peak=reference_peak,
                        validate=validate,
                        memory_limit=memory,
                        budget_fraction=fraction,
                    )
                )
    return records


def _run_scenario_legacy(
    scenario: Scenario,
    *,
    seed: int,
    repeat: int,
    warmup: int,
    workers: Optional[int],
    validate: bool,
    engine: Optional[str] = None,
    pool: Optional[str] = None,
) -> List[BenchRecord]:
    """Legacy loop structure: one ``solve_many`` call per round and per
    budget step.  Kept as the ``pool="fresh"`` / ``pool="serial"`` path --
    both as a migration escape hatch and as the measured baseline the
    persistent engine is compared against."""
    instances = scenario.build(seed)
    trees = [tree for _, tree in instances]
    pool_options = {} if pool is None else {"pool": pool}
    engine_options = {} if engine is None else {"engine": engine}
    engine_options.update(pool_options)
    plain = [a for a in scenario.algorithms if not _is_budgeted(a)]
    budgeted = [a for a in scenario.algorithms if _is_budgeted(a)]
    # the reference solver anchors optimality ratios and budget sweeps; run
    # it even when the scenario did not list it explicitly
    reference_in_run = REFERENCE_ALGORITHM in plain
    if not reference_in_run:
        plain = plain + [REFERENCE_ALGORITHM]

    timings: Dict[Tuple[int, str], List[float]] = {}
    for _ in range(warmup):  # discarded rounds (interpreter/cache warmup)
        solve_many(trees, plain, workers=workers, **engine_options)
    # solve_many stamps a perf_counter wall time on every report, so timed
    # rounds simply repeat the batch and pool the per-solver stamps
    rounds = [
        solve_many(trees, plain, workers=workers, **engine_options)
        for _ in range(repeat)
    ]
    batches = rounds[-1]
    for round_reports in rounds:
        for i, per_tree in enumerate(round_reports):
            for name, report in per_tree.items():
                timings.setdefault((i, name), []).append(report.wall_time)

    records: List[BenchRecord] = []
    for i, (instance_name, tree) in enumerate(instances):
        reference = batches[i][REFERENCE_ALGORITHM]
        reference_peak = reference.peak_memory
        # hand the minio family the reference traversal and its peak so the
        # timed rounds measure the scheduler alone, not a hidden re-run of
        # the in-core base solver; explore ignores both (lenient dispatch)
        budget_options = {
            "traversal": reference.traversal,
            "in_core_peak": reference_peak,
            **engine_options,
        }
        for name in plain:
            if name == REFERENCE_ALGORITHM and not reference_in_run:
                continue
            report = batches[i][name]
            times = timings[(i, name)]
            records.append(
                _make_record(
                    scenario,
                    instance_name,
                    tree,
                    report,
                    times,
                    reference_peak=reference_peak,
                    validate=validate,
                )
            )
        for name in budgeted:
            for fraction, memory in _budgets_for(
                tree, reference_peak, scenario.budget_fractions
            ):
                times = []
                report = None
                for _ in range(warmup):
                    solve_many(
                        [tree], name, memory=memory, workers=workers,
                        **budget_options,
                    )
                for _ in range(repeat):
                    (per_tree,) = solve_many(
                        [tree], name, memory=memory, workers=workers,
                        **budget_options,
                    )
                    report = per_tree[name]
                    times.append(report.wall_time)
                assert report is not None
                records.append(
                    _make_record(
                        scenario,
                        instance_name,
                        tree,
                        report,
                        times,
                        reference_peak=reference_peak,
                        validate=validate,
                        memory_limit=memory,
                        budget_fraction=fraction,
                    )
                )
    return records


def _make_record(
    scenario: Scenario,
    instance_name: str,
    tree: Tree,
    report: SolveReport,
    times: Sequence[float],
    *,
    reference_peak: float,
    validate: bool,
    memory_limit: Optional[float] = None,
    budget_fraction: Optional[float] = None,
) -> BenchRecord:
    replay_ok, replay_error = True, None
    if validate:
        try:
            replay_report(tree, report)
        except ReplayError as exc:
            replay_ok, replay_error = False, str(exc)
    ratio = None
    if memory_limit is None and reference_peak > 0:
        # in-core solvers compete on peak memory; budgeted runs (minio,
        # explore -- possibly partial) compete on I/O volume under a bound,
        # where a peak ratio would be meaningless or misleading
        ratio = report.peak_memory / reference_peak
    extras = {
        key: value
        for key, value in report.extras.items()
        if isinstance(value, (int, float, str, bool)) or value is None
    }
    return BenchRecord(
        scenario=scenario.name,
        family=scenario.family,
        instance=instance_name,
        algorithm=report.algorithm,
        nodes=tree.size,
        peak_memory=report.peak_memory,
        io_volume=report.io_volume,
        best_time=min(times),
        mean_time=sum(times) / len(times),
        repeats=len(times),
        optimality_ratio=ratio,
        memory_limit=memory_limit,
        budget_fraction=budget_fraction,
        replay_ok=replay_ok,
        replay_error=replay_error,
        extras=extras,
    )
