"""Scenario runner: plan the campaign, execute it, collect per-run metrics.

:func:`run_scenarios` materialises every selected scenario's trees (seeded,
so repeated runs use identical instances) and collects one
:class:`BenchRecord` per (scenario, instance, algorithm, budget) cell:

* wall time: best and mean over the repeats, measured inside the solver via
  ``perf_counter`` (the facade stamps ``SolveReport.wall_time``);
* peak memory and I/O volume straight from the report;
* the optimality ratio against the exact MinMemory reference (``minmem``,
  itself part of the run or computed on demand);
* replay validation: every report's schedule is re-executed by
  :mod:`repro.bench.replay` and the recomputed metrics must match.

Budgeted solvers (``explore``, the ``minio`` family) are additionally swept
over the scenario's ``budget_fractions``, interpolating between the trivial
lower bound ``max MemReq`` and the in-core optimal peak.

Execution is a *campaign plan*: each scenario's full cell grid is expanded
into fan-outs over an executor backend (:mod:`repro.solvers.engine`) --
first the plain (unbudgeted) algorithms for every instance and round,
then, once the reference peaks are known, every budgeted (algorithm,
budget, round) cell across all instances at once.  Warmup cells fan out
(and complete) before the timed cells of the same stage, so warmup keeps
its meaning under parallel execution.

The planner is backend-generic: ``pool=`` names any registered executor
backend (:data:`~repro.solvers.facade.POOL_MODES`), and backends that hand
out futures (``persistent``, ``threads``, ``dask``) get *work-splitting* --
each grid is cut into about ``saturate_factor x workers`` contiguous work
units submitted as one future each, so workers stay saturated without
per-cell dispatch overhead -- plus *straggler re-splitting*: a unit still
running after ``straggler_factor x`` the median unit round trip is split
in half and resubmitted, and whichever copy of a cell finishes first wins
(results are deduplicated by cell index, deterministic because every
solver is).  Backends without futures (``serial``, ``fresh``) run each
grid as one blocking batch.  All modes produce bit-identical reports.
"""

from __future__ import annotations

import statistics
import time
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.tree import Tree
from ..solvers.facade import POOL_MODES, _solve_task
from ..solvers.registry import get_solver
from ..solvers.report import SolveReport
from .replay import ReplayError, replay_report
from .scenario import Scenario

__all__ = ["BenchRecord", "BenchRun", "run_scenarios"]

#: solver families that consume a main-memory budget
_BUDGETED_FAMILIES = ("minio", "explore")

#: the exact algorithm used as the optimality-ratio denominator
REFERENCE_ALGORITHM = "minmem"


@dataclass(frozen=True)
class BenchRecord:
    """Metrics of one (scenario, instance, algorithm, budget) cell.

    ``key`` uniquely identifies the cell across runs and machines, so two
    artifacts can be diffed record by record.
    """

    scenario: str
    family: str
    instance: str
    algorithm: str
    nodes: int
    peak_memory: float
    io_volume: float
    best_time: float
    mean_time: float
    repeats: int
    optimality_ratio: Optional[float] = None
    memory_limit: Optional[float] = None
    budget_fraction: Optional[float] = None
    replay_ok: bool = True
    replay_error: Optional[str] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        budget = "" if self.budget_fraction is None else f"@{self.budget_fraction:g}"
        return f"{self.scenario}/{self.instance}/{self.algorithm}{budget}"


@dataclass(frozen=True)
class BenchRun:
    """Outcome of one benchmark campaign.

    ``pool`` records the executor mode the campaign ran with (``None`` =
    the default, the persistent engine) and ``campaign_seconds`` the
    end-to-end wall time of :func:`run_scenarios` -- tree building, solver
    rounds, replay validation and record assembly included -- which is the
    number that exposes dispatch overhead invisible to the per-solver
    ``wall_time`` stamps.  ``extras`` carries run-level execution metadata:
    the resolved backend name, the number of work units submitted, and how
    many straggler re-splits fired.
    """

    records: Tuple[BenchRecord, ...]
    seed: int
    repeat: int
    warmup: int
    workers: Optional[int]
    scenarios: Tuple[str, ...]
    pool: Optional[str] = None
    campaign_seconds: float = 0.0
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def families(self) -> Tuple[str, ...]:
        return tuple(sorted({r.family for r in self.records}))

    @property
    def algorithms(self) -> Tuple[str, ...]:
        return tuple(sorted({r.algorithm for r in self.records}))

    @property
    def replay_failures(self) -> Tuple[BenchRecord, ...]:
        return tuple(r for r in self.records if not r.replay_ok)

    def format_table(self) -> str:
        """Plain-text summary table (one line per record)."""
        header = (
            f"{'scenario/instance/algorithm':<58} {'nodes':>6} {'peak':>12} "
            f"{'IO':>10} {'ratio':>7} {'best':>9} {'replay':>6}"
        )
        lines = [header, "-" * len(header)]
        for r in self.records:
            ratio = "-" if r.optimality_ratio is None else f"{r.optimality_ratio:.4f}"
            lines.append(
                f"{r.key:<58} {r.nodes:>6} {r.peak_memory:>12.6g} "
                f"{r.io_volume:>10.6g} {ratio:>7} {r.best_time * 1e3:>7.2f}ms "
                f"{'ok' if r.replay_ok else 'FAIL':>6}"
            )
        return "\n".join(lines)


def _is_budgeted(algorithm: str) -> bool:
    return get_solver(algorithm).family in _BUDGETED_FAMILIES


def _budgets_for(
    tree: Tree, reference_peak: float, fractions: Sequence[float]
) -> List[Tuple[float, float]]:
    """(fraction, absolute memory) budgets between max MemReq and the peak."""
    floor = tree.max_mem_req()
    span = reference_peak - floor
    if span <= 0:
        # degenerate trees where the floor already fits the optimum: every
        # fraction collapses to the same unconstrained bound, so label the
        # single budget honestly as 1.0 rather than with the first fraction
        return [(1.0, floor)]
    budgets = []
    seen = set()
    for fraction in fractions:
        memory = floor + fraction * span
        if memory in seen:
            continue
        seen.add(memory)
        budgets.append((float(fraction), memory))
    return budgets or [(1.0, reference_peak)]


def run_scenarios(
    scenarios: Sequence[Scenario],
    *,
    seed: int = 0,
    repeat: int = 1,
    warmup: int = 0,
    workers: Optional[int] = None,
    validate: bool = True,
    engine: Optional[str] = None,
    pool: Optional[str] = None,
    saturate_factor: float = 2.0,
    straggler_factor: float = 4.0,
    fault_plan: Any = None,
    retry_policy: Any = None,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
) -> BenchRun:
    """Execute ``scenarios`` and collect one record per benchmark cell.

    Parameters
    ----------
    scenarios:
        The scenarios to run (see :func:`repro.bench.select_scenarios`).
    seed:
        Passed to every scenario builder; identical seeds build identical
        instances.
    repeat:
        Timed rounds per batch; ``best_time``/``mean_time`` aggregate the
        per-solver wall times over the rounds.  Metrics are taken from the
        last round (all rounds are bit-identical, the solvers being
        deterministic).
    warmup:
        Untimed rounds discarded before the ``repeat`` timed ones.
    workers:
        Worker processes for the solver batches (``None`` = serial).
    validate:
        Replay-validate every report (see :mod:`repro.bench.replay`).
        Validation failures are recorded on the :class:`BenchRecord` rather
        than raised, so one bad solver cannot sink a whole campaign.
    engine:
        Execution engine forwarded to every solver: ``"kernel"`` (the
        array-backed hot paths, the solvers' default) or ``"reference"``
        (the original per-node implementations).  ``None`` leaves the
        solvers on their default.
    pool:
        Executor backend for the campaign, any name in
        :data:`~repro.solvers.facade.POOL_MODES` (``None`` = the default
        ``"persistent"`` shared-memory process engine).  Backends that hand
        out futures (``persistent``, ``threads``, ``dask``) run the grids
        with work-splitting and straggler re-splitting; ``"fresh"`` runs
        each grid as one blocking one-shot-pool batch and ``"serial"``
        fully in-process.  All modes produce bit-identical reports.
    saturate_factor:
        Work units submitted per worker on future-capable backends
        (roughly; units are contiguous cell runs of near-equal size).
        More units mean finer-grained load balancing at slightly higher
        dispatch overhead.
    straggler_factor:
        A pending work unit older than ``straggler_factor`` times the
        median completed-unit round trip (and at least 50 ms) is split in
        half and resubmitted; the first finished copy of each cell wins.
    fault_plan:
        A :class:`~repro.faults.FaultPlan` to inject into the campaign
        (chaos mode).  The dispatcher then builds its own engine around a
        :class:`~repro.faults.FaultyBackend` wrapper -- never the shared
        process-wide engine, so chaos cannot leak into other callers --
        and the run-level ``extras`` gain a ``faults`` document (plan +
        injections).  Results stay bit-identical to a fault-free run.
    retry_policy:
        The :class:`~repro.faults.RetryPolicy` governing work-unit
        retries (and, in chaos mode, the dedicated engine's batch
        retries).  ``None`` uses the default policy.
    checkpoint:
        Path of a journal to write: every completed timed cell is
        appended (and flushed) as it finishes, so a killed campaign can
        be resumed.  Truncates any existing file at the path.
    resume:
        Path of an existing journal to resume from: completed cells are
        skipped (their reports rehydrate from the journal; run-level
        ``extras`` report them as ``resumed_cells``) and new completions
        keep appending to the same file.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    if engine not in (None, "kernel", "reference"):
        raise ValueError(f"unknown engine {engine!r}; expected 'kernel' or 'reference'")
    if pool not in (None, *POOL_MODES):
        raise ValueError(f"unknown pool mode {pool!r}; expected one of {POOL_MODES}")
    if saturate_factor <= 0:
        raise ValueError("saturate_factor must be > 0")
    if straggler_factor <= 0:
        raise ValueError("straggler_factor must be > 0")
    if checkpoint and resume and str(checkpoint) != str(resume):
        raise ValueError(
            "checkpoint and resume name different files; a resumed campaign "
            "keeps appending to the journal it resumes from"
        )
    start = perf_counter()
    journal = None
    if checkpoint or resume:
        from .checkpoint import CampaignJournal

        params = {
            "seed": seed,
            "repeat": repeat,
            "warmup": warmup,
            "scenarios": [s.name for s in scenarios],
            "engine": engine,
            "validate": validate,
        }
        context = {"workers": workers, "pool": pool}
        if resume:
            journal = CampaignJournal.resume(resume, params, context)
        else:
            journal = CampaignJournal.fresh(checkpoint, params, context)
    dispatcher = _CampaignDispatcher(
        workers=workers,
        pool=pool,
        saturate_factor=saturate_factor,
        straggler_factor=straggler_factor,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    records: List[BenchRecord] = []
    try:
        for scenario in scenarios:
            records.extend(
                _run_scenario(
                    scenario,
                    seed=seed,
                    repeat=repeat,
                    warmup=warmup,
                    validate=validate,
                    engine=engine,
                    dispatcher=dispatcher,
                    journal=journal,
                )
            )
    finally:
        dispatcher.close()
        if journal is not None:
            journal.close()
    extras: Dict[str, Any] = {
        "backend": dispatcher.backend_name,
        "work_units": dispatcher.work_units,
        "straggler_resplits": dispatcher.straggler_resplits,
        "unit_retries": dispatcher.unit_retries,
    }
    fault_summary = dispatcher.fault_summary()
    if fault_summary is not None:
        extras["faults"] = fault_summary
    if journal is not None:
        extras["checkpoint"] = str(journal.path)
        extras["checkpoint_cells"] = journal.cells_written
        extras["resumed_cells"] = journal.cells_resumed
    return BenchRun(
        records=tuple(records),
        seed=seed,
        repeat=repeat,
        warmup=warmup,
        workers=workers,
        scenarios=tuple(s.name for s in scenarios),
        pool=pool,
        campaign_seconds=perf_counter() - start,
        extras=extras,
    )


#: one planned solver invocation: (tree, algorithm, memory, options)
_Cell = Tuple[Any, str, Optional[float], Dict[str, Any]]

#: a straggler must also be at least this old (seconds) before re-splitting,
#: so micro-campaigns with sub-millisecond units never thrash on resubmits
_STRAGGLER_MIN_WAIT = 0.05

#: completion-scan interval while work units are in flight (seconds)
_POLL_INTERVAL = 0.002


@dataclass
class _WorkUnit:
    """One in-flight contiguous cell run ``[start, stop)`` and its future."""

    start: int
    stop: int
    future: Any
    submitted: float
    split: bool = False  # re-split already fired; never split twice
    attempts: int = 1  # tries of this [start, stop) range, for the policy


class _CampaignDispatcher:
    """Backend-generic fan-out of one campaign's cell grids.

    One dispatcher serves a whole :func:`run_scenarios` call, so its
    ``work_units`` / ``straggler_resplits`` counters aggregate across
    scenarios into the run-level extras.  Routing is by backend
    *capability*, not name: future-capable backends get work-splitting and
    straggler re-splitting, the rest run each grid as one blocking batch
    (with the engine's usual serial fallback when the platform cannot run
    the backend at all).
    """

    def __init__(
        self,
        *,
        workers: Optional[int],
        pool: Optional[str],
        saturate_factor: float = 2.0,
        straggler_factor: float = 4.0,
        fault_plan: Any = None,
        retry_policy: Any = None,
    ) -> None:
        self.workers = workers or 1
        self.saturate_factor = saturate_factor
        self.straggler_factor = straggler_factor
        self.work_units = 0
        self.straggler_resplits = 0
        self.unit_retries = 0
        if retry_policy is None:
            from ..faults.policy import DEFAULT_RETRY_POLICY

            retry_policy = DEFAULT_RETRY_POLICY
        self.retry_policy = retry_policy
        self._retry_budget = retry_policy.new_budget()
        self._engine = None
        self._owns_engine = False
        if fault_plan is not None:
            # chaos mode gets a dedicated engine around a FaultyBackend
            # wrapper -- never the shared process-wide engine, which other
            # callers (the service daemon, solve_many) may be using
            from ..faults.injector import FaultyBackend
            from ..solvers.engine import SolveEngine
            from ..solvers.engine.backends import create_backend

            name = pool or (
                "persistent" if workers is not None and workers > 1 else "serial"
            )
            inner = create_backend(name)
            self._engine = SolveEngine(
                backend=FaultyBackend(inner, fault_plan),
                retry_policy=retry_policy,
            )
            self._owns_engine = True
        elif workers is not None and workers > 1 and pool != "serial":
            from ..solvers.engine import get_engine

            self._engine = get_engine(pool)

    @property
    def backend_name(self) -> str:
        return "serial" if self._engine is None else self._engine.backend_name

    def fault_summary(self) -> Optional[Dict[str, Any]]:
        """The chaos extras document, or ``None`` outside chaos mode."""
        if not self._owns_engine:
            return None
        backend = self._engine.backend
        return {
            "plan": backend.plan.describe(),
            "injected": dict(sorted(backend.injected.items())),
        }

    def close(self) -> None:
        """Release a dispatcher-owned chaos engine (shared engines persist)."""
        if self._owns_engine and self._engine is not None:
            self._engine.shutdown()

    def solve(self, cells: List[_Cell]) -> List[SolveReport]:
        """Solve every cell, in order; bit-identical to the serial path."""
        engine = self._engine
        if engine is None or len(cells) < 2:
            return [_solve_task(cell) for cell in cells]
        if not engine.backend.supports_futures:
            flat = engine.run_batch(cells, self.workers)
            if flat is None:
                flat = [_solve_task(cell) for cell in cells]
            return flat
        return self._solve_split(engine, cells)

    # ------------------------------------------------------------------
    def _unit_bounds(self, n: int) -> List[Tuple[int, int]]:
        """Cut ``n`` cells into ~saturate_factor x workers contiguous runs."""
        n_units = min(n, max(1, round(self.saturate_factor * self.workers)))
        base, extra = divmod(n, n_units)
        bounds, start = [], 0
        for u in range(n_units):
            size = base + (1 if u < extra else 0)
            bounds.append((start, start + size))
            start += size
        return bounds

    def _solve_split(self, engine, cells: List[_Cell]) -> List[SolveReport]:
        """Submit the grid as work units; re-split stragglers; dedup by cell.

        ``results`` is keyed by cell index and written with ``setdefault``:
        after a re-split both the original unit and its halves may complete,
        and the first finisher wins -- deterministic, because every
        registered solver is (only ``wall_time`` differs, and report
        equality excludes it).
        """
        results: Dict[int, SolveReport] = {}
        pending: List[_WorkUnit] = []
        rtts: List[float] = []

        def submit(
            start: int, stop: int, attempts: int = 1
        ) -> Optional[_WorkUnit]:
            future = engine.submit_chunk(cells[start:stop], self.workers)
            if future is None:
                # backend unavailable on this platform: complete inline
                for idx in range(start, stop):
                    results.setdefault(idx, _solve_task(cells[idx]))
                return None
            self.work_units += 1
            unit = _WorkUnit(start, stop, future, perf_counter(), attempts=attempts)
            pending.append(unit)
            return unit

        def collect(unit: _WorkUnit) -> None:
            from concurrent.futures import CancelledError

            from ..faults.policy import classify_fault
            from ..faults.stats import global_fault_stats

            try:
                reports = unit.future.result()
            except CancelledError:
                return  # a re-split superseded this unit
            except Exception as exc:
                fault = classify_fault(exc)
                if fault == "solver":
                    raise  # the solver's own exception: propagate unchanged
                if fault == "broken_pool":
                    engine.reset()
                if self.retry_policy.should_retry(
                    fault, unit.attempts, self._retry_budget
                ):
                    # typed retry: resubmit the same [start, stop) range
                    # after the policy's deterministic backoff.  The cell
                    # objects are reused, so a chaos injector neither
                    # advances its sequence nor re-fires consumed faults.
                    self.unit_retries += 1
                    global_fault_stats.record_retry("bench", fault)
                    time.sleep(
                        self.retry_policy.delay(
                            unit.attempts, key=f"unit:{unit.start}-{unit.stop}"
                        )
                    )
                    submit(unit.start, unit.stop, attempts=unit.attempts + 1)
                    return  # inline fallback inside submit() settles the rest
                warnings.warn(
                    f"bench dispatcher: work unit failed ({exc}); completing "
                    "the unit in-process",
                    RuntimeWarning,
                    stacklevel=4,
                )
                reports = [_solve_task(c) for c in cells[unit.start:unit.stop]]
            else:
                rtts.append(perf_counter() - unit.submitted)
            for offset, report in enumerate(reports):
                results.setdefault(unit.start + offset, report)

        def resplit_stragglers() -> None:
            if not rtts:
                return
            threshold = max(
                _STRAGGLER_MIN_WAIT, self.straggler_factor * statistics.median(rtts)
            )
            now = perf_counter()
            for unit in list(pending):
                if unit.split or unit.stop - unit.start < 2:
                    continue
                if now - unit.submitted < threshold:
                    continue
                mid = (unit.start + unit.stop) // 2
                first = submit(unit.start, mid)
                second = submit(mid, unit.stop)
                unit.split = True
                self.straggler_resplits += 1
                if first is not None or second is not None:
                    # only retire the original once a replacement is in
                    # flight; if it is already running the cancel fails and
                    # the dedup above settles the race
                    unit.future.cancel()

        try:
            for start, stop in self._unit_bounds(len(cells)):
                submit(start, stop)
            while pending:
                done = [u for u in pending if u.future.done()]
                for unit in done:
                    pending.remove(unit)
                    collect(unit)
                if not pending:
                    break
                if not done:
                    resplit_stragglers()
                    time.sleep(_POLL_INTERVAL)
        except BaseException:
            for unit in pending:  # solver errors propagate; don't leak work
                unit.future.cancel()
            raise
        # safety net: anything lost (cancelled both copies, dropped futures)
        # completes in-process so the grid always comes back whole
        return [
            results[i] if i in results else _solve_task(cells[i])
            for i in range(len(cells))
        ]


def _solve_stage(
    dispatcher: _CampaignDispatcher,
    journal,
    scenario_name: str,
    stage: int,
    cells: List[_Cell],
    warm_cells: List[_Cell],
) -> List[SolveReport]:
    """Solve one stage grid, via the checkpoint journal when one is active.

    With a journal, cells already recorded (a resumed run) are skipped and
    their reports rehydrated; only the missing ones are dispatched, and
    each is journaled as the stage completes.  Warmup runs only when there
    is timed work left -- a fully resumed stage costs nothing.
    """
    if journal is None:
        dispatcher.solve(warm_cells)  # discarded (barrier below)
        return dispatcher.solve(cells)
    cached = journal.cached(scenario_name, stage)
    missing = [i for i in range(len(cells)) if i not in cached]
    journal.count_resumed(len(cells) - len(missing))
    out: List[Optional[SolveReport]] = [
        cached.get(i) for i in range(len(cells))
    ]
    if missing:
        dispatcher.solve(warm_cells)
        reports = dispatcher.solve([cells[i] for i in missing])
        for i, report in zip(missing, reports):
            out[i] = report
            journal.record(scenario_name, stage, i, report)
    return out  # type: ignore[return-value]


def _run_scenario(
    scenario: Scenario,
    *,
    seed: int,
    repeat: int,
    warmup: int,
    validate: bool,
    dispatcher: _CampaignDispatcher,
    engine: Optional[str] = None,
    journal=None,
) -> List[BenchRecord]:
    """Campaign-planned execution: the scenario grid as backend fan-outs.

    Stage 1 expands the plain (unbudgeted) algorithms over every instance
    and round into batches.  Stage 2 -- which needs the stage-1 reference
    peaks to place the memory budgets -- expands every budgeted (instance,
    algorithm, budget, round) cell into a second pair of batches, so the
    budget sweeps run in parallel rather than as serial size-1 calls.
    Each stage fans out its warmup cells first and waits for them before
    the timed cells, preserving the documented warmup semantics (timed
    rounds never contend with, or run ahead of, warmup work).  Cells are
    ordered tree-major within each round, keeping arena chunks
    single-tree.  Execution strategy (work-splitting, straggler
    re-splitting, blocking batches, serial) is entirely the
    ``dispatcher``'s concern.
    """
    instances = scenario.build(seed)
    trees = [tree for _, tree in instances]
    engine_options = {} if engine is None else {"engine": engine}
    plain = [a for a in scenario.algorithms if not _is_budgeted(a)]
    budgeted = [a for a in scenario.algorithms if _is_budgeted(a)]
    # the reference solver anchors optimality ratios and budget sweeps; run
    # it even when the scenario did not list it explicitly
    reference_in_run = REFERENCE_ALGORITHM in plain
    if not reference_in_run:
        plain = plain + [REFERENCE_ALGORITHM]
    n_trees, n_plain = len(trees), len(plain)

    # ---- stage 1: the plain grid ----------------------------------------
    # the options dict is shared across cells: solvers copy before use, and
    # the pickle memo ships it once per executor chunk
    def _plain_cells(n_rounds: int) -> List[_Cell]:
        return [
            (trees[i], name, None, engine_options)
            for _ in range(n_rounds)
            for i in range(n_trees)
            for name in plain
        ]

    flat1 = _solve_stage(
        dispatcher, journal, scenario.name, 1, _plain_cells(repeat),
        _plain_cells(warmup),
    )
    timings: Dict[Tuple[int, str], List[float]] = {}
    for r in range(repeat):
        base = r * n_trees * n_plain
        for i in range(n_trees):
            for j, name in enumerate(plain):
                timings.setdefault((i, name), []).append(
                    flat1[base + i * n_plain + j].wall_time
                )
    last = (repeat - 1) * n_trees * n_plain
    batches = [
        {
            name: flat1[last + i * n_plain + j]
            for j, name in enumerate(plain)
        }
        for i in range(n_trees)
    ]

    # ---- stage 2: every budgeted cell across all instances --------------
    budgets_of: Dict[int, List[Tuple[float, float]]] = {}
    budget_option_of: Dict[int, Dict[str, Any]] = {}
    for i, tree in enumerate(trees):
        reference = batches[i][REFERENCE_ALGORITHM]
        budgets_of[i] = _budgets_for(
            tree, reference.peak_memory, scenario.budget_fractions
        )
        # hand the minio family the reference traversal and its peak so the
        # timed rounds measure the scheduler alone, not a hidden re-run of
        # the in-core base solver; explore ignores both (lenient dispatch)
        budget_option_of[i] = {
            "traversal": reference.traversal,
            "in_core_peak": reference.peak_memory,
            **engine_options,
        }

    def _budget_cells(n_rounds: int):
        cells: List[_Cell] = []
        meta: List[Tuple[int, str]] = []  # (instance, algorithm@budget)
        for i, tree in enumerate(trees):
            for name in budgeted:
                for b, (_, memory) in enumerate(budgets_of[i]):
                    for _ in range(n_rounds):
                        cells.append((tree, name, memory, budget_option_of[i]))
                        meta.append((i, f"{name}@{b}"))
        return cells, meta

    warm_cells, _ = _budget_cells(warmup)
    timed_cells, meta = _budget_cells(repeat)
    flat2 = _solve_stage(
        dispatcher, journal, scenario.name, 2, timed_cells, warm_cells
    )
    budget_reports: Dict[Tuple[int, str], SolveReport] = {}
    budget_times: Dict[Tuple[int, str], List[float]] = {}
    for (i, cell_key), report in zip(meta, flat2):
        budget_times.setdefault((i, cell_key), []).append(report.wall_time)
        budget_reports[(i, cell_key)] = report  # rounds are bit-identical

    # ---- records, in the same order as the legacy path ------------------
    records: List[BenchRecord] = []
    for i, (instance_name, tree) in enumerate(instances):
        reference_peak = batches[i][REFERENCE_ALGORITHM].peak_memory
        for name in plain:
            if name == REFERENCE_ALGORITHM and not reference_in_run:
                continue
            records.append(
                _make_record(
                    scenario,
                    instance_name,
                    tree,
                    batches[i][name],
                    timings[(i, name)],
                    reference_peak=reference_peak,
                    validate=validate,
                )
            )
        for name in budgeted:
            for b, (fraction, memory) in enumerate(budgets_of[i]):
                cell_key = f"{name}@{b}"
                records.append(
                    _make_record(
                        scenario,
                        instance_name,
                        tree,
                        budget_reports[(i, cell_key)],
                        budget_times[(i, cell_key)],
                        reference_peak=reference_peak,
                        validate=validate,
                        memory_limit=memory,
                        budget_fraction=fraction,
                    )
                )
    return records


def _make_record(
    scenario: Scenario,
    instance_name: str,
    tree: Tree,
    report: SolveReport,
    times: Sequence[float],
    *,
    reference_peak: float,
    validate: bool,
    memory_limit: Optional[float] = None,
    budget_fraction: Optional[float] = None,
) -> BenchRecord:
    replay_ok, replay_error = True, None
    if validate:
        try:
            replay_report(tree, report)
        except ReplayError as exc:
            replay_ok, replay_error = False, str(exc)
    ratio = None
    if memory_limit is None and reference_peak > 0:
        # in-core solvers compete on peak memory; budgeted runs (minio,
        # explore -- possibly partial) compete on I/O volume under a bound,
        # where a peak ratio would be meaningless or misleading
        ratio = report.peak_memory / reference_peak
    extras = {
        key: value
        for key, value in report.extras.items()
        if isinstance(value, (int, float, str, bool)) or value is None
    }
    return BenchRecord(
        scenario=scenario.name,
        family=scenario.family,
        instance=instance_name,
        algorithm=report.algorithm,
        nodes=tree.size,
        peak_memory=report.peak_memory,
        io_volume=report.io_volume,
        best_time=min(times),
        mean_time=sum(times) / len(times),
        repeats=len(times),
        optimality_ratio=ratio,
        memory_limit=memory_limit,
        budget_fraction=budget_fraction,
        replay_ok=replay_ok,
        replay_error=replay_error,
        extras=extras,
    )
