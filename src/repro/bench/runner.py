"""Scenario runner: execute the campaign and collect per-run metrics.

:func:`run_scenarios` materialises every selected scenario's trees (seeded,
so repeated runs use identical instances), fans the ``trees x algorithms``
batch through :func:`repro.solvers.solve_many` (optionally across worker
processes), repeats each batch ``repeat`` times after ``warmup`` discarded
rounds, and collects one :class:`BenchRecord` per (scenario, instance,
algorithm, budget) cell:

* wall time: best and mean over the repeats, measured inside the solver via
  ``perf_counter`` (the facade stamps ``SolveReport.wall_time``);
* peak memory and I/O volume straight from the report;
* the optimality ratio against the exact MinMemory reference (``minmem``,
  itself part of the run or computed on demand);
* replay validation: every report's schedule is re-executed by
  :mod:`repro.bench.replay` and the recomputed metrics must match.

Budgeted solvers (``explore``, the ``minio`` family) are additionally swept
over the scenario's ``budget_fractions``, interpolating between the trivial
lower bound ``max MemReq`` and the in-core optimal peak.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.tree import Tree
from ..solvers.facade import solve_many
from ..solvers.registry import get_solver
from ..solvers.report import SolveReport
from .replay import ReplayError, replay_report
from .scenario import Scenario

__all__ = ["BenchRecord", "BenchRun", "run_scenarios"]

#: solver families that consume a main-memory budget
_BUDGETED_FAMILIES = ("minio", "explore")

#: the exact algorithm used as the optimality-ratio denominator
REFERENCE_ALGORITHM = "minmem"


@dataclass(frozen=True)
class BenchRecord:
    """Metrics of one (scenario, instance, algorithm, budget) cell.

    ``key`` uniquely identifies the cell across runs and machines, so two
    artifacts can be diffed record by record.
    """

    scenario: str
    family: str
    instance: str
    algorithm: str
    nodes: int
    peak_memory: float
    io_volume: float
    best_time: float
    mean_time: float
    repeats: int
    optimality_ratio: Optional[float] = None
    memory_limit: Optional[float] = None
    budget_fraction: Optional[float] = None
    replay_ok: bool = True
    replay_error: Optional[str] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        budget = "" if self.budget_fraction is None else f"@{self.budget_fraction:g}"
        return f"{self.scenario}/{self.instance}/{self.algorithm}{budget}"


@dataclass(frozen=True)
class BenchRun:
    """Outcome of one benchmark campaign."""

    records: Tuple[BenchRecord, ...]
    seed: int
    repeat: int
    warmup: int
    workers: Optional[int]
    scenarios: Tuple[str, ...]

    @property
    def families(self) -> Tuple[str, ...]:
        return tuple(sorted({r.family for r in self.records}))

    @property
    def algorithms(self) -> Tuple[str, ...]:
        return tuple(sorted({r.algorithm for r in self.records}))

    @property
    def replay_failures(self) -> Tuple[BenchRecord, ...]:
        return tuple(r for r in self.records if not r.replay_ok)

    def format_table(self) -> str:
        """Plain-text summary table (one line per record)."""
        header = (
            f"{'scenario/instance/algorithm':<58} {'nodes':>6} {'peak':>12} "
            f"{'IO':>10} {'ratio':>7} {'best':>9} {'replay':>6}"
        )
        lines = [header, "-" * len(header)]
        for r in self.records:
            ratio = "-" if r.optimality_ratio is None else f"{r.optimality_ratio:.4f}"
            lines.append(
                f"{r.key:<58} {r.nodes:>6} {r.peak_memory:>12.6g} "
                f"{r.io_volume:>10.6g} {ratio:>7} {r.best_time * 1e3:>7.2f}ms "
                f"{'ok' if r.replay_ok else 'FAIL':>6}"
            )
        return "\n".join(lines)


def _is_budgeted(algorithm: str) -> bool:
    return get_solver(algorithm).family in _BUDGETED_FAMILIES


def _budgets_for(
    tree: Tree, reference_peak: float, fractions: Sequence[float]
) -> List[Tuple[float, float]]:
    """(fraction, absolute memory) budgets between max MemReq and the peak."""
    floor = tree.max_mem_req()
    span = reference_peak - floor
    if span <= 0:
        # degenerate trees where the floor already fits the optimum: every
        # fraction collapses to the same unconstrained bound, so label the
        # single budget honestly as 1.0 rather than with the first fraction
        return [(1.0, floor)]
    budgets = []
    seen = set()
    for fraction in fractions:
        memory = floor + fraction * span
        if memory in seen:
            continue
        seen.add(memory)
        budgets.append((float(fraction), memory))
    return budgets or [(1.0, reference_peak)]


def run_scenarios(
    scenarios: Sequence[Scenario],
    *,
    seed: int = 0,
    repeat: int = 1,
    warmup: int = 0,
    workers: Optional[int] = None,
    validate: bool = True,
    engine: Optional[str] = None,
) -> BenchRun:
    """Execute ``scenarios`` and collect one record per benchmark cell.

    Parameters
    ----------
    scenarios:
        The scenarios to run (see :func:`repro.bench.select_scenarios`).
    seed:
        Passed to every scenario builder; identical seeds build identical
        instances.
    repeat:
        Timed rounds per batch; ``best_time``/``mean_time`` aggregate the
        per-solver wall times over the rounds.  Metrics are taken from the
        last round (all rounds are bit-identical, the solvers being
        deterministic).
    warmup:
        Untimed rounds discarded before the ``repeat`` timed ones.
    workers:
        Worker processes for :func:`repro.solvers.solve_many` (``None`` =
        serial).
    validate:
        Replay-validate every report (see :mod:`repro.bench.replay`).
        Validation failures are recorded on the :class:`BenchRecord` rather
        than raised, so one bad solver cannot sink a whole campaign.
    engine:
        Execution engine forwarded to every solver: ``"kernel"`` (the
        array-backed hot paths, the solvers' default) or ``"reference"``
        (the original per-node implementations).  ``None`` leaves the
        solvers on their default.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    if engine not in (None, "kernel", "reference"):
        raise ValueError(f"unknown engine {engine!r}; expected 'kernel' or 'reference'")
    records: List[BenchRecord] = []
    for scenario in scenarios:
        records.extend(
            _run_scenario(
                scenario,
                seed=seed,
                repeat=repeat,
                warmup=warmup,
                workers=workers,
                validate=validate,
                engine=engine,
            )
        )
    return BenchRun(
        records=tuple(records),
        seed=seed,
        repeat=repeat,
        warmup=warmup,
        workers=workers,
        scenarios=tuple(s.name for s in scenarios),
    )


def _run_scenario(
    scenario: Scenario,
    *,
    seed: int,
    repeat: int,
    warmup: int,
    workers: Optional[int],
    validate: bool,
    engine: Optional[str] = None,
) -> List[BenchRecord]:
    instances = scenario.build(seed)
    trees = [tree for _, tree in instances]
    engine_options = {} if engine is None else {"engine": engine}
    plain = [a for a in scenario.algorithms if not _is_budgeted(a)]
    budgeted = [a for a in scenario.algorithms if _is_budgeted(a)]
    # the reference solver anchors optimality ratios and budget sweeps; run
    # it even when the scenario did not list it explicitly
    reference_in_run = REFERENCE_ALGORITHM in plain
    if not reference_in_run:
        plain = plain + [REFERENCE_ALGORITHM]

    timings: Dict[Tuple[int, str], List[float]] = {}
    for _ in range(warmup):  # discarded rounds (interpreter/cache warmup)
        solve_many(trees, plain, workers=workers, **engine_options)
    # solve_many stamps a perf_counter wall time on every report, so timed
    # rounds simply repeat the batch and pool the per-solver stamps
    rounds = [
        solve_many(trees, plain, workers=workers, **engine_options)
        for _ in range(repeat)
    ]
    batches = rounds[-1]
    for round_reports in rounds:
        for i, per_tree in enumerate(round_reports):
            for name, report in per_tree.items():
                timings.setdefault((i, name), []).append(report.wall_time)

    records: List[BenchRecord] = []
    for i, (instance_name, tree) in enumerate(instances):
        reference = batches[i][REFERENCE_ALGORITHM]
        reference_peak = reference.peak_memory
        # hand the minio family the reference traversal and its peak so the
        # timed rounds measure the scheduler alone, not a hidden re-run of
        # the in-core base solver; explore ignores both (lenient dispatch)
        budget_options = {
            "traversal": reference.traversal,
            "in_core_peak": reference_peak,
            **engine_options,
        }
        for name in plain:
            if name == REFERENCE_ALGORITHM and not reference_in_run:
                continue
            report = batches[i][name]
            times = timings[(i, name)]
            records.append(
                _make_record(
                    scenario,
                    instance_name,
                    tree,
                    report,
                    times,
                    reference_peak=reference_peak,
                    validate=validate,
                )
            )
        for name in budgeted:
            for fraction, memory in _budgets_for(
                tree, reference_peak, scenario.budget_fractions
            ):
                times = []
                report = None
                for _ in range(warmup):
                    solve_many(
                        [tree], name, memory=memory, workers=workers,
                        **budget_options,
                    )
                for _ in range(repeat):
                    (per_tree,) = solve_many(
                        [tree], name, memory=memory, workers=workers,
                        **budget_options,
                    )
                    report = per_tree[name]
                    times.append(report.wall_time)
                assert report is not None
                records.append(
                    _make_record(
                        scenario,
                        instance_name,
                        tree,
                        report,
                        times,
                        reference_peak=reference_peak,
                        validate=validate,
                        memory_limit=memory,
                        budget_fraction=fraction,
                    )
                )
    return records


def _make_record(
    scenario: Scenario,
    instance_name: str,
    tree: Tree,
    report: SolveReport,
    times: Sequence[float],
    *,
    reference_peak: float,
    validate: bool,
    memory_limit: Optional[float] = None,
    budget_fraction: Optional[float] = None,
) -> BenchRecord:
    replay_ok, replay_error = True, None
    if validate:
        try:
            replay_report(tree, report)
        except ReplayError as exc:
            replay_ok, replay_error = False, str(exc)
    ratio = None
    if memory_limit is None and reference_peak > 0:
        # in-core solvers compete on peak memory; budgeted runs (minio,
        # explore -- possibly partial) compete on I/O volume under a bound,
        # where a peak ratio would be meaningless or misleading
        ratio = report.peak_memory / reference_peak
    extras = {
        key: value
        for key, value in report.extras.items()
        if isinstance(value, (int, float, str, bool)) or value is None
    }
    return BenchRecord(
        scenario=scenario.name,
        family=scenario.family,
        instance=instance_name,
        algorithm=report.algorithm,
        nodes=tree.size,
        peak_memory=report.peak_memory,
        io_volume=report.io_volume,
        best_time=min(times),
        mean_time=sum(times) / len(times),
        repeats=len(times),
        optimality_ratio=ratio,
        memory_limit=memory_limit,
        budget_fraction=budget_fraction,
        replay_ok=replay_ok,
        replay_error=replay_error,
        extras=extras,
    )
