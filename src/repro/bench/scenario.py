"""Scenario model and decorator-based registry for the benchmark harness.

A *scenario* names one cell of the paper's experimental campaign: a family
of trees (random shapes, harpoons, synthetic assembly trees, MatrixMarket
round-tripped elimination trees, ...), the algorithms to run on them, and --
for the budgeted out-of-core solvers -- the memory budgets to sweep.  The
tree *builder* is a plain function ``seed -> [(instance_name, Tree), ...]``;
it receives the run seed so that repeated runs benchmark bit-identical
instances (see :mod:`repro.generators.random_trees`).

Scenarios register themselves with the :func:`register_scenario` decorator,
mirroring :func:`repro.solvers.register_solver`::

    from repro.bench import register_scenario

    @register_scenario(
        "chains",
        family="synthetic",
        algorithms=("postorder", "liu", "minmem"),
        summary="unit-weight chains of increasing length",
    )
    def _chains(seed):
        return [(f"chain-{n}", chain_tree(n)) for n in (32, 128)]

``repro bench --list`` enumerates the registry; ``--filter`` selects by
substring on the scenario name, family or tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.tree import Tree
from ..solvers.registry import get_solver

__all__ = [
    "Scenario",
    "UnknownScenarioError",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_table",
    "scenario_digest",
    "select_scenarios",
]

TreeBuilder = Callable[[int], Sequence[Tuple[str, Tree]]]

#: memory budgets swept by budgeted solvers, as fractions of the gap between
#: the trivial lower bound ``max MemReq`` and the in-core peak of the
#: reference traversal (0.0 = tightest feasible memory, 1.0 = fits in-core)
DEFAULT_BUDGET_FRACTIONS = (0.25, 0.75)


class UnknownScenarioError(ValueError):
    """Raised when a scenario name does not resolve to a registered entry."""


@dataclass(frozen=True)
class Scenario:
    """One registered benchmark scenario.

    Attributes
    ----------
    name:
        Canonical (lowercase) registry name.
    family:
        Tree family the scenario sweeps (``"random"``, ``"harpoon"``,
        ``"assembly"``, ``"etree"``, ``"synthetic"``, ...).
    builder:
        ``seed -> [(instance_name, tree), ...]``; must be deterministic in
        ``seed``.
    algorithms:
        Registry names of the solvers to run on every instance.
    budget_fractions:
        Memory budgets for the budgeted solvers (``explore``, the ``minio``
        family), as fractions interpolating between ``max MemReq`` (0.0) and
        the in-core peak of the reference solver (1.0).  Ignored by
        unbudgeted algorithms, which run exactly once per instance.
    summary:
        One-line human description.
    tags:
        Free-form labels matched by ``--filter`` (e.g. ``"smoke"``).
    smoke:
        True when the scenario is small enough for the CI smoke job.
    """

    name: str
    family: str
    builder: TreeBuilder
    algorithms: Tuple[str, ...]
    budget_fractions: Tuple[float, ...] = DEFAULT_BUDGET_FRACTIONS
    summary: str = ""
    tags: Tuple[str, ...] = ()
    smoke: bool = False

    def build(self, seed: int = 0) -> List[Tuple[str, Tree]]:
        """Materialise the scenario's instances for ``seed``."""
        instances = list(self.builder(seed))
        if not instances:
            raise ValueError(f"scenario {self.name!r} built no instances")
        return instances


_REGISTRY: Dict[str, Scenario] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "_")


def register_scenario(
    name: str,
    *,
    family: str,
    algorithms: Sequence[str],
    budget_fractions: Sequence[float] = DEFAULT_BUDGET_FRACTIONS,
    summary: str = "",
    tags: Sequence[str] = (),
    smoke: bool = False,
) -> Callable[[TreeBuilder], TreeBuilder]:
    """Decorator adding a scenario to the global registry.

    Algorithm names are canonicalised through the solver registry at
    registration time, so a typo fails at import rather than mid-run.
    Re-registering a name replaces the previous entry (safe reloads).
    """

    def decorator(builder: TreeBuilder) -> TreeBuilder:
        canonical = _normalize(name)
        doc = (builder.__doc__ or "").strip().splitlines()
        _REGISTRY[canonical] = Scenario(
            name=canonical,
            family=family,
            builder=builder,
            algorithms=tuple(get_solver(a).name for a in algorithms),
            budget_fractions=tuple(float(b) for b in budget_fractions),
            summary=summary or (doc[0] if doc else canonical),
            tags=tuple(tags),
            smoke=smoke,
        )
        return builder

    return decorator


def get_scenario(name: str) -> Scenario:
    """Resolve a scenario name (case-insensitive) to its registry entry."""
    canonical = _normalize(name)
    if canonical not in _REGISTRY:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; expected one of {list_scenarios()}"
        )
    return _REGISTRY[canonical]


def list_scenarios(family: Optional[str] = None) -> List[str]:
    """Sorted names of the registered scenarios (optionally by family)."""
    return sorted(
        s.name for s in _REGISTRY.values() if family is None or s.family == family
    )


def scenario_table() -> List[Scenario]:
    """All registered scenarios, sorted by (family, name) for display."""
    return sorted(_REGISTRY.values(), key=lambda s: (s.family, s.name))


def scenario_digest(name: str, seed: int = 0) -> int:
    """crc32 over a scenario's instance names and flat tree arrays.

    Two processes agreeing on the digest built the byte-identical
    instances: the digest covers every instance name, parent array and
    weight vector, serialised canonically (JSON, crc32 -- never
    ``hash()``, which varies with ``PYTHONHASHSEED``).  The cross-process
    determinism tests compare it across spawn- and fork-started
    interpreters, where any hidden dependence on interpreter state or
    inherited globals would surface as a mismatch.
    """
    import json
    import zlib

    digest = 0
    for instance, tree in get_scenario(name).build(seed):
        kern = tree.kernel()
        blob = json.dumps(
            [instance, kern.parent, kern.f, kern.n], separators=(",", ":")
        )
        digest = zlib.crc32(blob.encode("utf-8"), digest)
    return digest


def select_scenarios(
    pattern: Optional[str] = None,
    *,
    smoke: bool = False,
) -> List[Scenario]:
    """Scenarios matched by a ``--filter`` pattern and/or the smoke flag.

    ``pattern`` is a case-insensitive substring matched against the scenario
    name, its family, its tags and its algorithm names; ``None`` matches
    everything.  With ``smoke`` only smoke-sized scenarios are kept.
    """
    needle = None if pattern is None else pattern.strip().lower()
    out = []
    for scenario in scenario_table():
        if smoke and not scenario.smoke:
            continue
        if needle:
            haystack = (
                scenario.name,
                scenario.family,
                *scenario.tags,
                *scenario.algorithms,
            )
            if not any(needle in item.lower() for item in haystack):
                continue
        out.append(scenario)
    return out
