"""repro.bench -- scenario-sweep benchmarks with schedule-replay validation.

The benchmark subsystem turns the paper's experimental campaign into a
first-class, machine-readable pipeline on top of the solver registry:

``repro.bench.scenario``
    The :class:`Scenario` model and its decorator registry
    (:func:`register_scenario`): a scenario names a tree family, a seeded
    builder, the algorithms to run and the memory budgets to sweep.
``repro.bench.scenarios``
    The built-in campaign: five families (synthetic, random, harpoon,
    assembly, MatrixMarket-derived elimination trees) x sizes x the
    MinMemory and MinIO solvers.
``repro.bench.replay``
    An independent schedule-replay engine that re-executes any
    :class:`~repro.solvers.SolveReport` step by step, recomputes peak
    memory and I/O volume from scratch, and raises on infeasible or
    misreported schedules -- the oracle behind both the benchmark runner
    and the cross-solver tests.
``repro.bench.runner``
    :func:`run_scenarios`: executes the campaign through
    :func:`repro.solvers.solve_many` (parallel workers, warmup + repeat
    timing) and collects per-cell metrics including optimality ratios.
``repro.bench.traffic``
    Open-loop traffic benchmarks over the :mod:`repro.service` daemon:
    seeded Poisson/bursty arrival schedules (plus a closed-loop baseline)
    replayed against a live service, recording latency percentiles,
    throughput, rejections and deadline misses per load cell.
``repro.bench.artifact``
    Schema-versioned ``BENCH_<timestamp>.json`` persistence plus
    :func:`compare_artifacts`, which diffs two artifacts and flags
    regressions.

Quickstart::

    from repro.bench import select_scenarios, run_scenarios, write_artifact

    run = run_scenarios(select_scenarios("minmem"), seed=0, repeat=3)
    print(run.format_table())
    path = write_artifact(run)          # BENCH_<timestamp>.json

or from the command line::

    repro-treemem bench --list
    repro-treemem bench --filter minmem --json
    repro-treemem bench --traffic --smoke --transport stdio
    repro-treemem bench --compare BENCH_old.json BENCH_new.json
"""

from .artifact import (
    BENCH_SCHEMA_VERSION,
    ArtifactComparison,
    ArtifactError,
    RecordDelta,
    compare_artifacts,
    load_artifact,
    run_to_dict,
    write_artifact,
)
from .replay import (
    ReplayError,
    ReplayMismatch,
    ReplayResult,
    replay_report,
    replay_schedule,
    replay_traversal,
)
from .checkpoint import CampaignJournal, JournalError
from .runner import BenchRecord, BenchRun, run_scenarios
from .scenario import (
    Scenario,
    UnknownScenarioError,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_table,
    select_scenarios,
)
from . import scenarios as _builtin_scenarios  # noqa: F401  (registers the campaign)
from .traffic import (
    TrafficCell,
    TrafficScenario,
    UnknownTrafficScenarioError,
    get_traffic_scenario,
    list_traffic_scenarios,
    register_traffic_scenario,
    run_traffic_scenarios,
    select_traffic_scenarios,
)

__all__ = [
    # scenarios
    "Scenario",
    "UnknownScenarioError",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_table",
    "select_scenarios",
    # replay
    "ReplayError",
    "ReplayMismatch",
    "ReplayResult",
    "replay_traversal",
    "replay_schedule",
    "replay_report",
    # runner
    "BenchRecord",
    "BenchRun",
    "run_scenarios",
    # checkpoint
    "CampaignJournal",
    "JournalError",
    # traffic
    "TrafficCell",
    "TrafficScenario",
    "UnknownTrafficScenarioError",
    "register_traffic_scenario",
    "get_traffic_scenario",
    "list_traffic_scenarios",
    "select_traffic_scenarios",
    "run_traffic_scenarios",
    # artifacts
    "BENCH_SCHEMA_VERSION",
    "ArtifactError",
    "ArtifactComparison",
    "RecordDelta",
    "run_to_dict",
    "write_artifact",
    "load_artifact",
    "compare_artifacts",
]
