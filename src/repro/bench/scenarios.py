"""Built-in benchmark scenarios.

Importing this module populates the scenario registry with the default
campaign: seven tree families mirroring the paper's experimental section,
each swept over sizes and run with the three MinMemory algorithms
(PostOrder, Liu, MinMem) plus -- where out-of-core behaviour matters -- the
budgeted solvers (``explore`` and the MinIO eviction heuristics).

=================  ==========  ===================================================
scenario           family      trees
=================  ==========  ===================================================
``synthetic``      synthetic   deterministic shapes: balanced k-ary, brooms,
                               bamboo-with-bushes, Sethi--Ullman expression trees
``random``         random      uniform/recent attachment, random binary,
                               caterpillars, with Section VI-E random weights
``harpoon``        harpoon     iterated harpoons of Theorem 1 (worst cases for
                               postorder traversals)
``assembly``       assembly    assembly trees of synthetic SPD matrices
                               (orderings x relaxed amalgamation)
``etree``          etree       elimination trees of matrices round-tripped
                               through the MatrixMarket format
``sparse_pipeline`` sparse_pipeline  grid-Laplacian assembly trees at 10k-250k
                               rows through the vectorized symbolic pipeline
``large``          large       kernel-scale synthetic instances (100k chain,
                               88k harpoon, deep random)
``service``        service     request-traffic simulation: hundreds of small
                               heterogeneous trees x all in-core algorithms
``service_burst``  service     the same traffic at full scale (2000 trees)
=================  ==========  ===================================================

Every builder takes the run ``seed`` and threads it into the random-tree
generators, so two runs with the same seed benchmark identical instances.
Scenarios marked ``smoke`` are small enough for the CI smoke job
(``repro bench --smoke``).
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import List, Tuple

from ..core.builders import chain_tree, star_tree
from ..core.tree import Tree
from ..generators.harpoon import harpoon_tree, iterated_harpoon_tree
from ..generators.random_trees import (
    random_attachment_tree,
    random_binary_tree,
    random_caterpillar,
    random_recent_attachment_tree,
    reweight_random,
)
from ..generators.synthetic import (
    balanced_tree,
    bamboo_with_bushes,
    broom_tree,
    full_binary_expression_tree,
)
from .scenario import register_scenario

__all__ = [
    "MINMEMORY_ALGORITHMS",
    "BUDGETED_ALGORITHMS",
    "IN_CORE_ALGORITHMS",
    "PORTFOLIO_ALGORITHMS",
]

#: the three MinMemory solvers compared throughout the paper
MINMEMORY_ALGORITHMS = ("postorder", "liu", "minmem")

#: budgeted solvers added on families where out-of-core behaviour matters
BUDGETED_ALGORITHMS = ("explore", "minio_first_fit", "minio_lsnf")

#: every registered in-core (unbudgeted) solver -- the service traffic mix.
#: Deliberately excludes ``auto``: the portfolio routes *to* these, and the
#: traffic request streams built from this tuple must stay byte-identical
#: across releases (tests/test_traffic_determinism.py pins their digests)
IN_CORE_ALGORITHMS = (
    "postorder",
    "postorder_natural",
    "postorder_subtree_memory",
    "liu",
    "minmem",
)

#: the portfolio entry, benchmarked on every family so each campaign
#: artifact records auto-vs-best-single evidence (tools/fit_portfolio.py)
PORTFOLIO_ALGORITHMS = ("auto",)


# ----------------------------------------------------------------------
# synthetic: deterministic parametric shapes
# ----------------------------------------------------------------------
@register_scenario(
    "synthetic",
    family="synthetic",
    algorithms=MINMEMORY_ALGORITHMS + PORTFOLIO_ALGORITHMS + ("minio_first_fit",),
    summary="deterministic parametric shapes (balanced, broom, bamboo, Sethi-Ullman)",
    tags=("deterministic",),
    smoke=True,
)
def _synthetic(seed: int) -> List[Tuple[str, Tree]]:
    del seed  # fully deterministic family
    return [
        ("balanced-3x4", balanced_tree(3, 4, f=2.0, n=1.0)),
        ("broom-40x8", broom_tree(40, 8, f=3.0, n=1.0)),
        ("bamboo-24x4", bamboo_with_bushes(24, 4, f_spine=2.0, f_bush=5.0, n=1.0)),
        ("sethi-ullman-6", full_binary_expression_tree(6)),
        ("chain-96", chain_tree(96, f=2.0, n=1.0)),
        ("star-64", star_tree(64, leaf_f=3.0, n=1.0)),
    ]


# ----------------------------------------------------------------------
# random: seeded random shapes with Section VI-E weights
# ----------------------------------------------------------------------
@register_scenario(
    "random",
    family="random",
    algorithms=MINMEMORY_ALGORITHMS + PORTFOLIO_ALGORITHMS + BUDGETED_ALGORITHMS,
    summary="seeded random shapes (attachment, binary, caterpillar) with VI-E weights",
    tags=("seeded",),
    smoke=True,
)
def _random(seed: int) -> List[Tuple[str, Tree]]:
    instances = [
        ("attachment-120", random_attachment_tree(120, seed=seed)),
        ("deep-120", random_recent_attachment_tree(120, seed=seed + 1, window=8)),
        ("binary-48", random_binary_tree(48, seed=seed + 2)),
        ("caterpillar-40", random_caterpillar(40, seed=seed + 3, max_leaves=3)),
    ]
    # the Section VI-E protocol: keep every shape, redraw the weights
    instances += [
        (f"reweighted-{name}", reweight_random(tree, seed=seed + 100 + i))
        for i, (name, tree) in enumerate(instances)
    ]
    return instances


# ----------------------------------------------------------------------
# harpoon: the paper's postorder worst cases (Theorem 1)
# ----------------------------------------------------------------------
@register_scenario(
    "harpoon",
    family="harpoon",
    algorithms=MINMEMORY_ALGORITHMS + PORTFOLIO_ALGORITHMS,
    summary="iterated harpoons of Theorem 1 (postorder worst cases)",
    tags=("deterministic", "worst-case"),
    smoke=True,
)
def _harpoon(seed: int) -> List[Tuple[str, Tree]]:
    del seed  # fully deterministic family
    return [
        ("harpoon-b4", harpoon_tree(4, memory=16.0, epsilon=0.5)),
        ("harpoon-b8", harpoon_tree(8, memory=64.0, epsilon=0.25)),
        ("iterated-b3-l3", iterated_harpoon_tree(3, levels=3, memory=27.0, epsilon=0.5)),
        ("iterated-b4-l2", iterated_harpoon_tree(4, levels=2, memory=32.0, epsilon=0.5)),
    ]


# ----------------------------------------------------------------------
# assembly: multifrontal assembly trees of synthetic SPD matrices
# ----------------------------------------------------------------------
@register_scenario(
    "assembly",
    family="assembly",
    algorithms=MINMEMORY_ALGORITHMS + PORTFOLIO_ALGORITHMS
               + ("minio_first_fit", "minio_lsnf"),
    summary="assembly trees of synthetic SPD matrices (orderings x amalgamation)",
    tags=("sparse",),
    smoke=True,
)
def _assembly(seed: int) -> List[Tuple[str, Tree]]:
    del seed  # the matrix suite and orderings are deterministic
    from ..analysis.datasets import assembly_tree_dataset

    return [
        (instance.name, instance.tree)
        for instance in assembly_tree_dataset("tiny")
    ]


# ----------------------------------------------------------------------
# etree: elimination trees round-tripped through MatrixMarket files
# ----------------------------------------------------------------------
def _etree_instance(name: str, matrix, tmpdir: str) -> Tuple[str, Tree]:
    """Round-trip ``matrix`` through a .mtx file and build its etree."""
    from ..sparse.etree import elimination_tree, etree_to_task_tree
    from ..sparse.mmio import read_matrix_market, write_matrix_market

    path = Path(tmpdir) / f"{name}.mtx"
    write_matrix_market(matrix, path, symmetric=True)
    loaded = read_matrix_market(path)
    parent = elimination_tree(loaded)
    csc = loaded.tocsc()
    # column nonzero counts stand in for contribution-block / frontal sizes
    counts = [float(csc.indptr[j + 1] - csc.indptr[j]) for j in range(csc.shape[0])]
    tree = etree_to_task_tree(parent, f=counts, n_weights=[1.0] * len(parent))
    tree.set_f(tree.root, 0.0)  # no file above the root
    return name, tree


@register_scenario(
    "large",
    family="large",
    algorithms=MINMEMORY_ALGORITHMS + PORTFOLIO_ALGORITHMS,
    summary="kernel-scale instances (100k-node chain, 88k harpoon, deep random)",
    tags=("scale", "kernel"),
    smoke=False,
)
def _large(seed: int) -> List[Tuple[str, Tree]]:
    """Instances big enough to exercise the array-backed kernel.

    These are the trees where the per-node overhead of the dict-based
    reference engine dominates; the CI bench job runs this scenario with
    ``--engine kernel`` (see the repository workflow).  Excluded from the
    smoke set to keep the PR gate fast.
    """
    return [
        ("chain-100k", chain_tree(100_000, f=2.0, n=1.0)),
        ("harpoon-b3-l9", iterated_harpoon_tree(3, levels=9, memory=1.0, epsilon=0.01)),
        ("deep-50k", random_recent_attachment_tree(50_000, seed=seed + 1, window=8)),
        ("caterpillar-20k", random_caterpillar(20_000, seed=seed + 3, max_leaves=3)),
    ]


@register_scenario(
    "sparse_pipeline",
    family="sparse_pipeline",
    algorithms=MINMEMORY_ALGORITHMS + PORTFOLIO_ALGORITHMS,
    summary="grid-Laplacian assembly trees at 10k-250k rows "
            "(vectorized ordering -> etree -> counts -> amalgamation)",
    tags=("sparse", "scale", "kernel"),
    smoke=False,
)
def _sparse_pipeline(seed: int) -> List[Tuple[str, Tree]]:
    """End-to-end symbolic pipeline on large grid Laplacians.

    Every instance runs the full matrix -> assembly-tree pipeline of
    Section VI-B (symmetrize, fill-reducing ordering, elimination tree,
    column counts, relaxed amalgamation) on the vectorized kernel engine
    before the solvers are timed on the resulting weighted tree.  The sweep
    spans 10k to 250k matrix rows -- two orders of magnitude above what the
    per-entry reference layer could build in reasonable time -- including a
    >= 100k-row 2-D grid.  Excluded from the smoke set; the CI bench job
    runs it explicitly with ``--engine kernel``.
    """
    del seed  # deterministic matrices and orderings
    from ..sparse.assembly import build_assembly_tree
    from ..sparse.matrices import grid_laplacian_2d, grid_laplacian_3d

    specs = [
        # (instance, matrix, ordering, relaxed): 10k / 10.6k / 102k / 250k rows
        ("grid2d-100x100-rcm-r4", grid_laplacian_2d(100), "rcm", 4),
        ("grid3d-22-rcm-r4", grid_laplacian_3d(22), "rcm", 4),
        ("grid2d-320x320-rcm-r4", grid_laplacian_2d(320), "rcm", 4),
        ("grid2d-500x500-natural-r16", grid_laplacian_2d(500), "natural", 16),
    ]
    return [
        (name, build_assembly_tree(matrix, ordering=ordering, relaxed=relaxed).tree)
        for name, matrix, ordering, relaxed in specs
    ]


# ----------------------------------------------------------------------
# service: simulated request traffic (the batch engine's target workload)
# ----------------------------------------------------------------------
def _service_traffic(seed: int, count: int) -> List[Tuple[str, Tree]]:
    """``count`` small heterogeneous trees, 50-500 nodes each.

    The mix cycles through the library's families -- random attachment,
    deep (recent-attachment) random, caterpillars, deterministic synthetic
    shapes and small harpoons -- so a batch looks like production request
    traffic: many independent solves on trees of wildly different shapes,
    none of them individually expensive.  Seeded: the same seed rebuilds
    the identical stream.
    """
    import random as _random

    rng = _random.Random(seed * 1_000_003 + 0x5EB1CE)
    instances: List[Tuple[str, Tree]] = []
    for i in range(count):
        size = 50 + rng.randrange(451)  # 50 .. 500 nodes
        kind = i % 5
        if kind == 0:
            tree = random_attachment_tree(size, seed=rng.randrange(2**31))
            label = "attach"
        elif kind == 1:
            tree = random_recent_attachment_tree(
                size, seed=rng.randrange(2**31), window=6
            )
            label = "deep"
        elif kind == 2:
            # the argument is the spine length; leaves (0-4 per spine node)
            # roughly triple it, so aim the spine at a third of the target
            tree = random_caterpillar(
                max(17, size // 3), seed=rng.randrange(2**31), max_leaves=4
            )
            label = "caterpillar"
        elif kind == 3:
            # deterministic synthetic shapes, parameterised by the draw
            shape = i % 3
            if shape == 0:
                tree = broom_tree(size - 7, 7, f=3.0, n=1.0)
                label = "broom"
            elif shape == 1:
                tree = bamboo_with_bushes(
                    max(2, size // 5), 4, f_spine=2.0, f_bush=5.0, n=1.0
                )
                label = "bamboo"
            else:
                tree = chain_tree(size, f=2.0, n=1.0)
                label = "chain"
        else:
            # harpoon_tree(b) has 3b + 1 nodes; iterated level-3 harpoons
            # (118 nodes) season the mix with the postorder worst cases
            if i % 2:
                tree = harpoon_tree(
                    17 + rng.randrange(150), memory=64.0, epsilon=0.25
                )
                label = "harpoon"
            else:
                tree = iterated_harpoon_tree(
                    3, levels=3, memory=float(8 + i % 5), epsilon=0.25
                )
                label = "iterharpoon"
        instances.append((f"req-{i:04d}-{label}-{tree.size}", tree))
    return instances


@register_scenario(
    "service",
    family="service",
    algorithms=IN_CORE_ALGORITHMS + PORTFOLIO_ALGORITHMS,
    summary="request-traffic simulation: 320 small heterogeneous trees "
            "x all in-core algorithms",
    tags=("seeded", "traffic", "batch"),
    smoke=True,
)
def _service(seed: int) -> List[Tuple[str, Tree]]:
    """Simulated request traffic at smoke scale (320 trees, 1600 cells).

    This is the workload the persistent batch engine is built for: many
    small independent solves where per-payload pickling and pool startup
    dominate the old per-call pool.  The full-scale variant is
    ``service_burst``.
    """
    return _service_traffic(seed, 320)


@register_scenario(
    "service_burst",
    family="service",
    algorithms=IN_CORE_ALGORITHMS + PORTFOLIO_ALGORITHMS,
    summary="request-traffic simulation at full scale: 2000 small "
            "heterogeneous trees x all in-core algorithms",
    tags=("seeded", "traffic", "batch", "scale"),
    smoke=False,
)
def _service_burst(seed: int) -> List[Tuple[str, Tree]]:
    """Thousands of small heterogeneous trees (the full traffic burst).

    Excluded from the smoke set for artifact-size reasons (10 000 records);
    run it explicitly with ``repro bench --filter service_burst --workers N``
    to exercise the engine at scale.
    """
    return _service_traffic(seed, 2000)


@register_scenario(
    "etree",
    family="etree",
    algorithms=MINMEMORY_ALGORITHMS + PORTFOLIO_ALGORITHMS,
    summary="elimination trees of matrices round-tripped through MatrixMarket",
    tags=("sparse", "mmio"),
    smoke=True,
)
def _etree(seed: int) -> List[Tuple[str, Tree]]:
    from ..sparse.matrices import banded_spd, grid_laplacian_2d, random_spd

    matrices = [
        ("grid2d-10", grid_laplacian_2d(10)),
        ("banded-100", banded_spd(100, bandwidth=4, seed=seed + 3)),
        ("random-80", random_spd(80, density=0.05, seed=seed + 7)),
    ]
    with tempfile.TemporaryDirectory(prefix="repro-bench-etree-") as tmpdir:
        return [_etree_instance(name, matrix, tmpdir) for name, matrix in matrices]
