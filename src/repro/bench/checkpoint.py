"""Campaign checkpoint journal: crash-safe record of completed cells.

A multi-minute campaign killed at 90% used to restart from zero.  The
:class:`CampaignJournal` is an append-only JSONL sidecar the runner writes
as it goes (``bench --checkpoint PATH``) and reads back on ``bench
--resume PATH``: completed cells are skipped, their reports rehydrated
from the journal, and the resulting artifact is bit-identical (modulo
timings) to an uninterrupted run -- the solvers being deterministic, a
cell's report does not depend on *when* it was solved.

File schema (one JSON document per line):

* line 1 -- the header::

      {"kind": "header", "version": 1, "params": {"seed": ..., "repeat": ...,
       "warmup": ..., "scenarios": [...], "engine": ..., "validate": ...}}

  ``params`` holds every knob that shapes cell *results*; resuming with a
  different value raises (a journal from another campaign cannot be
  silently mixed in).  Execution knobs that cannot change results
  (``workers``, ``pool``) ride in the header as ``context`` for humans
  but are not validated, so a campaign may resume on different plumbing.

* cell lines -- one per completed timed cell::

      {"kind": "cell", "scenario": "...", "stage": 1, "index": 7,
       "times": [...], "report": {<solve_report_to_dict form>}}

  ``stage`` is the runner's grid number (1 = plain algorithms, 2 =
  budgeted sweeps) and ``index`` the cell's position in that stage's flat
  grid -- together with the scenario name they address a cell uniquely
  and in a resume-stable way.

The file is flushed after every line, so a ``kill -9`` loses at most the
cell being written; a torn final line is detected and ignored on load.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..core.serialize import solve_report_from_dict, solve_report_to_dict

__all__ = ["CampaignJournal", "JournalError"]

JOURNAL_VERSION = 1

#: the result-shaping parameters a resumed run must repeat exactly
_VALIDATED_PARAMS = ("seed", "repeat", "warmup", "scenarios", "engine", "validate")


class JournalError(ValueError):
    """A checkpoint journal cannot be used: corrupt, or parameter mismatch."""


class CampaignJournal:
    """Append-only record of completed campaign cells (see module docstring).

    Construct with :meth:`fresh` (start a new journal, truncating any old
    file at the path) or :meth:`resume` (load completed cells, validate
    the header, continue appending to the same file).
    """

    def __init__(
        self,
        path: str,
        params: Dict[str, Any],
        context: Dict[str, Any],
        *,
        _cached: Optional[Dict[Tuple[str, int], Dict[int, Any]]] = None,
    ) -> None:
        self.path = path
        self.params = params
        self.context = context
        self._cached = _cached or {}
        self.cells_written = 0
        self.cells_resumed = 0
        mode = "a" if _cached is not None else "w"
        self._fh = open(path, mode, encoding="utf-8")
        if mode == "w":
            self._write_line(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "params": params,
                    "context": context,
                }
            )

    # ------------------------------------------------------------------
    @classmethod
    def fresh(
        cls, path: str, params: Dict[str, Any], context: Dict[str, Any]
    ) -> "CampaignJournal":
        return cls(path, params, context)

    @classmethod
    def resume(
        cls, path: str, params: Dict[str, Any], context: Dict[str, Any]
    ) -> "CampaignJournal":
        """Load ``path``, validate its header against ``params``, continue.

        Raises :class:`JournalError` when the file is missing, its header
        is unreadable, or any result-shaping parameter differs from the
        resuming run's.
        """
        if not os.path.exists(path):
            raise JournalError(f"no checkpoint journal at {path!r}")
        cached: Dict[Tuple[str, int], Dict[int, Any]] = {}
        header = None
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    if lineno == 1:
                        raise JournalError(
                            f"checkpoint journal {path!r} has no readable header"
                        ) from None
                    break  # torn tail from a kill mid-write: ignore the rest
                if lineno == 1:
                    if doc.get("kind") != "header":
                        raise JournalError(
                            f"checkpoint journal {path!r} does not start with "
                            "a header line"
                        )
                    if doc.get("version") != JOURNAL_VERSION:
                        raise JournalError(
                            f"checkpoint journal {path!r} has version "
                            f"{doc.get('version')!r}; this build writes "
                            f"version {JOURNAL_VERSION}"
                        )
                    header = doc
                    continue
                if doc.get("kind") != "cell":
                    continue
                key = (str(doc["scenario"]), int(doc["stage"]))
                cached.setdefault(key, {})[int(doc["index"])] = doc
        if header is None:
            raise JournalError(f"checkpoint journal {path!r} is empty")
        old = header.get("params", {})
        for name in _VALIDATED_PARAMS:
            theirs, ours = old.get(name), params.get(name)
            if isinstance(theirs, list):
                theirs = tuple(theirs)
            if isinstance(ours, list):
                ours = tuple(ours)
            if theirs != ours:
                raise JournalError(
                    f"cannot resume from {path!r}: parameter {name!r} was "
                    f"{theirs!r} there but is {ours!r} now"
                )
        return cls(path, params, context, _cached=cached)

    # ------------------------------------------------------------------
    def _write_line(self, doc: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def cached(self, scenario: str, stage: int) -> Dict[int, Any]:
        """``index -> SolveReport`` for the completed cells of one stage."""
        docs = self._cached.get((scenario, stage), {})
        return {
            index: solve_report_from_dict(doc["report"])
            for index, doc in docs.items()
        }

    def cached_times(self, scenario: str, stage: int) -> Dict[int, List[float]]:
        docs = self._cached.get((scenario, stage), {})
        return {
            index: [float(t) for t in doc.get("times", [])]
            for index, doc in docs.items()
        }

    def record(
        self,
        scenario: str,
        stage: int,
        index: int,
        report: Any,
        times: Optional[List[float]] = None,
    ) -> None:
        """Journal one completed timed cell (flushed immediately)."""
        from ..faults.stats import global_fault_stats

        self._write_line(
            {
                "kind": "cell",
                "scenario": scenario,
                "stage": stage,
                "index": index,
                "times": list(times or []),
                "report": solve_report_to_dict(report),
            }
        )
        self.cells_written += 1
        global_fault_stats.record_checkpoint_cells(1)

    def count_resumed(self, n: int) -> None:
        self.cells_resumed += n

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
