"""Open-loop traffic benchmarks over the solver service.

The campaign benchmarks (:mod:`repro.bench.runner`) measure *batch*
throughput: hand the engine a grid, wait for the last cell.  A service is
judged differently -- requests arrive on their own clock, and the question
is what latency, rejection and deadline-miss behaviour a given offered load
produces.  This module adds that axis:

* **arrival processes** -- seeded, deterministic inter-arrival schedules:
  ``poisson`` (exponential gaps at a target rate), ``burst`` (groups of
  back-to-back arrivals, bursts spaced to hold the same mean rate) and
  ``closed`` (the classic closed loop: ``concurrency`` clients, each
  issuing its next request when the previous answers -- the load generator
  the open-loop literature warns about, kept as the comparison baseline);
* **a load generator** that replays a schedule against a
  :class:`~repro.service.SolverService` through either transport --
  ``inproc`` (direct ``handle()`` calls) or ``stdio`` (full NDJSON
  round-trip through :func:`~repro.service.serve_stdio`, the transport CI
  uses) -- firing requests *at their arrival time* regardless of how slow
  the service answers (that is what makes it open-loop);
* **traffic scenarios** over the campaign's service tree mixes
  (:mod:`repro.bench.scenarios`), each a set of cells sweeping arrival
  process and offered rate;
* :func:`run_traffic_scenarios`, which drives the cells and returns a
  standard :class:`~repro.bench.runner.BenchRun` -- one record per cell,
  latency percentiles / throughput / rejection / deadline-miss counts in
  ``extras`` -- so traffic runs persist and diff through the existing
  schema-v1 artifact pipeline unchanged.

Request streams exercise the service realistically: every request names a
tree from the mix (full payload on first sight, interner token after --
the scatter-once analogue clients are expected to use) and an algorithm
drawn from the in-core set.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import percentile
from ..service import SolverService, serve_stdio, tree_payload_token
from .runner import BenchRecord, BenchRun
from .scenarios import IN_CORE_ALGORITHMS, _service_traffic

__all__ = [
    "TrafficCell",
    "TrafficScenario",
    "UnknownTrafficScenarioError",
    "register_traffic_scenario",
    "get_traffic_scenario",
    "list_traffic_scenarios",
    "select_traffic_scenarios",
    "build_request_docs",
    "request_stream_digest",
    "portfolio_baseline",
    "arrival_schedule",
    "run_traffic_scenarios",
    "ARRIVAL_PROCESSES",
    "TRAFFIC_TRANSPORTS",
]

ARRIVAL_PROCESSES = ("poisson", "burst", "closed")
TRAFFIC_TRANSPORTS = ("inproc", "stdio")


class UnknownTrafficScenarioError(ValueError):
    """Raised when a traffic scenario name is not registered."""


@dataclass(frozen=True)
class TrafficCell:
    """One load point: an arrival process at an offered rate.

    ``rate`` is the offered load in requests/second (the *schedule's* rate;
    an overloaded service still receives arrivals at this rate -- open
    loop).  ``burst_size`` groups arrivals back-to-back for the ``burst``
    process; ``concurrency`` is the client count of the ``closed`` process,
    which ignores ``rate`` entirely.  ``deadline`` (seconds) rides on every
    request of the cell; ``None`` means no deadline.
    """

    name: str
    arrival: str
    requests: int
    rate: float = 50.0
    burst_size: int = 1
    concurrency: int = 4
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; expected one of "
                f"{ARRIVAL_PROCESSES}"
            )
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.arrival != "closed" and self.rate <= 0:
            raise ValueError("rate must be > 0 requests/second")


@dataclass(frozen=True)
class TrafficScenario:
    """A named set of load points over one service tree mix."""

    name: str
    summary: str
    tree_count: int
    cells: Tuple[TrafficCell, ...]
    algorithms: Tuple[str, ...] = IN_CORE_ALGORITHMS
    tags: Tuple[str, ...] = ()
    smoke: bool = False


_REGISTRY: Dict[str, TrafficScenario] = {}


def register_traffic_scenario(scenario: TrafficScenario) -> TrafficScenario:
    """Add (or replace) a traffic scenario in the registry."""
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_traffic_scenario(name: str) -> TrafficScenario:
    canonical = name.strip().lower().replace("-", "_")
    if canonical not in _REGISTRY:
        raise UnknownTrafficScenarioError(
            f"unknown traffic scenario {name!r}; expected one of "
            f"{list_traffic_scenarios()}"
        )
    return _REGISTRY[canonical]


def list_traffic_scenarios() -> List[str]:
    return sorted(_REGISTRY)


def select_traffic_scenarios(
    pattern: Optional[str] = None, *, smoke: bool = False
) -> List[TrafficScenario]:
    """Traffic scenarios matched by substring / smoke flag (as in bench)."""
    needle = None if pattern is None else pattern.strip().lower()
    out = []
    for name in list_traffic_scenarios():
        scenario = _REGISTRY[name]
        if smoke and not scenario.smoke:
            continue
        if needle:
            haystack = (scenario.name, *scenario.tags, scenario.summary)
            if not any(needle in item.lower() for item in haystack):
                continue
        out.append(scenario)
    return out


# ----------------------------------------------------------------------
# request streams and arrival schedules
# ----------------------------------------------------------------------
def build_request_docs(
    scenario: TrafficScenario, cell: TrafficCell, seed: int
) -> List[Dict[str, Any]]:
    """The cell's request documents, in arrival order (seeded, stable).

    Trees come from the campaign's service mix
    (:func:`repro.bench.scenarios._service_traffic`); each request picks a
    mix tree and an in-core algorithm from the seeded stream.  The first
    request naming a tree carries its full parent-array payload; every
    later one sends the interner token -- the request pattern real clients
    are expected to converge to, and the one that exercises both interner
    paths.
    """
    import random as _random
    import zlib

    mix = _service_traffic(seed, scenario.tree_count)
    payloads = []
    for _, tree in mix:
        kernel = tree.kernel()
        payloads.append(
            {"parents": kernel.parent, "f": kernel.f, "n": kernel.n}
        )
    # crc32, not hash(): stable across processes whatever PYTHONHASHSEED is
    rng = _random.Random((seed * 7_368_787) ^ zlib.crc32(cell.name.encode()))
    sent_full = set()
    docs = []
    for i in range(cell.requests):
        which = rng.randrange(len(payloads))
        payload = payloads[which]
        if which in sent_full:
            tree_doc: Dict[str, Any] = {"token": tree_payload_token(payload)}
        else:
            sent_full.add(which)
            tree_doc = payload
        doc: Dict[str, Any] = {
            "id": f"r-{cell.name}-{i:05d}",
            "tree": tree_doc,
            "algorithm": rng.choice(scenario.algorithms),
            "report": "summary",
        }
        if cell.deadline is not None:
            doc["deadline"] = cell.deadline
        docs.append(doc)
    return docs


def request_stream_digest(scenario_name: str, cell_index: int, seed: int) -> int:
    """crc32 of a cell's full request stream, canonically serialised.

    The digest covers every byte a client would put on the wire (the docs
    in arrival order, JSON with sorted keys) plus the arrival schedule, so
    two processes agreeing on the digest agree on the exact traffic.  Used
    by the cross-process determinism tests to assert that spawn- and
    fork-started interpreters generate byte-identical streams (nothing in
    the pipeline may depend on ``PYTHONHASHSEED`` or interpreter state).
    """
    import zlib

    scenario = get_traffic_scenario(scenario_name)
    cell = scenario.cells[cell_index]
    payload = {
        "docs": build_request_docs(scenario, cell, seed),
        "schedule": arrival_schedule(cell, seed),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(blob.encode("utf-8"))


def portfolio_baseline(scenario: TrafficScenario, seed: int) -> Dict[str, Any]:
    """How ``auto`` fares against the best *fixed* algorithm on a tree mix.

    Solves every tree of the scenario's mix with ``auto`` and with each
    in-core algorithm, and reports: the single fixed algorithm a operator
    would have pinned (lowest total peak over the mix), auto's worst and
    mean peak ratio against the per-tree best, and how often auto matches
    it exactly.  Attached to ``service_auto`` records so the committed
    traffic artifacts carry the portfolio's optimality evidence.
    """
    from ..solvers import solve

    mix = _service_traffic(seed, scenario.tree_count)
    fixed_totals = {name: 0.0 for name in IN_CORE_ALGORITHMS}
    ratios = []
    exact = 0
    for _, tree in mix:
        kern = tree.kernel()
        peaks = {
            name: solve(kern, name).peak_memory for name in IN_CORE_ALGORITHMS
        }
        for name, peak in peaks.items():
            fixed_totals[name] += peak
        best = min(peaks.values())
        auto_peak = solve(kern, "auto").peak_memory
        ratios.append(auto_peak / best if best else 1.0)
        if auto_peak == best:
            exact += 1
    best_fixed = min(fixed_totals, key=lambda name: (fixed_totals[name], name))
    return {
        "trees": len(mix),
        "best_fixed_algorithm": best_fixed,
        "best_fixed_total_peak": fixed_totals[best_fixed],
        "auto_worst_ratio": max(ratios),
        "auto_mean_ratio": sum(ratios) / len(ratios),
        "auto_exact_fraction": exact / len(mix),
    }


def arrival_schedule(cell: TrafficCell, seed: int) -> List[float]:
    """Arrival times (seconds from start) of the cell's open-loop schedule.

    ``poisson`` draws exponential inter-arrival gaps at ``rate``;
    ``burst`` releases ``burst_size`` requests back-to-back, with the
    inter-burst gap sized so the *mean* offered rate stays ``rate``.
    Closed-loop cells have no schedule (arrivals are completions).
    """
    import random as _random

    if cell.arrival == "closed":
        return []
    rng = _random.Random((seed * 2_246_822_519) % (2**31) + len(cell.name))
    times: List[float] = []
    now = 0.0
    if cell.arrival == "poisson":
        for _ in range(cell.requests):
            now += rng.expovariate(cell.rate)
            times.append(now)
    else:  # burst
        gap = cell.burst_size / cell.rate
        while len(times) < cell.requests:
            for _ in range(min(cell.burst_size, cell.requests - len(times))):
                times.append(now)
            now += gap
    return times


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
class _InprocTransport:
    """Direct calls into the service core (no serialization)."""

    def __init__(self, service: SolverService) -> None:
        self._service = service

    async def send(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        return (await self._service.handle(doc)).to_dict()

    async def close(self) -> None:
        pass


class _StdioTransport:
    """Full NDJSON round-trip through the stdio front end (in-memory pipes).

    Every request is serialized to a line, handed to
    :func:`~repro.service.serve_stdio`, and its response line parsed back --
    the identical code path the CI smoke job drives through a subprocess,
    without the subprocess.
    """

    def __init__(self, service: SolverService) -> None:
        self._lines: "asyncio.Queue" = asyncio.Queue()
        self._waiters: Dict[str, "asyncio.Future"] = {}
        self._server = asyncio.ensure_future(
            serve_stdio(service, self._read_line, self._write_line)
        )

    async def _read_line(self) -> Optional[str]:
        return await self._lines.get()

    async def _write_line(self, text: str) -> None:
        doc = json.loads(text)
        waiter = self._waiters.pop(doc.get("id", ""), None)
        if waiter is not None and not waiter.done():
            waiter.set_result(doc)

    async def send(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        waiter = asyncio.get_running_loop().create_future()
        self._waiters[doc["id"]] = waiter
        await self._lines.put(json.dumps(doc, separators=(",", ":")))
        return await waiter

    async def close(self) -> None:
        await self._lines.put(None)  # EOF: the front end drains and returns
        await self._server


def _make_transport(service: SolverService, transport: str):
    if transport == "inproc":
        return _InprocTransport(service)
    if transport == "stdio":
        return _StdioTransport(service)
    raise ValueError(
        f"unknown transport {transport!r}; expected one of {TRAFFIC_TRANSPORTS}"
    )


# ----------------------------------------------------------------------
# load generation
# ----------------------------------------------------------------------
@dataclass
class CellOutcome:
    """Client-side view of one cell's run."""

    sent: int = 0
    completed: int = 0
    rejected: int = 0
    deadline_missed: int = 0
    errors: int = 0
    duration_seconds: float = 0.0
    #: client-observed latency of each *successful* request (seconds)
    latencies: List[float] = field(default_factory=list)

    def percentiles(self) -> Dict[str, float]:
        ordered = sorted(self.latencies)
        return {
            "p50": percentile(ordered, 50.0),
            "p95": percentile(ordered, 95.0),
            "p99": percentile(ordered, 99.0),
        }

    @property
    def throughput(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.completed / self.duration_seconds


def _account(outcome: CellOutcome, response: Dict[str, Any], latency: float) -> None:
    status = response.get("status")
    if status == "ok":
        outcome.completed += 1
        outcome.latencies.append(latency)
    elif status == "rejected":
        outcome.rejected += 1
    elif status == "deadline":
        outcome.deadline_missed += 1
    else:
        outcome.errors += 1


async def _drive_open_loop(
    transport, docs: Sequence[Dict[str, Any]], times: Sequence[float]
) -> CellOutcome:
    """Fire each request at its scheduled arrival time; never wait in line.

    The generator's clock is the schedule, not the service: a response
    still in flight does not delay the next arrival.  Under overload the
    service therefore sees the full offered rate and must shed load via
    admission control -- exactly the behaviour closed-loop generators mask.
    """
    outcome = CellOutcome()
    tasks = []
    start = perf_counter()

    async def fire(doc: Dict[str, Any]) -> None:
        t0 = perf_counter()
        response = await transport.send(doc)
        _account(outcome, response, perf_counter() - t0)

    for doc, at in zip(docs, times):
        delay = (start + at) - perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        outcome.sent += 1
        tasks.append(asyncio.ensure_future(fire(doc)))
    if tasks:
        await asyncio.gather(*tasks)
    outcome.duration_seconds = perf_counter() - start
    return outcome


async def _drive_closed_loop(
    transport, docs: Sequence[Dict[str, Any]], concurrency: int
) -> CellOutcome:
    """``concurrency`` clients, each sending its next request on response."""
    outcome = CellOutcome()
    queue = list(docs)
    queue.reverse()  # pop() from the front, in arrival order
    start = perf_counter()

    async def worker() -> None:
        while queue:
            doc = queue.pop()
            outcome.sent += 1
            t0 = perf_counter()
            response = await transport.send(doc)
            _account(outcome, response, perf_counter() - t0)

    await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    outcome.duration_seconds = perf_counter() - start
    return outcome


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
async def run_traffic_cell(
    service: SolverService,
    scenario: TrafficScenario,
    cell: TrafficCell,
    *,
    seed: int = 0,
    transport: str = "inproc",
) -> Tuple[CellOutcome, Dict[str, Any]]:
    """Drive one cell against a started service; (outcome, stats snapshot)."""
    docs = build_request_docs(scenario, cell, seed)
    client = _make_transport(service, transport)
    try:
        if cell.arrival == "closed":
            outcome = await _drive_closed_loop(client, docs, cell.concurrency)
        else:
            outcome = await _drive_open_loop(
                client, docs, arrival_schedule(cell, seed)
            )
    finally:
        await client.close()
    return outcome, service.snapshot()


def _cell_record(
    scenario: TrafficScenario,
    cell: TrafficCell,
    outcome: CellOutcome,
    stats: Dict[str, Any],
    *,
    transport: str,
    pool: str,
    workers: int,
) -> BenchRecord:
    """One schema-v1 record per cell: times are latencies, extras the rest.

    ``best_time`` carries the p50 and ``mean_time`` the mean of the
    client-observed latency; ``peak_memory``/``io_volume`` are 0 (traffic
    cells measure the service, not a schedule), keeping the artifact
    pipeline and its comparison math unchanged.
    """
    pct = outcome.percentiles()
    mean_latency = (
        sum(outcome.latencies) / len(outcome.latencies)
        if outcome.latencies else 0.0
    )
    extras: Dict[str, Any] = {
        "traffic": True,
        "transport": transport,
        "arrival": cell.arrival,
        "offered_rate": cell.rate if cell.arrival != "closed" else None,
        "burst_size": cell.burst_size if cell.arrival == "burst" else None,
        "concurrency": cell.concurrency if cell.arrival == "closed" else None,
        "deadline": cell.deadline,
        "requests": outcome.sent,
        "completed": outcome.completed,
        "rejected": outcome.rejected,
        "deadline_missed": outcome.deadline_missed,
        "errors": outcome.errors,
        "duration_seconds": outcome.duration_seconds,
        "throughput_rps": outcome.throughput,
        "latency_p50": pct["p50"],
        "latency_p95": pct["p95"],
        "latency_p99": pct["p99"],
        "latency_mean": mean_latency,
        "service_max_queue_depth": stats.get("max_queue_depth"),
        "service_interned_trees": stats.get("interned_trees"),
        "service_interner_hits": stats.get("interner_hits"),
        "pool": pool,
        "workers": workers,
    }
    return BenchRecord(
        scenario=scenario.name,
        family="traffic",
        instance=cell.name,
        algorithm="service",
        nodes=outcome.sent,
        peak_memory=0.0,
        io_volume=0.0,
        best_time=pct["p50"],
        mean_time=mean_latency,
        repeats=max(1, outcome.completed),
        extras=extras,
    )


def run_traffic_scenarios(
    scenarios: Sequence[TrafficScenario],
    *,
    seed: int = 0,
    workers: Optional[int] = None,
    pool: Optional[str] = None,
    transport: str = "inproc",
    max_pending: int = 128,
) -> BenchRun:
    """Run every cell of every traffic scenario; a standard :class:`BenchRun`.

    Each cell gets a fresh :class:`~repro.service.SolverService` (so its
    counters are the cell's counters) configured with ``workers``/``pool``
    exactly like the service the ``repro serve`` command starts.  The
    result flows through the existing artifact pipeline: ``write_artifact``
    persists it, ``compare_artifacts`` diffs two traffic runs cell by cell.
    """
    if transport not in TRAFFIC_TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of "
            f"{TRAFFIC_TRANSPORTS}"
        )
    start = perf_counter()

    async def _run() -> List[BenchRecord]:
        records: List[BenchRecord] = []
        for scenario in scenarios:
            # portfolio scenarios carry their optimality evidence: how the
            # routed choice compares against pinning one fixed algorithm
            baseline = (
                portfolio_baseline(scenario, seed)
                if "auto" in scenario.algorithms else None
            )
            for cell in scenario.cells:
                service = SolverService(
                    workers=workers,
                    pool=pool,
                    max_pending=max_pending,
                    # the generator sends each distinct tree in full exactly
                    # once and by token afterwards, so the interner must hold
                    # the whole mix or evicted tokens come back unknown
                    interner_capacity=max(512, scenario.tree_count),
                )
                async with service:
                    outcome, stats = await run_traffic_cell(
                        service, scenario, cell,
                        seed=seed, transport=transport,
                    )
                record = _cell_record(
                    scenario, cell, outcome, stats,
                    transport=transport,
                    pool=service.pool_mode,
                    workers=service.workers,
                )
                if baseline is not None:
                    record.extras["portfolio_baseline"] = baseline
                records.append(record)
        return records

    records = asyncio.run(_run())
    return BenchRun(
        records=tuple(records),
        seed=seed,
        repeat=1,
        warmup=0,
        workers=workers,
        scenarios=tuple(s.name for s in scenarios),
        pool=pool,
        campaign_seconds=perf_counter() - start,
    )


# ----------------------------------------------------------------------
# built-in traffic scenarios
# ----------------------------------------------------------------------
register_traffic_scenario(TrafficScenario(
    name="service_open_smoke",
    summary="CI smoke: ~50 mixed requests, modest Poisson rate, generous "
            "deadlines -- must complete with zero rejections or misses",
    tree_count=24,
    cells=(
        TrafficCell(
            name="poisson-r25",
            arrival="poisson",
            requests=50,
            rate=25.0,
            deadline=30.0,
        ),
    ),
    tags=("smoke", "ci"),
    smoke=True,
))

register_traffic_scenario(TrafficScenario(
    name="service_poisson",
    summary="open-loop Poisson arrivals over the 320-tree service mix, "
            "two offered rates",
    tree_count=320,
    cells=(
        TrafficCell(
            name="poisson-r50", arrival="poisson", requests=400, rate=50.0,
            deadline=10.0,
        ),
        TrafficCell(
            name="poisson-r200", arrival="poisson", requests=800, rate=200.0,
            deadline=10.0,
        ),
    ),
    tags=("open-loop", "poisson"),
))

register_traffic_scenario(TrafficScenario(
    name="service_auto",
    summary="every request solved with the 'auto' portfolio over a mixed "
            "64-tree shape mix; records carry the auto-vs-best-fixed "
            "baseline in extras['portfolio_baseline']",
    tree_count=64,
    cells=(
        TrafficCell(
            name="poisson-r40", arrival="poisson", requests=200, rate=40.0,
            deadline=15.0,
        ),
        TrafficCell(
            name="burst-b16-r80", arrival="burst", requests=200, rate=80.0,
            burst_size=16, deadline=15.0,
        ),
    ),
    algorithms=("auto",),
    tags=("open-loop", "portfolio"),
))

register_traffic_scenario(TrafficScenario(
    name="service_burst_open",
    summary="sustained bursty open-loop traffic over the 2000-tree burst "
            "mix, with a closed-loop comparison cell",
    tree_count=2000,
    cells=(
        TrafficCell(
            name="burst-b32-r160", arrival="burst", requests=2000,
            rate=160.0, burst_size=32, deadline=15.0,
        ),
        TrafficCell(
            name="poisson-r160", arrival="poisson", requests=1000,
            rate=160.0, deadline=15.0,
        ),
        TrafficCell(
            name="closed-c8", arrival="closed", requests=1000, concurrency=8,
        ),
    ),
    tags=("open-loop", "burst", "scale"),
))
