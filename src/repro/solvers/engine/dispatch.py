"""Payload dispatch: compact cells fanned over the persistent pool.

A *cell* is one solver invocation: ``(tree, algorithm, memory, options)``.
:meth:`SolveEngine.run_batch` turns a list of cells into compact payloads --
``(TreeRef, algorithm, memory, options)`` tuples whose tree part is a token
into the shared arena -- and maps them over the persistent pool with a
computed chunk size, so a 10 000-cell campaign costs hundreds of executor
messages rather than 10 000, and no message carries a pickled tree.

Results come back in cell order and are bit-identical to the serial path
(``wall_time``, stamped inside the worker, is excluded from report
equality).  Infrastructure failures -- a platform that cannot spawn
subprocesses, a worker crash, unpicklable custom options -- degrade to
``None`` (callers run the batch serially) with a :class:`RuntimeWarning`
naming the cause; exceptions raised by the solvers themselves propagate
unchanged, exactly like the legacy pool path.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..report import SolveReport
from .arena import TreeArena, TreeRef, resolve
from .pool import PersistentPool

__all__ = ["SolveEngine", "get_engine", "shutdown_engine"]

#: payloads per executor message: large enough to amortize IPC, small enough
#: to keep every worker busy (at least ~4 chunks per worker per batch)
MAX_CHUNKSIZE = 64

Cell = Tuple[Any, str, Optional[float], Dict[str, Any]]


def _solve_payload(payload: Tuple[TreeRef, str, Optional[float], Dict[str, Any]]):
    """Module-level worker entry point (importable under any start method).

    Lenient dispatch, as in the serial batch path: one option set serves
    algorithms with different signatures.
    """
    from ..facade import _dispatch

    ref, algorithm, memory, options = payload
    return _dispatch(resolve(ref), algorithm, memory, options, strict=False)


def _compute_chunksize(n_payloads: int, workers: int) -> int:
    return max(1, min(MAX_CHUNKSIZE, n_payloads // (workers * 4) or 1))


class SolveEngine:
    """Persistent pool + shared arena behind one ``run_batch`` call.

    One engine instance (usually the process-wide default from
    :func:`get_engine`) is shared by every ``solve_many`` call and bench
    round; :meth:`shutdown` releases the workers and the shared-memory
    segments explicitly, and is registered via ``atexit`` for the default
    engine.
    """

    def __init__(self, *, use_shared_memory: Optional[bool] = None) -> None:
        self.arena = TreeArena(use_shared_memory=use_shared_memory)
        self.pool = PersistentPool()
        self._lock = threading.Lock()
        self._warned_unavailable = False

    # ------------------------------------------------------------------
    def run_batch(
        self, cells: Sequence[Cell], workers: int
    ) -> Optional[List[SolveReport]]:
        """Solve every cell on the pool; ``None`` means "run serially".

        Cells sharing a tree should be adjacent (tree-major order): chunks
        then reference a single arena token each, and blob-transport
        fallbacks serialize the tree once per chunk (pickle memo) instead of
        once per payload.

        The requested worker count is clamped to the batch size and twice
        the machine's core count: up to one extra worker per core hides the
        queue latency at chunk boundaries (a lone worker sleeps while the
        parent feeds and drains the pipes), while heavier oversubscription
        only adds scheduler churn.
        """
        cores = os.cpu_count() or 1
        workers = max(1, min(workers, len(cells), 2 * cores))
        with self._lock:
            executor = self.pool.ensure(workers)
            if executor is None:
                if not self._warned_unavailable:
                    self._warned_unavailable = True
                    warnings.warn(
                        "solve engine: this platform cannot spawn worker "
                        "processes; batches run serially (warned once per "
                        "engine)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                return None
            refs: Dict[int, TreeRef] = {}
            payloads = []
            for tree, algorithm, memory, options in cells:
                ref = refs.get(id(tree))
                if ref is None:
                    ref = refs[id(tree)] = self.arena.export(tree)
                payloads.append((ref, algorithm, memory, options))
            chunksize = _compute_chunksize(len(payloads), self.pool.workers)
        from concurrent.futures.process import BrokenProcessPool
        from pickle import PicklingError

        try:
            try:
                return list(
                    executor.map(_solve_payload, payloads, chunksize=chunksize)
                )
            except RuntimeError:
                # a concurrent caller may have grown the pool between our
                # ensure() and map(): the drained old executor then rejects
                # new futures ("cannot schedule new futures after shutdown").
                # Retry once on the replacement; genuine solver RuntimeErrors
                # re-raise because the pool is unchanged.
                with self._lock:
                    current = self.pool.executor
                if current is None or current is executor:
                    raise
                return list(
                    current.map(_solve_payload, payloads, chunksize=chunksize)
                )
        except BrokenProcessPool as exc:
            warnings.warn(
                f"solve engine: worker pool broke ({exc}); restarting the pool "
                "and falling back to serial execution for this batch",
                RuntimeWarning,
                stacklevel=3,
            )
            with self._lock:
                self.pool.reset()
            return None
        except PicklingError as exc:
            warnings.warn(
                f"solve engine: payload not picklable ({exc}); falling back to "
                "serial execution for this batch",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    def shutdown(self) -> None:
        """Terminate the workers and unlink every shared-memory segment."""
        with self._lock:
            self.pool.shutdown()
            self.arena.close()


# ----------------------------------------------------------------------
# the process-wide default engine
# ----------------------------------------------------------------------
_default_engine: Optional[SolveEngine] = None
_default_lock = threading.Lock()


def get_engine() -> SolveEngine:
    """The process-wide :class:`SolveEngine`, created on first use."""
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            import atexit

            _default_engine = SolveEngine()
            atexit.register(shutdown_engine)
        return _default_engine


def shutdown_engine() -> None:
    """Shut down the default engine (idempotent; a new one builds on demand)."""
    global _default_engine
    with _default_lock:
        engine = _default_engine
        _default_engine = None
    if engine is not None:
        engine.shutdown()
