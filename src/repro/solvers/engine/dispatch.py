"""Payload dispatch: compact cells fanned over the persistent pool.

A *cell* is one solver invocation: ``(tree, algorithm, memory, options)``.
:meth:`SolveEngine.run_batch` turns a list of cells into compact payloads --
``(TreeRef, algorithm, memory, options)`` tuples whose tree part is a token
into the shared arena -- and maps them over the persistent pool with a
computed chunk size, so a 10 000-cell campaign costs hundreds of executor
messages rather than 10 000, and no message carries a pickled tree.

Results come back in cell order and are bit-identical to the serial path
(``wall_time``, stamped inside the worker, is excluded from report
equality).  Infrastructure failures -- a platform that cannot spawn
subprocesses, a worker crash, unpicklable custom options -- degrade to
``None`` (callers run the batch serially) with a :class:`RuntimeWarning`
naming the cause; exceptions raised by the solvers themselves propagate
unchanged, exactly like the legacy pool path.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..report import SolveReport
from .arena import TreeArena, TreeRef, resolve
from .pool import PersistentPool

__all__ = ["EngineStoppedError", "SolveEngine", "get_engine", "shutdown_engine"]


class EngineStoppedError(RuntimeError):
    """Raised when work is submitted to an engine whose stop flag is set.

    The stop flag (:meth:`SolveEngine.stop`) is the drain signal of the
    service layer: once set, new batches and submissions fail fast with this
    typed error instead of quietly queueing behind a shutdown, while work
    already on the pool runs to completion.  :meth:`SolveEngine.shutdown`
    clears the flag, so an engine remains reusable after a full drain.
    """

#: payloads per executor message: large enough to amortize IPC, small enough
#: to keep every worker busy (at least ~4 chunks per worker per batch)
MAX_CHUNKSIZE = 64

Cell = Tuple[Any, str, Optional[float], Dict[str, Any]]


def _solve_payload(payload: Tuple[TreeRef, str, Optional[float], Dict[str, Any]]):
    """Module-level worker entry point (importable under any start method).

    Lenient dispatch, as in the serial batch path: one option set serves
    algorithms with different signatures.
    """
    from ..facade import _dispatch

    ref, algorithm, memory, options = payload
    return _dispatch(resolve(ref), algorithm, memory, options, strict=False)


def _compute_chunksize(n_payloads: int, workers: int) -> int:
    return max(1, min(MAX_CHUNKSIZE, n_payloads // (workers * 4) or 1))


class SolveEngine:
    """Persistent pool + shared arena behind one ``run_batch`` call.

    One engine instance (usually the process-wide default from
    :func:`get_engine`) is shared by every ``solve_many`` call and bench
    round; :meth:`shutdown` releases the workers and the shared-memory
    segments explicitly, and is registered via ``atexit`` for the default
    engine.
    """

    def __init__(self, *, use_shared_memory: Optional[bool] = None) -> None:
        self.arena = TreeArena(use_shared_memory=use_shared_memory)
        self.pool = PersistentPool()
        self._lock = threading.Lock()
        self._warned_unavailable = False
        self._stopping = threading.Event()
        # observability counters (see snapshot()); guarded by _lock on the
        # batch path and incremented from the event loop on the submit path
        self.batches = 0
        self.cells = 0
        self.submits = 0
        self.serial_fallbacks = 0
        self.broken_pools = 0

    # ------------------------------------------------------------------
    # lifecycle: context manager, stop flag
    # ------------------------------------------------------------------
    def __enter__(self) -> "SolveEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    @property
    def stopping(self) -> bool:
        """True between :meth:`stop` and the next :meth:`shutdown`."""
        return self._stopping.is_set()

    def stop(self) -> None:
        """Set the stop flag: new submissions raise :class:`EngineStoppedError`.

        Work already accepted keeps running -- this is the first half of a
        graceful drain (reject new, finish old); :meth:`shutdown` is the
        second half and clears the flag again.
        """
        self._stopping.set()

    def _check_stopped(self) -> None:
        if self._stopping.is_set():
            raise EngineStoppedError(
                "solve engine is stopping; no new work is accepted until "
                "shutdown() completes"
            )

    # ------------------------------------------------------------------
    def run_batch(
        self, cells: Sequence[Cell], workers: int
    ) -> Optional[List[SolveReport]]:
        """Solve every cell on the pool; ``None`` means "run serially".

        Cells sharing a tree should be adjacent (tree-major order): chunks
        then reference a single arena token each, and blob-transport
        fallbacks serialize the tree once per chunk (pickle memo) instead of
        once per payload.

        The requested worker count is clamped to the batch size and twice
        the machine's core count: up to one extra worker per core hides the
        queue latency at chunk boundaries (a lone worker sleeps while the
        parent feeds and drains the pipes), while heavier oversubscription
        only adds scheduler churn.
        """
        self._check_stopped()
        cores = os.cpu_count() or 1
        workers = max(1, min(workers, len(cells), 2 * cores))
        with self._lock:
            self.batches += 1
            self.cells += len(cells)
            executor = self.pool.ensure(workers)
            if executor is None:
                self.serial_fallbacks += 1
                if not self._warned_unavailable:
                    self._warned_unavailable = True
                    warnings.warn(
                        "solve engine: this platform cannot spawn worker "
                        "processes; batches run serially (warned once per "
                        "engine)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                return None
            refs: Dict[int, TreeRef] = {}
            payloads = []
            for tree, algorithm, memory, options in cells:
                ref = refs.get(id(tree))
                if ref is None:
                    ref = refs[id(tree)] = self.arena.export(tree)
                payloads.append((ref, algorithm, memory, options))
            chunksize = _compute_chunksize(len(payloads), self.pool.workers)
        from concurrent.futures.process import BrokenProcessPool
        from pickle import PicklingError

        try:
            try:
                return list(
                    executor.map(_solve_payload, payloads, chunksize=chunksize)
                )
            except RuntimeError:
                # a concurrent caller may have grown the pool between our
                # ensure() and map(): the drained old executor then rejects
                # new futures ("cannot schedule new futures after shutdown").
                # Retry once on the replacement; genuine solver RuntimeErrors
                # re-raise because the pool is unchanged.
                with self._lock:
                    current = self.pool.executor
                if current is None or current is executor:
                    raise
                return list(
                    current.map(_solve_payload, payloads, chunksize=chunksize)
                )
        except BrokenProcessPool as exc:
            warnings.warn(
                f"solve engine: worker pool broke ({exc}); restarting the pool "
                "and falling back to serial execution for this batch",
                RuntimeWarning,
                stacklevel=3,
            )
            with self._lock:
                self.broken_pools += 1
                self.serial_fallbacks += 1
                self.pool.reset()
            return None
        except PicklingError as exc:
            warnings.warn(
                f"solve engine: payload not picklable ({exc}); falling back to "
                "serial execution for this batch",
                RuntimeWarning,
                stacklevel=3,
            )
            with self._lock:
                self.serial_fallbacks += 1
            return None

    def submit(self, cell: Cell, workers: int):
        """Submit one cell asynchronously; a Future, or ``None`` = "go serial".

        This is the service daemon's seam into the engine: where
        :meth:`run_batch` blocks on a whole campaign grid, ``submit`` hands
        back a :class:`concurrent.futures.Future` per request, so an asyncio
        front end can interleave admission, dispatch and completion.  The
        tree is interned in the shared arena exactly as in the batch path
        (idempotent per kernel: a request stream hitting the same tree ships
        it to the workers once).  ``None`` means the platform cannot run
        subprocesses -- callers fall back to in-process execution; the
        engine's stop flag raises :class:`EngineStoppedError` instead, so a
        draining daemon never quietly enqueues new work.

        Unlike :meth:`run_batch`, infrastructure failures surface on the
        *returned future* (e.g. ``BrokenProcessPool``), because by then the
        caller has moved on; callers owning a fallback executor should
        re-run the cell there.
        """
        self._check_stopped()
        cores = os.cpu_count() or 1
        workers = max(1, min(workers, 2 * cores))
        with self._lock:
            self.submits += 1
            executor = self.pool.ensure(workers)
            if executor is None:
                self.serial_fallbacks += 1
                if not self._warned_unavailable:
                    self._warned_unavailable = True
                    warnings.warn(
                        "solve engine: this platform cannot spawn worker "
                        "processes; submissions run in-process (warned once "
                        "per engine)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                return None
            tree, algorithm, memory, options = cell
            payload = (self.arena.export(tree), algorithm, memory, options)
        try:
            return executor.submit(_solve_payload, payload)
        except RuntimeError:
            # a concurrent caller grew the pool between ensure() and
            # submit(): retry once on the replacement (see run_batch)
            with self._lock:
                current = self.pool.executor
            if current is None or current is executor:
                raise
            return current.submit(_solve_payload, payload)

    def shutdown(self) -> None:
        """Terminate the workers and unlink every shared-memory segment.

        Idempotent, and clears the stop flag on the way out: an engine can
        be shut down any number of times, and after a ``stop(); shutdown()``
        drain it accepts work again (a fresh pool builds on demand).
        """
        with self._lock:
            self.pool.shutdown()
            self.arena.close()
            self._stopping.clear()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Engine-level instrumentation: dispatch, pool and arena counters.

        Cheap and non-blocking (no worker round trips) -- this is what the
        service daemon embeds in every ``/stats`` document and exports under
        ``/metrics``.  The ship-vs-reuse ratio lives under ``arena``
        (``exports`` vs ``reuses``), the pool's grow/reset event counts
        under ``pool``; worker kernel-cache hit rates need a worker round
        trip, so they are sampled separately
        (:meth:`sample_worker_caches`).
        """
        with self._lock:
            return {
                "batches": self.batches,
                "cells": self.cells,
                "submits": self.submits,
                "serial_fallbacks": self.serial_fallbacks,
                "broken_pools": self.broken_pools,
                "stopping": self._stopping.is_set(),
                "pool": self.pool.snapshot(),
                "arena": self.arena.snapshot(),
            }

    def sample_worker_caches(self, timeout: float = 1.0) -> List[Dict[str, Any]]:
        """Best-effort worker kernel-cache stats, one entry per worker seen.

        Submits the picklable :func:`~repro.solvers.engine.arena.worker_cache_stats`
        probe ``2 x workers`` times and deduplicates by pid -- sampling, not
        a barrier: an idle pool answers from every worker, a busy pool from
        whichever workers pick the probes up first.  Returns ``[]`` when no
        pool is alive (serial platforms, or before the first batch).
        """
        from .arena import worker_cache_stats

        with self._lock:
            executor = self.pool.executor
            workers = self.pool.workers
        if executor is None or workers < 1:
            return []
        futures = []
        try:
            for _ in range(2 * workers):
                futures.append(executor.submit(worker_cache_stats))
        except RuntimeError:  # pool shut down underneath us
            return []
        by_pid: Dict[int, Dict[str, Any]] = {}
        for future in futures:
            try:
                stats = future.result(timeout=timeout)
            except Exception:
                continue
            by_pid[int(stats["pid"])] = stats
        return [by_pid[pid] for pid in sorted(by_pid)]


# ----------------------------------------------------------------------
# the process-wide default engine
# ----------------------------------------------------------------------
_default_engine: Optional[SolveEngine] = None
_default_lock = threading.Lock()


def get_engine() -> SolveEngine:
    """The process-wide :class:`SolveEngine`, created on first use."""
    global _default_engine
    with _default_lock:
        if _default_engine is None:
            import atexit

            _default_engine = SolveEngine()
            atexit.register(shutdown_engine)
        return _default_engine


def shutdown_engine() -> None:
    """Shut down the default engine (idempotent; a new one builds on demand)."""
    global _default_engine
    with _default_lock:
        engine = _default_engine
        _default_engine = None
    if engine is not None:
        engine.shutdown()
