"""Batch/submit dispatch over a pluggable executor backend.

A *cell* is one solver invocation: ``(tree, algorithm, memory, options)``.
:class:`SolveEngine` owns the cross-cutting concerns -- the stop flag,
serial-fallback warnings, observability counters -- and delegates actual
execution to an :class:`~.backends.ExecutorBackend` chosen by name from
the backend registry (``persistent`` by default: the shared arena +
persistent process pool; see :mod:`repro.solvers.engine.backends`).

Results come back in cell order and are bit-identical to the serial path
(``wall_time``, stamped inside the worker, is excluded from report
equality).  Infrastructure failures -- a platform that cannot spawn
subprocesses, a worker crash, unpicklable custom options -- degrade to
``None`` (callers run the batch serially) with a :class:`RuntimeWarning`
naming the cause; exceptions raised by the solvers themselves propagate
unchanged, exactly like the legacy pool path.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..report import SolveReport
from .backends import ExecutorBackend, ExecutorUnavailable, create_backend

# compatibility re-exports: the worker entry point and chunk sizing lived
# here before the backend split, and pickled references resolve by module
from .backends.persistent import (  # noqa: F401
    MAX_CHUNKSIZE,
    _compute_chunksize,
    _solve_payload,
)

__all__ = ["EngineStoppedError", "SolveEngine", "get_engine", "shutdown_engine"]


class EngineStoppedError(RuntimeError):
    """Raised when work is submitted to an engine whose stop flag is set.

    The stop flag (:meth:`SolveEngine.stop`) is the drain signal of the
    service layer: once set, new batches and submissions fail fast with this
    typed error instead of quietly queueing behind a shutdown, while work
    already on the pool runs to completion.  :meth:`SolveEngine.shutdown`
    clears the flag, so an engine remains reusable after a full drain.
    """

Cell = Tuple[Any, str, Optional[float], Dict[str, Any]]


class SolveEngine:
    """Stop flag + counters + fallback policy over one executor backend.

    One engine instance (usually a process-wide default from
    :func:`get_engine`, one per backend name) is shared by every
    ``solve_many`` call and bench round; :meth:`shutdown` releases the
    backend's workers and shipped state explicitly, and is registered via
    ``atexit`` for the default engines.

    ``backend`` is a registry name (``"persistent"``, ``"threads"``, ...)
    or an already-constructed :class:`~.backends.ExecutorBackend` (tests,
    injected dask clients); extra keyword arguments go to the backend
    constructor.  ``use_shared_memory`` is forwarded to the persistent
    backend's arena, preserving the historical signature.
    """

    def __init__(
        self,
        *,
        backend: Any = "persistent",
        use_shared_memory: Optional[bool] = None,
        retry_policy: Any = None,
        **backend_options: Any,
    ) -> None:
        if use_shared_memory is not None:
            backend_options.setdefault("use_shared_memory", use_shared_memory)
        if isinstance(backend, ExecutorBackend):
            self.backend = backend
        else:
            self.backend = create_backend(backend or "persistent", **backend_options)
        if retry_policy is None:
            from ...faults.policy import DEFAULT_RETRY_POLICY

            retry_policy = DEFAULT_RETRY_POLICY
        self.retry_policy = retry_policy
        self._retry_budget = retry_policy.new_budget()
        self._lock = threading.Lock()
        self._warned_unavailable = False
        self._stopping = threading.Event()
        # observability counters (see snapshot()); guarded by _lock on the
        # batch path and incremented from the event loop on the submit path
        self.batches = 0
        self.cells = 0
        self.submits = 0
        self.serial_fallbacks = 0
        self.broken_pools = 0
        self.retries = 0

    @property
    def backend_name(self) -> str:
        return self.backend.name

    # the persistent backend's plumbing, surfaced for callers that predate
    # the backend split (tests, the service daemon's stats); ``None`` for
    # backends without a pool or arena
    @property
    def pool(self):
        return getattr(self.backend, "pool", None)

    @property
    def arena(self):
        return getattr(self.backend, "arena", None)

    # ------------------------------------------------------------------
    # lifecycle: context manager, stop flag
    # ------------------------------------------------------------------
    def __enter__(self) -> "SolveEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    @property
    def stopping(self) -> bool:
        """True between :meth:`stop` and the next :meth:`shutdown`."""
        return self._stopping.is_set()

    def stop(self) -> None:
        """Set the stop flag: new submissions raise :class:`EngineStoppedError`.

        Work already accepted keeps running -- this is the first half of a
        graceful drain (reject new, finish old); :meth:`shutdown` is the
        second half and clears the flag again.  The backend's own stop
        signal (dask's gather abandon) is raised alongside.
        """
        self._stopping.set()
        self.backend.stop()

    def _check_stopped(self) -> None:
        if self._stopping.is_set():
            raise EngineStoppedError(
                "solve engine is stopping; no new work is accepted until "
                "shutdown() completes"
            )

    def _warn_unavailable(self, exc: Exception, what: str) -> None:
        with self._lock:
            self.serial_fallbacks += 1
            if self._warned_unavailable:
                return
            self._warned_unavailable = True
        warnings.warn(
            f"solve engine: {exc}; {what} (warned once per engine)",
            RuntimeWarning,
            stacklevel=4,
        )

    # ------------------------------------------------------------------
    def run_batch(
        self, cells: Sequence[Cell], workers: int
    ) -> Optional[List[SolveReport]]:
        """Solve every cell on the backend; ``None`` means "run serially".

        Cells sharing a tree should be adjacent (tree-major order): arena
        chunks then reference a single token each, and blob-transport
        fallbacks serialize the tree once per chunk (pickle memo) instead
        of once per payload.

        The requested worker count is clamped to the batch size and twice
        the machine's core count: up to one extra worker per core hides the
        queue latency at chunk boundaries (a lone worker sleeps while the
        parent feeds and drains the pipes), while heavier oversubscription
        only adds scheduler churn.
        """
        self._check_stopped()
        cores = os.cpu_count() or 1
        workers = max(1, min(workers, len(cells), 2 * cores))
        with self._lock:
            self.batches += 1
            self.cells += len(cells)
            batch_no = self.batches
        import time

        from pickle import PicklingError

        from ...faults.policy import classify_fault
        from ...faults.stats import global_fault_stats

        # typed retry loop: retryable fault classes (broken_pool, transient,
        # timeout) re-map the whole batch -- map_cells is all-or-nothing, so
        # a retry discards nothing -- with deterministic backoff, until the
        # policy's attempts/budget run out; then broken pools degrade to
        # serial and solver exceptions propagate unchanged
        policy = self.retry_policy
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.backend.map_cells(list(cells), workers)
            except ExecutorUnavailable as exc:
                self._warn_unavailable(exc, "batches run serially")
                return None
            except PicklingError as exc:
                warnings.warn(
                    f"solve engine: payload not picklable ({exc}); falling "
                    "back to serial execution for this batch",
                    RuntimeWarning,
                    stacklevel=3,
                )
                with self._lock:
                    self.serial_fallbacks += 1
                return None
            except Exception as exc:
                fault = classify_fault(exc)
                if fault == "broken_pool":
                    with self._lock:
                        self.broken_pools += 1
                    # the backend already invalidated the broken executor;
                    # reset() is an idempotent safety net for backends that
                    # did not
                    self.backend.reset()
                if policy.should_retry(fault, attempt, self._retry_budget):
                    with self._lock:
                        self.retries += 1
                    global_fault_stats.record_retry("engine", fault)
                    time.sleep(policy.delay(attempt, key=f"batch:{batch_no}"))
                    continue
                if fault == "broken_pool":
                    warnings.warn(
                        f"solve engine: worker pool broke ({exc}); restarting "
                        "the pool and falling back to serial execution for "
                        "this batch",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    with self._lock:
                        self.serial_fallbacks += 1
                    return None
                raise

    def submit(self, cell: Cell, workers: int):
        """Submit one cell asynchronously; a future, or ``None`` = "go serial".

        This is the service daemon's seam into the engine: where
        :meth:`run_batch` blocks on a whole campaign grid, ``submit`` hands
        back one future per request, so an asyncio front end can interleave
        admission, dispatch and completion.  On the persistent backend the
        tree is interned in the shared arena exactly as in the batch path
        (idempotent per kernel: a request stream hitting the same tree ships
        it to the workers once); on dask the kernel is scattered once.
        ``None`` means the platform cannot run this backend -- callers fall
        back to in-process execution; the engine's stop flag raises
        :class:`EngineStoppedError` instead, so a draining daemon never
        quietly enqueues new work.

        Unlike :meth:`run_batch`, infrastructure failures surface on the
        *returned future* (e.g. ``BrokenProcessPool``), because by then the
        caller has moved on; callers owning a fallback executor should
        re-run the cell there.  The future is a
        :class:`concurrent.futures.Future` for in-process backends and a
        dask future for ``dask`` -- both expose ``result``/``cancel``/
        ``done``.
        """
        self._check_stopped()
        cores = os.cpu_count() or 1
        workers = max(1, min(workers, 2 * cores))
        with self._lock:
            self.submits += 1
        try:
            return self.backend.submit_cell(cell, workers)
        except ExecutorUnavailable as exc:
            self._warn_unavailable(exc, "submissions run in-process")
            return None

    def submit_chunk(self, cells: Sequence[Cell], workers: int):
        """Submit one work unit (a cell list) as a single backend future.

        The campaign planner's work-splitting seam: the future resolves to
        the unit's report list, in cell order.  ``None`` means the backend
        cannot execute right now (the dispatcher falls back to serial);
        the stop flag raises :class:`EngineStoppedError` as in
        :meth:`submit`.
        """
        self._check_stopped()
        cores = os.cpu_count() or 1
        workers = max(1, min(workers, 2 * cores))
        with self._lock:
            self.submits += 1
            self.cells += len(cells)
        try:
            return self.backend.submit_chunk(list(cells), workers)
        except ExecutorUnavailable as exc:
            self._warn_unavailable(exc, "work units run in-process")
            return None

    def reset(self) -> None:
        """Heal broken worker plumbing (backend-generic pool reset)."""
        self.backend.reset()

    def shutdown(self) -> None:
        """Release the backend's workers and shipped state.

        Idempotent, and clears the stop flag on the way out: an engine can
        be shut down any number of times, and after a ``stop(); shutdown()``
        drain it accepts work again (fresh plumbing builds on demand).
        """
        with self._lock:
            self.backend.shutdown()
            self._stopping.clear()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Engine-level instrumentation: dispatch + backend counters.

        Cheap and non-blocking (no worker round trips) -- this is what the
        service daemon embeds in every ``/stats`` document and exports under
        ``/metrics``.  The backend contributes its own sub-documents
        (``pool``/``arena`` for the persistent engine, ``pool`` for
        threads, ``cluster`` for dask); worker kernel-cache hit rates need
        a worker round trip, so they are sampled separately
        (:meth:`sample_worker_caches`).
        """
        with self._lock:
            doc: Dict[str, Any] = {
                "backend": self.backend.name,
                "batches": self.batches,
                "cells": self.cells,
                "submits": self.submits,
                "serial_fallbacks": self.serial_fallbacks,
                "broken_pools": self.broken_pools,
                "retries": self.retries,
                "stopping": self._stopping.is_set(),
            }
        doc.update(self.backend.snapshot())
        return doc

    def sample_worker_caches(self, timeout: float = 1.0) -> List[Dict[str, Any]]:
        """Best-effort worker kernel-cache stats (persistent backend only)."""
        sampler = getattr(self.backend, "sample_worker_caches", None)
        if sampler is None:
            return []
        return sampler(timeout=timeout)


# ----------------------------------------------------------------------
# the process-wide default engines, one per backend name
# ----------------------------------------------------------------------
_default_engines: Dict[str, SolveEngine] = {}
_default_lock = threading.Lock()
_atexit_registered = False


def get_engine(backend: Optional[str] = None) -> SolveEngine:
    """The process-wide :class:`SolveEngine` for ``backend``, created lazily.

    ``None`` means the default backend (``"persistent"``).  One engine is
    kept per backend name, so ``solve_many(pool="threads")`` and the
    default persistent batches coexist without tearing each other's
    workers down; :func:`shutdown_engine` releases them all.
    """
    global _atexit_registered
    name = backend or "persistent"
    with _default_lock:
        engine = _default_engines.get(name)
        if engine is None:
            import atexit

            engine = _default_engines[name] = SolveEngine(backend=name)
            if not _atexit_registered:
                _atexit_registered = True
                atexit.register(shutdown_engine)
        return engine


def shutdown_engine() -> None:
    """Shut down every default engine (idempotent; rebuilt on demand)."""
    with _default_lock:
        engines = list(_default_engines.values())
        _default_engines.clear()
    for engine in engines:
        engine.shutdown()
