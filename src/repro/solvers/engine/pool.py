"""Lazily-created, reusable worker pool for the solve engine.

The old batch path built a fresh :class:`~concurrent.futures.ProcessPoolExecutor`
inside every ``solve_many`` call and tore it down on the way out, paying the
process spawn (and, on spawn-start platforms, a full interpreter boot plus
imports) once per call -- per benchmark *round*, per budget step.
:class:`PersistentPool` keeps one executor alive across calls:

* created on first use with the requested worker count and kept until
  :meth:`shutdown` (the engine registers an ``atexit`` hook);
* grown (recreated) when a later call asks for more workers than the live
  executor has; shrunk never -- idle workers are cheap, restarts are not;
* fork-safe: a forked child detects the pid change and drops the inherited
  handle without touching the parent's processes;
* start-method agnostic: the worker entry point is a module-level function,
  so ``fork``, ``forkserver`` and ``spawn`` all work;
* unavailable platforms (sandboxes that cannot allocate the multiprocessing
  semaphores) make :meth:`ensure` return ``None`` once and remember it, so
  callers degrade to serial execution without re-probing every call.
"""

from __future__ import annotations

import os
import threading

__all__ = ["PersistentPool"]


class PersistentPool:
    """One reusable worker pool, created on demand.

    Lifecycle events are counted (``creations``, ``grows``, ``resets``) so
    the observability layer can surface how often the pool was (re)built --
    a growing ``resets`` count on a live service is a worker-crash signal,
    a growing ``grows`` count means callers keep asking for more workers.

    ``kind`` selects the executor family: ``"process"`` (the default, a
    :class:`~concurrent.futures.ProcessPoolExecutor`) or ``"thread"`` (a
    :class:`~concurrent.futures.ThreadPoolExecutor` for the in-process
    ``threads`` backend).  The grow-never-shrink lifecycle, fork guard and
    counters are identical for both.

    Lifecycle methods are serialized by an internal lock, and broken-pool
    healing should go through :meth:`invalidate` rather than :meth:`reset`:
    ``invalidate(executor)`` only discards the executor that actually broke,
    so when several threads observe the same ``BrokenProcessPool`` the first
    one resets and the rest no-op instead of tearing down the freshly built
    replacement (exactly one ``resets`` increment per broken executor).
    """

    def __init__(self, kind: str = "process") -> None:
        if kind not in ("process", "thread"):
            raise ValueError(f"unknown pool kind {kind!r}")
        self._kind = kind
        self._executor = None
        self._workers = 0
        self._pid = os.getpid()
        self._unavailable = False
        # reentrant: ensure() may be called with the lock held by reset()
        # paths in subclassing tests, and reentrancy costs nothing here
        self._lock = threading.RLock()
        self.creations = 0
        self.grows = 0
        self.resets = 0

    # ------------------------------------------------------------------
    def _fork_guard(self) -> None:
        # a forked child inherits this object but not usable pool plumbing;
        # drop the handle (without shutdown: the processes belong to the
        # parent) and let the child lazily build its own pool
        if os.getpid() != self._pid:
            self._executor = None
            self._workers = 0
            self._unavailable = False
            self._pid = os.getpid()
            # the child starts its own lifecycle; inherited counts would
            # double-report events that happened in the parent
            self.creations = 0
            self.grows = 0
            self.resets = 0

    def ensure(self, workers: int):
        """The live executor with at least ``workers`` workers, or ``None``.

        ``None`` means "this platform cannot run subprocesses" -- the caller
        is expected to fall back to serial execution.  The requested count
        is honoured as given here; the dispatch layer
        (:meth:`~repro.solvers.engine.SolveEngine.run_batch`) clamps its
        requests to the batch size and the core count before calling.
        """
        with self._lock:
            self._fork_guard()
            if workers < 1:
                raise ValueError("workers must be >= 1")
            if self._unavailable:
                return None
            if self._executor is not None and self._workers >= workers:
                return self._executor
            if self._kind == "thread":
                from concurrent.futures import ThreadPoolExecutor as _Executor
            else:
                from concurrent.futures import ProcessPoolExecutor as _Executor

            previous = self._executor
            try:
                # pool construction allocates the multiprocessing queues and
                # semaphores: this is where sandboxed platforms fail with
                # OSError/PermissionError (thread pools construct lazily and
                # practically never fail here)
                executor = _Executor(max_workers=workers)
            except OSError:
                self._unavailable = previous is None
                return previous  # keep a smaller live pool rather than nothing
            if previous is not None:
                # let in-flight batches on the old executor drain: another
                # thread may be mid-map on it, and cancelling its futures would
                # crash that batch with a CancelledError it has no reason to
                # expect.  The old workers exit once their queue is empty.
                previous.shutdown(wait=False, cancel_futures=False)
                self.grows += 1
            else:
                self.creations += 1
            self._executor = executor
            self._workers = workers
            return executor

    def reset(self) -> None:
        """Discard a broken executor so the next call builds a fresh one."""
        with self._lock:
            self._fork_guard()
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self.resets += 1
            self._executor = None
            self._workers = 0

    def invalidate(self, executor) -> bool:
        """Reset *iff* ``executor`` is still the live one; report whether.

        The broken-pool healing entry point: every thread that caught a
        ``BrokenProcessPool`` passes the executor it was using, and only the
        first call actually resets -- later calls (same broken executor,
        already replaced or discarded) return ``False`` without touching the
        replacement.  ``None`` executors no-op.
        """
        if executor is None:
            return False
        with self._lock:
            self._fork_guard()
            if self._executor is not executor:
                return False
            self.reset()
            return True

    def shutdown(self) -> None:
        """Terminate the workers (idempotent; the pool can be reused after)."""
        with self._lock:
            self._fork_guard()
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
            self._workers = 0
            self._unavailable = False

    @property
    def executor(self):
        """The live executor (or ``None``); exposed for reuse assertions."""
        with self._lock:
            self._fork_guard()
            return self._executor

    @property
    def workers(self) -> int:
        """Worker count of the live executor (0 when none)."""
        return self._workers

    def snapshot(self) -> dict:
        """Lifecycle counters + current shape (for stats and ``/metrics``)."""
        with self._lock:
            self._fork_guard()
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict:
        return {
            "kind": self._kind,
            "workers": self._workers,
            "alive": self._executor is not None,
            "unavailable": self._unavailable,
            "creations": self.creations,
            "grows": self.grows,
            "resets": self.resets,
        }
