"""Persistent shared-memory batch engine for ``solve_many`` and the bench runner.

The engine is the batch layer's hot path: a :class:`~.pool.PersistentPool`
of worker processes reused across calls, a :class:`~.arena.TreeArena` that
ships each tree's flat kernel arrays to the workers exactly once (zero-copy
``multiprocessing.shared_memory`` segments where available, pickle-once
blobs otherwise), and a :class:`~.dispatch.SolveEngine` that fans compact
``(token, algorithm, memory, options)`` payloads over the pool with a
computed chunk size.

Execution strategies are pluggable: :class:`~.dispatch.SolveEngine`
delegates to an :class:`~.backends.ExecutorBackend` chosen by name from
the backend registry (:func:`~.backends.backend_names` -- ``persistent``,
``fresh``, ``serial``, ``threads``, and the optional ``dask``).
``solve_many(..., pool=...)`` routes through the matching process-wide
engine from :func:`get_engine`; :func:`shutdown_engine` releases every
default engine's workers and shared segments explicitly (also registered
``atexit``).

The service daemon (:mod:`repro.service`) uses the asynchronous seam
instead: :meth:`SolveEngine.submit` hands back one future per request, and
the engine's stop flag (:meth:`SolveEngine.stop` /
:class:`EngineStoppedError`) lets a draining daemon reject new work while
in-flight requests finish.  Engines are context managers (``with
SolveEngine() as eng:``), and ``shutdown`` is idempotent.
"""

from .arena import TreeArena, TreeRef, resolve, worker_cache_info
from .backends import (
    BackendSpec,
    BackendUnavailableError,
    ExecutorBackend,
    ExecutorUnavailable,
    backend_names,
    backend_table,
    create_backend,
    get_backend_spec,
    register_backend,
)
from .dispatch import EngineStoppedError, SolveEngine, get_engine, shutdown_engine
from .pool import PersistentPool

__all__ = [
    "TreeArena",
    "TreeRef",
    "PersistentPool",
    "BackendSpec",
    "BackendUnavailableError",
    "ExecutorBackend",
    "ExecutorUnavailable",
    "EngineStoppedError",
    "SolveEngine",
    "backend_names",
    "backend_table",
    "create_backend",
    "get_backend_spec",
    "get_engine",
    "register_backend",
    "shutdown_engine",
    "resolve",
    "worker_cache_info",
]
