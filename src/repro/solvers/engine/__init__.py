"""Persistent shared-memory batch engine for ``solve_many`` and the bench runner.

The engine is the batch layer's hot path: a :class:`~.pool.PersistentPool`
of worker processes reused across calls, a :class:`~.arena.TreeArena` that
ships each tree's flat kernel arrays to the workers exactly once (zero-copy
``multiprocessing.shared_memory`` segments where available, pickle-once
blobs otherwise), and a :class:`~.dispatch.SolveEngine` that fans compact
``(token, algorithm, memory, options)`` payloads over the pool with a
computed chunk size.

``solve_many(..., pool="persistent")`` (the default for parallel batches)
routes through the process-wide engine from :func:`get_engine`;
``pool="fresh"`` keeps the legacy one-pool-per-call behaviour and
``pool="serial"`` forces in-process execution.  :func:`shutdown_engine`
releases the workers and the shared segments explicitly (also registered
``atexit``).

The service daemon (:mod:`repro.service`) uses the asynchronous seam
instead: :meth:`SolveEngine.submit` hands back one future per request, and
the engine's stop flag (:meth:`SolveEngine.stop` /
:class:`EngineStoppedError`) lets a draining daemon reject new work while
in-flight requests finish.  Engines are context managers (``with
SolveEngine() as eng:``), and ``shutdown`` is idempotent.
"""

from .arena import TreeArena, TreeRef, resolve, worker_cache_info
from .dispatch import EngineStoppedError, SolveEngine, get_engine, shutdown_engine
from .pool import PersistentPool

__all__ = [
    "TreeArena",
    "TreeRef",
    "PersistentPool",
    "EngineStoppedError",
    "SolveEngine",
    "get_engine",
    "shutdown_engine",
    "resolve",
    "worker_cache_info",
]
