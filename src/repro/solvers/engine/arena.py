"""Shared tree arena: ship each kernel to worker processes exactly once.

The old ``solve_many`` pool path pickled the full :class:`Tree` into every
``(tree, algorithm)`` payload, so a batch of ``t`` trees times ``a``
algorithms serialized each tree ``a`` times per round -- and the workers
rebuilt the kernel from the dict-based tree just as often.  The arena turns
the tree into a *resident* of the worker processes:

* on the parent side, :meth:`TreeArena.export` flattens the kernel once
  (:meth:`~repro.core.kernel.TreeKernel.to_flat_arrays`) and publishes it --
  through a ``multiprocessing.shared_memory`` segment where the platform
  supports it, or as a pickle-once ``bytes`` blob otherwise -- returning a
  compact picklable :class:`TreeRef` token;
* on the worker side, :func:`resolve` attaches the buffers (zero-copy reads
  out of the segment) and rebuilds the kernel with the vectorized
  :meth:`~repro.core.kernel.TreeKernel.from_flat_arrays`, caching it by
  token so every later payload referencing the same tree is a dict lookup.

Exports are keyed by kernel identity (a ``WeakValueDictionary``), so
repeated ``solve_many`` calls on the same tree reuse the same segment, and
a garbage-collected tree releases its segment automatically
(``weakref.finalize``).  :meth:`TreeArena.close` releases everything
eagerly; the engine calls it from ``shutdown()`` and at interpreter exit.

Segment layout (one segment per tree)::

    [ parent int64[p] | f float64[p] | n float64[p] | ids pickle blob ]

The ids blob is empty for the common case of trivial ``0..p-1`` identifiers.
"""

from __future__ import annotations

import itertools
import os
import pickle
import weakref
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ...core.kernel import TreeKernel

__all__ = [
    "TreeRef", "TreeArena", "resolve", "worker_cache_info",
    "worker_cache_stats",
]

#: transport kinds a :class:`TreeRef` can carry
_KIND_SHM = "shm"
_KIND_BLOB = "blob"

#: worker-side kernels kept resident per process (FIFO eviction beyond this).
#: Sized to hold a whole ``service``-scale round (320 distinct trees) so
#: cross-round reuse actually happens on the engine's flagship workload;
#: payload batches are tree-major, so even token streams beyond the cap
#: (``service_burst``) attach each tree at most once per round per worker.
#: The cap bounds entry count, not bytes: campaigns with many *large*
#: distinct trees are rare (the large families sweep a handful of trees).
WORKER_CACHE_SIZE = 1024

_token_counter = itertools.count(1)


def _new_token() -> str:
    # pid-qualified so tokens from a recreated arena (or a forked parent)
    # can never collide with kernels already resident in a worker
    return f"{os.getpid()}-{next(_token_counter)}"


@dataclass(frozen=True)
class TreeRef:
    """Compact picklable handle to a tree resident in the arena.

    ``kind`` selects the transport: ``"shm"`` carries the segment name and
    the array length (a few dozen bytes per payload), ``"blob"`` carries the
    pickled flat arrays themselves.  Blob refs inside one executor chunk are
    serialized once thanks to the pickle memo, and workers deserialize each
    token at most once, so even the fallback ships every tree roughly once
    per (worker, chunk) rather than once per payload.
    """

    token: str
    kind: str
    shm_name: Optional[str] = None
    size: int = 0
    ids_bytes: int = 0
    blob: Optional[bytes] = field(default=None, repr=False)


class TreeArena:
    """Parent-side registry of exported kernels.

    Parameters
    ----------
    use_shared_memory : bool, optional
        Force (``True``) or forbid (``False``) the shared-memory transport;
        ``None`` probes the platform on first export and falls back to
        pickle blobs when segments cannot be created (sandboxes without a
        usable ``/dev/shm``, missing ``_posixshmem``, ...).
    """

    def __init__(self, use_shared_memory: Optional[bool] = None) -> None:
        self._use_shm = use_shared_memory
        self._refs: "weakref.WeakValueDictionary[str, TreeKernel]" = (
            weakref.WeakValueDictionary()
        )
        self._by_kernel: Dict[int, TreeRef] = {}
        self._segments: Dict[str, object] = {}  # token -> SharedMemory
        self._finalizers: Dict[str, weakref.finalize] = {}
        self._pid = os.getpid()
        # ship-vs-reuse accounting: `exports` counts kernels actually
        # flattened and published (shm segment or pickle blob), `reuses`
        # counts export() calls answered by an existing ref -- the ratio is
        # the scatter-once effectiveness the arena exists to provide
        self.exports = 0
        self.reuses = 0
        self.shm_exports = 0
        self.blob_exports = 0

    # ------------------------------------------------------------------
    def _fork_guard(self) -> None:
        # a forked child inherits the registries but must not unlink the
        # parent's segments: drop the bookkeeping without touching the OS
        if os.getpid() != self._pid:
            for fin in self._finalizers.values():
                fin.detach()
            self._refs = weakref.WeakValueDictionary()
            self._by_kernel = {}
            self._segments = {}
            self._finalizers = {}
            self._pid = os.getpid()
            self.exports = 0
            self.reuses = 0
            self.shm_exports = 0
            self.blob_exports = 0

    def export(self, tree) -> TreeRef:
        """Publish ``tree`` (a :class:`Tree` or kernel) and return its ref.

        Idempotent per kernel object: the same (cached) kernel maps to the
        same token across calls, which is what lets long-lived workers keep
        the resident copy warm between ``solve_many`` calls.
        """
        self._fork_guard()
        kernel = tree if isinstance(tree, TreeKernel) else tree.kernel()
        ref = self._by_kernel.get(id(kernel))
        # the id() key alone could alias a dead kernel's recycled address;
        # the weak value map is the ground truth
        if ref is not None and self._refs.get(ref.token) is kernel:
            self.reuses += 1
            return ref
        ref = self._export_kernel(kernel)
        self.exports += 1
        self._refs[ref.token] = kernel
        self._by_kernel[id(kernel)] = ref
        self._finalizers[ref.token] = weakref.finalize(
            kernel, self._release, ref.token, id(kernel)
        )
        return ref

    def _export_kernel(self, kernel: TreeKernel) -> TreeRef:
        parent, f, n = kernel.to_flat_arrays()
        ids_blob = b""
        if not kernel.has_trivial_ids():
            ids_blob = pickle.dumps(kernel.ids, protocol=pickle.HIGHEST_PROTOCOL)
        token = _new_token()
        if self._use_shm is not False:
            segment = self._create_segment(parent, f, n, ids_blob)
            if segment is not None:
                self._segments[token] = segment
                self.shm_exports += 1
                return TreeRef(
                    token=token,
                    kind=_KIND_SHM,
                    shm_name=segment.name,
                    size=kernel.size,
                    ids_bytes=len(ids_blob),
                )
            if self._use_shm is True:
                raise OSError("shared-memory transport requested but unavailable")
            self._use_shm = False  # probe failed once; stop retrying
        blob = pickle.dumps(
            (parent, f, n, ids_blob), protocol=pickle.HIGHEST_PROTOCOL
        )
        self.blob_exports += 1
        return TreeRef(token=token, kind=_KIND_BLOB, size=kernel.size, blob=blob)

    def _create_segment(self, parent, f, n, ids_blob: bytes):
        try:
            from multiprocessing import shared_memory
        except ImportError:
            return None
        p = parent.shape[0]
        nbytes = 24 * p + len(ids_blob)
        try:
            segment = shared_memory.SharedMemory(create=True, size=nbytes)
        except (OSError, ValueError):
            return None
        buf = segment.buf
        buf[0 : 8 * p] = parent.tobytes()
        buf[8 * p : 16 * p] = f.tobytes()
        buf[16 * p : 24 * p] = n.tobytes()
        if ids_blob:
            # exact slice: platforms may round the segment up to a page
            # multiple, so the buffer can be longer than requested
            buf[24 * p : 24 * p + len(ids_blob)] = ids_blob
        return segment

    # ------------------------------------------------------------------
    def _release(self, token: str, kernel_id: Optional[int] = None) -> None:
        """Unlink one export (kernel collected, or arena shutting down)."""
        if os.getpid() != self._pid:  # never unlink a parent's segment
            return
        if kernel_id is not None and self._by_kernel.get(kernel_id) is not None:
            if self._by_kernel[kernel_id].token == token:
                del self._by_kernel[kernel_id]
        segment = self._segments.pop(token, None)
        self._finalizers.pop(token, None)
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover - double free
                pass

    def close(self) -> None:
        """Release every exported segment (idempotent)."""
        self._fork_guard()
        for token in list(self._segments):
            fin = self._finalizers.get(token)
            if fin is not None:
                fin.detach()
            self._release(token)
        self._by_kernel.clear()
        self._finalizers.clear()

    @property
    def live_segments(self) -> Tuple[str, ...]:
        """Names of the shared-memory segments currently owned (testing)."""
        return tuple(seg.name for seg in self._segments.values())

    def snapshot(self) -> Dict[str, int]:
        """Ship-vs-reuse counters + current residency (stats, ``/metrics``)."""
        return {
            "exports": self.exports,
            "reuses": self.reuses,
            "shm_exports": self.shm_exports,
            "blob_exports": self.blob_exports,
            "live_segments": len(self._segments),
        }

    def __len__(self) -> int:
        return len(self._segments) + sum(
            1 for ref in self._by_kernel.values() if ref.kind == _KIND_BLOB
        )


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
_WORKER_KERNELS: Dict[str, TreeKernel] = {}
#: per-process resident-kernel cache hits/misses (each worker counts its own;
#: :func:`worker_cache_stats` is picklable, so a parent can sample workers by
#: submitting it to the pool)
_WORKER_CACHE_HITS = 0
_WORKER_CACHE_MISSES = 0


def _attach_shm(ref: TreeRef) -> TreeKernel:
    import numpy as np
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=ref.shm_name)
    try:
        p = ref.size
        buf = segment.buf
        parent = np.frombuffer(buf, dtype=np.int64, count=p, offset=0)
        f = np.frombuffer(buf, dtype=np.float64, count=p, offset=8 * p)
        n = np.frombuffer(buf, dtype=np.float64, count=p, offset=16 * p)
        ids = None
        if ref.ids_bytes:
            ids = pickle.loads(bytes(buf[24 * p : 24 * p + ref.ids_bytes]))
        # from_flat_arrays copies into plain lists, so nothing below keeps
        # pointing into the segment once the views are dropped
        kernel = TreeKernel.from_flat_arrays(parent, f, n, ids=ids)
        del parent, f, n, buf
    finally:
        segment.close()
    return kernel


def _attach_blob(ref: TreeRef) -> TreeKernel:
    parent, f, n, ids_blob = pickle.loads(ref.blob)
    ids = pickle.loads(ids_blob) if ids_blob else None
    return TreeKernel.from_flat_arrays(parent, f, n, ids=ids)


def resolve(ref: TreeRef) -> TreeKernel:
    """The resident kernel for ``ref`` (attaching and caching on first use)."""
    global _WORKER_CACHE_HITS, _WORKER_CACHE_MISSES
    kernel = _WORKER_KERNELS.get(ref.token)
    if kernel is not None:
        _WORKER_CACHE_HITS += 1
        return kernel
    _WORKER_CACHE_MISSES += 1
    if ref.kind == _KIND_SHM:
        kernel = _attach_shm(ref)
    elif ref.kind == _KIND_BLOB:
        kernel = _attach_blob(ref)
    else:  # pragma: no cover - future transports
        raise ValueError(f"unknown tree transport {ref.kind!r}")
    while len(_WORKER_KERNELS) >= WORKER_CACHE_SIZE:
        _WORKER_KERNELS.pop(next(iter(_WORKER_KERNELS)))
    _WORKER_KERNELS[ref.token] = kernel
    return kernel


def worker_cache_info() -> Tuple[int, Tuple[str, ...]]:
    """(size, tokens) of this process's resident-kernel cache (testing)."""
    return len(_WORKER_KERNELS), tuple(_WORKER_KERNELS)


def worker_cache_stats() -> Dict[str, float]:
    """Hit/miss counters of this process's resident-kernel cache.

    Module-level and argument-free, so a parent holding a live pool can
    sample its workers with ``executor.submit(worker_cache_stats)`` (see
    :meth:`~repro.solvers.engine.SolveEngine.sample_worker_caches`); the
    ``pid`` field lets the sampler deduplicate which worker answered.
    """
    total = _WORKER_CACHE_HITS + _WORKER_CACHE_MISSES
    return {
        "pid": os.getpid(),
        "resident": len(_WORKER_KERNELS),
        "hits": _WORKER_CACHE_HITS,
        "misses": _WORKER_CACHE_MISSES,
        "hit_rate": (_WORKER_CACHE_HITS / total) if total else 0.0,
    }
