"""The legacy one-shot pool backend (``pool="fresh"``).

One :class:`~concurrent.futures.ProcessPoolExecutor` per ``map_cells``
call, torn down on the way out -- the pre-engine ``solve_many`` behaviour,
kept as a migration escape hatch and as the measured baseline the
persistent engine is compared against.  Payloads are whole pickled trees
(no arena), ``chunksize=1``, worker count clamped to the physical core
count, exactly as the legacy ``_run_pool`` did.

No asynchronous seam (``supports_futures = False``): a backend that builds
and discards its pool per call has no executor for futures to outlive, so
the campaign planner runs it through blocking batches and the service
daemon refuses it outright (``service = False``).
"""

from __future__ import annotations

import os
from typing import Any, List, Sequence

from .base import Cell, ExecutorBackend, ExecutorUnavailable

__all__ = ["FreshBackend"]


class FreshBackend(ExecutorBackend):
    """Legacy one-shot process pool per batch."""

    name = "fresh"
    summary = "legacy one-shot process pool per call (no reuse)"
    releases_gil = True
    supports_futures = False
    service = False

    def map_cells(self, cells: Sequence[Cell], workers: int) -> List[Any]:
        from concurrent.futures import ProcessPoolExecutor

        from ...facade import _solve_task

        max_workers = min(workers, len(cells), os.cpu_count() or 1)
        try:
            # pool construction allocates the multiprocessing queues and
            # semaphores: this is where sandboxed platforms fail with
            # OSError/PermissionError
            pool = ProcessPoolExecutor(max_workers=max_workers)
        except OSError as exc:
            raise ExecutorUnavailable(
                "this platform cannot spawn worker processes"
            ) from exc
        with pool:
            return list(pool.map(_solve_task, cells, chunksize=1))
