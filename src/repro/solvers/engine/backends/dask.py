"""Optional dask.distributed backend (``pool="dask"``).

Modelled on treeck's ``DistributedVerifier`` control loop: tree kernels
are scattered to the cluster **once per campaign** with
``client.scatter(flat_arrays, broadcast=True)`` (the dask analogue of the
shared-memory arena, hence ``ships_arena``), cells become
``client.submit`` futures over the scattered data, and result gathering
uses per-future timeouts that start at ``timeout_start`` and grow by
``timeout_grow_rate`` up to ``timeout_max`` -- early in a campaign the
cluster may still be warming up (workers importing numpy, deserializing
kernels), so a fixed timeout would misclassify warmup as failure.  A
cooperative stop flag makes an in-flight gather abandon promptly.

The module imports without dask installed; :func:`~.base.create_backend`
gates construction on the ``distributed`` module being importable
(``requires="distributed"``) and raises the typed
:class:`~.base.BackendUnavailableError` otherwise, so the backend *lists*
everywhere (CLI help, ``POOL_MODES``) but fails loudly when selected
without the dependency.  With no ``client``/``address`` given, the first
batch boots a single-host ``LocalCluster`` sized to the requested worker
count -- multi-host clusters connect via ``address=``.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .base import Cell, ExecutorBackend, ExecutorUnavailable

__all__ = ["DaskBackend"]

_token_counter = itertools.count(1)

#: worker-side resident kernels, keyed by scatter token (one dict per dask
#: worker process; bounded like the arena's worker cache)
_DASK_KERNELS: Dict[str, Any] = {}
_DASK_CACHE_SIZE = 1024


def _dask_solve(
    data: Tuple, token: str, algorithm: str, memory: Optional[float], options: Dict
):
    """Worker entry point: rebuild (or reuse) the kernel, then solve.

    ``data`` is the scattered flat-array tuple -- dask resolves the
    scattered future to the broadcast value before calling, so repeated
    cells against the same token deserialize the kernel at most once per
    worker.
    """
    from ....core.kernel import TreeKernel
    from ...facade import _dispatch

    kernel = _DASK_KERNELS.get(token)
    if kernel is None:
        parent, f, n, ids = data
        kernel = TreeKernel.from_flat_arrays(parent, f, n, ids=ids)
        if len(_DASK_KERNELS) >= _DASK_CACHE_SIZE:
            _DASK_KERNELS.clear()
        _DASK_KERNELS[token] = kernel
    return _dispatch(kernel, algorithm, memory, options, strict=False)


def _dask_solve_chunk(specs: Sequence[Tuple]) -> List[Any]:
    """Worker entry point for one campaign work unit."""
    return [_dask_solve(*spec) for spec in specs]


class DaskBackend(ExecutorBackend):
    """Scatter-once dask.distributed execution with adaptive gather timeouts."""

    name = "dask"
    summary = "dask.distributed cluster (optional dependency; scatter-once)"
    ships_arena = True
    releases_gil = True
    distributed = True

    def __init__(
        self,
        *,
        client: Optional[Any] = None,
        address: Optional[str] = None,
        timeout_start: float = 30.0,
        timeout_max: float = 600.0,
        timeout_grow_rate: float = 1.5,
    ) -> None:
        if timeout_grow_rate <= 1.0:
            raise ValueError("timeout_grow_rate must be > 1")
        self._client = client
        self._cluster = None
        self._owns_client = client is None
        self._address = address
        self.timeout_start = timeout_start
        self.timeout_max = timeout_max
        self.timeout_grow_rate = timeout_grow_rate
        self._lock = threading.Lock()
        self._stop = threading.Event()
        # scatter-once bookkeeping, keyed by kernel identity like the arena:
        # token -> scattered future, with a weak map as the ground truth so
        # a recycled id() can never alias a dead kernel
        self._scattered: Dict[str, Any] = {}
        self._by_kernel: Dict[int, str] = {}
        self._refs: "weakref.WeakValueDictionary[str, Any]" = (
            weakref.WeakValueDictionary()
        )
        self.scatters = 0
        self.reuses = 0

    # ------------------------------------------------------------------
    def _ensure_client(self, workers: int):
        with self._lock:
            if self._client is None:
                try:
                    from distributed import Client, LocalCluster
                except ImportError as exc:  # create_backend gates; belt+braces
                    raise ExecutorUnavailable(
                        "dask.distributed is not importable"
                    ) from exc
                try:
                    if self._address is not None:
                        self._client = Client(self._address)
                    else:
                        self._cluster = LocalCluster(
                            n_workers=max(1, workers),
                            threads_per_worker=1,
                            dashboard_address=None,
                        )
                        self._client = Client(self._cluster)
                except OSError as exc:
                    raise ExecutorUnavailable(
                        f"cannot reach a dask cluster ({exc})"
                    ) from exc
            return self._client

    def _scatter_tree(self, client, tree) -> Tuple[str, Any]:
        """Broadcast one kernel's flat arrays to every worker, once."""
        from ....core.kernel import TreeKernel

        kernel = tree if isinstance(tree, TreeKernel) else tree.kernel()
        token = self._by_kernel.get(id(kernel))
        if token is not None and self._refs.get(token) is kernel:
            self.reuses += 1
            return token, self._scattered[token]
        parent, f, n = kernel.to_flat_arrays()
        ids = None if kernel.has_trivial_ids() else kernel.ids
        token = f"dask-{os.getpid()}-{next(_token_counter)}"
        [future] = client.scatter([(parent, f, n, ids)], broadcast=True)
        self._scattered[token] = future
        self._by_kernel[id(kernel)] = token
        self._refs[token] = kernel
        weakref.finalize(kernel, self._scattered.pop, token, None)
        self.scatters += 1
        return token, future

    def _spec(self, client, cell: Cell) -> Tuple:
        tree, algorithm, memory, options = cell
        token, data = self._scatter_tree(client, tree)
        return (data, token, algorithm, memory, options)

    # ------------------------------------------------------------------
    def scatter(self, trees: Sequence[Any]) -> None:
        client = self._ensure_client(workers=1)
        with self._lock:
            for tree in trees:
                self._scatter_tree(client, tree)

    def map_cells(self, cells: Sequence[Cell], workers: int) -> List[Any]:
        client = self._ensure_client(workers)
        with self._lock:
            futures = [
                client.submit(_dask_solve, *self._spec(client, cell), pure=False)
                for cell in cells
            ]
        return self._gather(futures)

    def submit_cell(self, cell: Cell, workers: int):
        client = self._ensure_client(workers)
        with self._lock:
            return client.submit(_dask_solve, *self._spec(client, cell), pure=False)

    def submit_chunk(self, cells: Sequence[Cell], workers: int):
        client = self._ensure_client(workers)
        with self._lock:
            specs = [self._spec(client, cell) for cell in cells]
        return client.submit(_dask_solve_chunk, specs, pure=False)

    def _gather(self, futures: List[Any]) -> List[Any]:
        """Collect results with per-future timeouts growing by the rate.

        ``pure=False`` submissions rerun identical cells (benchmark rounds
        must re-measure, not memoize), so gathering is a plain ordered
        walk; a timeout below ``timeout_max`` widens and retries the same
        future rather than failing the batch.
        """
        import asyncio

        reports: List[Any] = []
        timeout = self.timeout_start
        for future in futures:
            while True:
                if self._stop.is_set():
                    for pending in futures[len(reports):]:
                        pending.cancel()
                    raise RuntimeError(
                        "dask backend is stopping; gather abandoned"
                    )
                try:
                    reports.append(future.result(timeout=timeout))
                    break
                except (TimeoutError, asyncio.TimeoutError):
                    if timeout >= self.timeout_max:
                        raise
                    timeout = min(
                        self.timeout_max, timeout * self.timeout_grow_rate
                    )
        return reports

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._stop.set()

    def reset(self) -> None:
        # a dask scheduler heals worker deaths itself; nothing to rebuild
        pass

    def shutdown(self) -> None:
        with self._lock:
            self._scattered.clear()
            self._by_kernel.clear()
            client, cluster = self._client, self._cluster
            if self._owns_client:
                self._client = None
            self._cluster = None
            self._stop.clear()
        if self._owns_client and client is not None:
            try:
                client.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        if cluster is not None:
            try:
                cluster.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            client = self._client
            doc = {
                "alive": client is not None,
                "workers": 0,
                "scatters": self.scatters,
                "reuses": self.reuses,
                "scattered": len(self._scattered),
            }
            if client is not None:
                try:
                    doc["workers"] = len(
                        client.scheduler_info().get("workers", {})
                    )
                except Exception:  # pragma: no cover - scheduler went away
                    pass
        return {"cluster": doc}
