"""The :class:`ExecutorBackend` protocol and the backend registry.

An *executor backend* is the strategy object behind the solve engine: it
owns the actual worker plumbing (a process pool, a thread pool, a dask
cluster -- or nothing at all) and exposes one small protocol the three call
sites above it share:

* ``scatter(trees)`` -- pre-ship tree kernels to the workers (arena export,
  ``client.scatter(..., broadcast=True)``, or a no-op for in-process
  backends);
* ``map_cells(cells, workers)`` -- solve a batch of cells, blocking, in cell
  order;
* ``submit_cell(cell, workers)`` / ``submit_chunk(cells, workers)`` -- the
  asynchronous seam: one future per request (the service daemon) or per
  work unit (the bench campaign planner's work-splitting dispatcher);
* ``stop()`` / ``reset()`` / ``shutdown()`` -- lifecycle.

Capability flags describe what the layers above may assume:

=================== ======================================================
``ships_arena``     kernels are shipped to the workers out of band (shared
                    memory or scatter/broadcast), so payloads are compact
                    tokens rather than pickled trees
``releases_gil``    work leaves the parent interpreter's GIL (separate
                    processes or a cluster); ``False`` for the in-process
                    backends, where parallel speed-up waits on the
                    compiled (GIL-releasing) solver tier
``distributed``     workers may live on other hosts
``supports_futures`` ``submit_cell``/``submit_chunk`` are implemented; the
                    campaign planner only work-splits on such backends and
                    falls back to blocking ``map_cells`` otherwise
``service``         usable as a ``serve --pool`` mode (``fresh`` is not:
                    a one-shot pool per request defeats a daemon)
=================== ======================================================

The registry (:func:`register_backend` / :func:`backend_names` /
:func:`create_backend`) is the single source of truth for every ``pool=``
surface: ``solve_many`` validation, ``bench --pool`` and ``serve --pool``
choices, the CLI help text, and the docs tables all derive from it.
Registration order is presentation order, so ``POOL_MODES`` stays stable.
"""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

__all__ = [
    "BackendUnavailableError",
    "ExecutorUnavailable",
    "ExecutorBackend",
    "BackendSpec",
    "register_backend",
    "backend_names",
    "get_backend_spec",
    "create_backend",
    "backend_table",
]

#: one planned solver invocation: (tree, algorithm, memory, options)
Cell = Tuple[Any, str, Optional[float], Dict[str, Any]]


class BackendUnavailableError(ValueError):
    """A registered backend cannot be constructed in this environment.

    Raised by :func:`create_backend` when the backend's optional dependency
    (e.g. ``dask[distributed]``) is not installed.  A :class:`ValueError`
    subclass so the facade and CLI surface it like any other bad ``pool=``
    argument instead of degrading silently.
    """


class ExecutorUnavailable(RuntimeError):
    """A live backend cannot execute work *right now* on this platform.

    Raised from ``map_cells``/``submit_cell`` when e.g. the sandbox cannot
    spawn subprocesses.  The engine catches it, warns once, and degrades to
    serial execution -- unlike :class:`BackendUnavailableError`, which is a
    caller-facing configuration error.
    """


def _solve_cell(cell: Cell):
    """In-process solve of one raw cell (thread/serial execution)."""
    from ...facade import _solve_task

    return _solve_task(cell)


def _solve_chunk(cells: Sequence[Cell]) -> List[Any]:
    """In-process solve of a work unit (the chunk-future entry point)."""
    from ...facade import _solve_task

    return [_solve_task(cell) for cell in cells]


def _call_with_pool_retry(pool, executor, call, *, policy=None, key: str = ""):
    """Run ``call(executor)``, healing pool-grow races by retry policy.

    The shared execution wrapper of the pooled backends (persistent,
    threads).  Two failure shapes are handled:

    * **grow race** -- a concurrent caller grew the pool between the
      backend's ``ensure()`` and this call, so the drained old executor
      rejects new futures ("cannot schedule new futures after shutdown").
      Retried on the replacement executor as many times as the
      :class:`~repro.faults.policy.RetryPolicy` allows (fault class
      ``pool_grow``; no backoff -- the replacement is already live, there
      is nothing to wait for).  A ``RuntimeError`` with the pool unchanged
      is a genuine solver error and re-raises immediately.
    * **broken pool** -- the executor lost a worker.  The broken executor
      is retired via the identity-guarded
      :meth:`~repro.solvers.engine.pool.PersistentPool.invalidate` (so
      concurrent observers of the same crash trigger exactly one reset)
      and the error propagates for the engine-level policy to retry or
      degrade.
    """
    from concurrent.futures.process import BrokenProcessPool

    # lazy: repro.faults wraps these backends, so module-level imports in
    # either direction would cycle
    from ....faults.policy import DEFAULT_RETRY_POLICY
    from ....faults.stats import global_fault_stats

    policy = policy or DEFAULT_RETRY_POLICY
    attempt = 0
    current = executor
    while True:
        attempt += 1
        try:
            return call(current)
        except BrokenProcessPool:
            pool.invalidate(current)
            raise
        except RuntimeError:
            replacement = pool.executor
            if replacement is None or replacement is current:
                raise
            if not policy.should_retry("pool_grow", attempt):
                raise
            global_fault_stats.record_retry("backend", "pool_grow")
            current = replacement


class ExecutorBackend:
    """Base class of the executor backends (see the module docstring).

    Subclasses set the class-level ``name``/``summary``/capability flags and
    implement the execution methods.  ``reset``/``stop``/``shutdown`` and
    ``scatter`` default to no-ops so trivial backends stay trivial.
    """

    name: str = "?"
    summary: str = ""
    ships_arena: bool = False
    releases_gil: bool = False
    distributed: bool = False
    supports_futures: bool = True
    service: bool = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def scatter(self, trees: Sequence[Any]) -> None:
        """Pre-ship tree kernels to the workers (no-op by default)."""

    def map_cells(self, cells: Sequence[Cell], workers: int) -> List[Any]:
        """Solve ``cells`` in order, blocking.

        Raises :class:`ExecutorUnavailable` when the platform cannot run
        this backend (the engine then falls back to serial execution);
        infrastructure errors (``BrokenProcessPool``, ``PicklingError``)
        propagate for the engine to translate.
        """
        raise NotImplementedError

    def submit_cell(self, cell: Cell, workers: int):
        """Submit one cell; returns a future resolving to its report."""
        raise NotImplementedError(
            f"backend {self.name!r} does not support asynchronous submission"
        )

    def submit_chunk(self, cells: Sequence[Cell], workers: int):
        """Submit a work unit; returns a future resolving to a report list."""
        raise NotImplementedError(
            f"backend {self.name!r} does not support asynchronous submission"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Discard broken worker plumbing so the next call rebuilds it."""

    def stop(self) -> None:
        """Best-effort cooperative stop signal (cluster backends)."""

    def shutdown(self) -> None:
        """Release workers and shipped state (idempotent)."""

    def snapshot(self) -> Dict[str, Any]:
        """Backend-specific observability sub-documents (may be empty)."""
        return {}


@dataclass(frozen=True)
class BackendSpec:
    """One registry entry: the backend class plus its metadata.

    ``requires`` names an optional dependency module; :func:`create_backend`
    refuses with :class:`BackendUnavailableError` when it is missing, so an
    unimportable backend still *lists* (CLI help, docs) but fails loudly
    and early when selected.
    """

    name: str
    cls: Type[ExecutorBackend]
    summary: str
    requires: Optional[str] = None

    @property
    def available(self) -> bool:
        if self.requires is None:
            return True
        return importlib.util.find_spec(self.requires) is not None


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(
    name: str,
    cls: Type[ExecutorBackend],
    *,
    summary: str,
    requires: Optional[str] = None,
) -> BackendSpec:
    """Register ``cls`` under ``name`` (insertion order is listing order)."""
    if name in _REGISTRY:
        raise ValueError(f"executor backend {name!r} is already registered")
    spec = BackendSpec(name=name, cls=cls, summary=summary, requires=requires)
    _REGISTRY[name] = spec
    return spec


def backend_names(*, service_only: bool = False) -> Tuple[str, ...]:
    """Registered backend names, in registration order.

    ``service_only=True`` restricts to backends usable as ``serve --pool``
    modes (drops ``fresh``).
    """
    return tuple(
        name
        for name, spec in _REGISTRY.items()
        if not service_only or spec.cls.service
    )


def get_backend_spec(name: str) -> BackendSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown executor backend {name!r}; expected one of "
            f"{backend_names()}"
        )
    return spec


def create_backend(name: str, **options: Any) -> ExecutorBackend:
    """Instantiate the backend registered under ``name``.

    Raises
    ------
    ValueError
        Unknown name (the message lists the registered backends).
    BackendUnavailableError
        The backend's optional dependency is not installed.
    """
    spec = get_backend_spec(name)
    if not spec.available:
        raise BackendUnavailableError(
            f"pool={name!r} needs the optional dependency "
            f"{spec.requires!r} (pip install 'dask[distributed]')"
            if spec.requires == "distributed"
            else f"pool={name!r} needs the optional dependency {spec.requires!r}"
        )
    return spec.cls(**options)


def backend_table() -> List[BackendSpec]:
    """Every registered spec, in registration order (CLI help, docs)."""
    return list(_REGISTRY.values())
