"""Executor backends: the pluggable execution strategies of the engine.

One :class:`~.base.ExecutorBackend` per pool mode, registered here in
presentation order -- this registration list **is** ``POOL_MODES``: the
facade, ``bench --pool``, ``serve --pool`` and the CLI help all derive
their allowed values and descriptions from it via
:func:`~.base.backend_names` / :func:`~.base.backend_table`, so a new
backend registers once and appears everywhere.

======== ==========================================================
mode     strategy
======== ==========================================================
persistent shared-memory process engine, workers + trees reused
fresh      legacy one-shot process pool per call
serial     forced in-process execution (the reference)
threads    persistent in-process thread pool
dask       dask.distributed cluster (optional dependency)
======== ==========================================================
"""

from .base import (
    BackendSpec,
    BackendUnavailableError,
    ExecutorBackend,
    ExecutorUnavailable,
    backend_names,
    backend_table,
    create_backend,
    get_backend_spec,
    register_backend,
)
from .dask import DaskBackend
from .fresh import FreshBackend
from .persistent import PersistentBackend
from .serial import SerialBackend
from .threads import ThreadsBackend

__all__ = [
    "BackendSpec",
    "BackendUnavailableError",
    "ExecutorBackend",
    "ExecutorUnavailable",
    "DaskBackend",
    "FreshBackend",
    "PersistentBackend",
    "SerialBackend",
    "ThreadsBackend",
    "backend_names",
    "backend_table",
    "create_backend",
    "get_backend_spec",
    "register_backend",
]

# registration order == POOL_MODES order (kept stable for callers pinning
# the historical ("persistent", "fresh", "serial") prefix)
register_backend(
    "persistent", PersistentBackend, summary=PersistentBackend.summary
)
register_backend("fresh", FreshBackend, summary=FreshBackend.summary)
register_backend("serial", SerialBackend, summary=SerialBackend.summary)
register_backend("threads", ThreadsBackend, summary=ThreadsBackend.summary)
register_backend(
    "dask", DaskBackend, summary=DaskBackend.summary, requires="distributed"
)
