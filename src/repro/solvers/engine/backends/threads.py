"""In-process thread pool backend (``pool="threads"``).

A grow-never-shrink :class:`~concurrent.futures.ThreadPoolExecutor`
(managed by the same :class:`~repro.solvers.engine.pool.PersistentPool`
lifecycle as the process engine, ``kind="thread"``) running raw cells via
the facade's in-process solve path.  No arena, no pickling: threads share
the parent's heap, so trees need no shipping at all and unpicklable
options are a non-issue.

Today the pure-Python solvers hold the GIL (``releases_gil = False``), so
``threads`` is about correctness of the seam and zero-copy dispatch, not
speed-up; once the compiled (numba) solver tier lands, the same backend
parallelizes for real.  Results are bit-identical to ``serial`` either
way.  Sleep- or I/O-bound cells (the straggler tests, service traffic) do
overlap, which is what the campaign planner's work-splitting exercises.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Sequence

from ..pool import PersistentPool
from .base import (
    Cell,
    ExecutorBackend,
    ExecutorUnavailable,
    _call_with_pool_retry,
    _solve_cell,
    _solve_chunk,
)

__all__ = ["ThreadsBackend"]


class ThreadsBackend(ExecutorBackend):
    """Persistent in-process thread pool over raw cells."""

    name = "threads"
    summary = "in-process thread pool (GIL-bound until the compiled tier)"

    def __init__(self) -> None:
        self.pool = PersistentPool(kind="thread")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _ensure(self, workers: int):
        executor = self.pool.ensure(workers)
        if executor is None:  # pragma: no cover - thread pools build anywhere
            raise ExecutorUnavailable("this platform cannot start threads")
        return executor

    def _retry_on_grow(self, executor, call):
        # grow races retry by policy (see _call_with_pool_retry in base)
        return _call_with_pool_retry(self.pool, executor, call)

    # ------------------------------------------------------------------
    def map_cells(self, cells: Sequence[Cell], workers: int) -> List[Any]:
        with self._lock:
            executor = self._ensure(workers)
        return self._retry_on_grow(
            executor, lambda ex: list(ex.map(_solve_cell, cells))
        )

    def submit_cell(self, cell: Cell, workers: int):
        with self._lock:
            executor = self._ensure(workers)
        return self._retry_on_grow(
            executor, lambda ex: ex.submit(_solve_cell, cell)
        )

    def submit_chunk(self, cells: Sequence[Cell], workers: int):
        with self._lock:
            executor = self._ensure(workers)
        return self._retry_on_grow(
            executor, lambda ex: ex.submit(_solve_chunk, list(cells))
        )

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.pool.reset()

    def shutdown(self) -> None:
        self.pool.shutdown()

    def snapshot(self) -> Dict[str, Any]:
        return {"pool": self.pool.snapshot()}
