"""The default backend: persistent process pool + shared-memory tree arena.

This is the engine's original execution strategy, rehomed behind the
:class:`~.base.ExecutorBackend` protocol: a
:class:`~repro.solvers.engine.pool.PersistentPool` of worker processes
reused across batches, and a :class:`~repro.solvers.engine.arena.TreeArena`
that ships each tree's flat kernel arrays to the workers exactly once
(``ships_arena``), so payloads are compact ``(token, algorithm, memory,
options)`` tuples rather than pickled trees.  Behaviour -- clamping,
chunk sizing, the grow-retry on a concurrently replaced executor, arena
dedup by kernel identity -- is unchanged from the pre-backend engine.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..arena import TreeArena, TreeRef, resolve
from ..pool import PersistentPool
from .base import (
    Cell,
    ExecutorBackend,
    ExecutorUnavailable,
    _call_with_pool_retry,
)

__all__ = [
    "PersistentBackend",
    "MAX_CHUNKSIZE",
    "_compute_chunksize",
    "_solve_payload",
    "_solve_payload_chunk",
]

#: payloads per executor message: large enough to amortize IPC, small enough
#: to keep every worker busy (at least ~4 chunks per worker per batch)
MAX_CHUNKSIZE = 64


def _solve_payload(payload: Tuple[TreeRef, str, Optional[float], Dict[str, Any]]):
    """Module-level worker entry point (importable under any start method).

    Lenient dispatch, as in the serial batch path: one option set serves
    algorithms with different signatures.
    """
    from ...facade import _dispatch

    ref, algorithm, memory, options = payload
    return _dispatch(resolve(ref), algorithm, memory, options, strict=False)


def _solve_payload_chunk(payloads: Sequence[Tuple]) -> List[Any]:
    """Worker entry point for one campaign work unit (a payload list)."""
    return [_solve_payload(payload) for payload in payloads]


def _compute_chunksize(n_payloads: int, workers: int) -> int:
    return max(1, min(MAX_CHUNKSIZE, n_payloads // (workers * 4) or 1))


class PersistentBackend(ExecutorBackend):
    """Shared-memory process engine: workers and resident trees persist."""

    name = "persistent"
    summary = (
        "shared-memory process engine reused across batches (the default)"
    )
    ships_arena = True
    releases_gil = True

    def __init__(self, *, use_shared_memory: Optional[bool] = None) -> None:
        self.arena = TreeArena(use_shared_memory=use_shared_memory)
        self.pool = PersistentPool()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _ensure(self, workers: int):
        executor = self.pool.ensure(workers)
        if executor is None:
            raise ExecutorUnavailable(
                "this platform cannot spawn worker processes"
            )
        return executor

    def _payloads(self, cells: Sequence[Cell]) -> List[Tuple]:
        # cells sharing a tree should be adjacent (tree-major order): chunks
        # then reference a single arena token each, and blob-transport
        # fallbacks serialize the tree once per chunk (pickle memo)
        refs: Dict[int, TreeRef] = {}
        payloads = []
        for tree, algorithm, memory, options in cells:
            ref = refs.get(id(tree))
            if ref is None:
                ref = refs[id(tree)] = self.arena.export(tree)
            payloads.append((ref, algorithm, memory, options))
        return payloads

    def _retry_on_grow(self, executor, call):
        # grow races retry by policy, broken pools are invalidated exactly
        # once; see _call_with_pool_retry
        return _call_with_pool_retry(self.pool, executor, call)

    # ------------------------------------------------------------------
    def scatter(self, trees: Sequence[Any]) -> None:
        with self._lock:
            for tree in trees:
                self.arena.export(tree)

    def map_cells(self, cells: Sequence[Cell], workers: int) -> List[Any]:
        with self._lock:
            executor = self._ensure(workers)
            payloads = self._payloads(cells)
            chunksize = _compute_chunksize(len(payloads), self.pool.workers)
        return self._retry_on_grow(
            executor,
            lambda ex: list(
                ex.map(_solve_payload, payloads, chunksize=chunksize)
            ),
        )

    def submit_cell(self, cell: Cell, workers: int):
        with self._lock:
            executor = self._ensure(workers)
            tree, algorithm, memory, options = cell
            payload = (self.arena.export(tree), algorithm, memory, options)
        return self._retry_on_grow(
            executor, lambda ex: ex.submit(_solve_payload, payload)
        )

    def submit_chunk(self, cells: Sequence[Cell], workers: int):
        with self._lock:
            executor = self._ensure(workers)
            payloads = self._payloads(cells)
        return self._retry_on_grow(
            executor, lambda ex: ex.submit(_solve_payload_chunk, payloads)
        )

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.pool.reset()

    def shutdown(self) -> None:
        self.pool.shutdown()
        self.arena.close()

    def snapshot(self) -> Dict[str, Any]:
        return {"pool": self.pool.snapshot(), "arena": self.arena.snapshot()}

    def sample_worker_caches(self, timeout: float = 1.0) -> List[Dict[str, Any]]:
        """Best-effort worker kernel-cache stats, one entry per worker seen.

        Submits the picklable
        :func:`~repro.solvers.engine.arena.worker_cache_stats` probe
        ``2 x workers`` times and deduplicates by pid -- sampling, not a
        barrier: an idle pool answers from every worker, a busy pool from
        whichever workers pick the probes up first.  Returns ``[]`` when no
        pool is alive (serial platforms, or before the first batch).
        """
        from ..arena import worker_cache_stats

        with self._lock:
            executor = self.pool.executor
            workers = self.pool.workers
        if executor is None or workers < 1:
            return []
        futures = []
        try:
            for _ in range(2 * workers):
                futures.append(executor.submit(worker_cache_stats))
        except RuntimeError:  # pool shut down underneath us
            return []
        by_pid: Dict[int, Dict[str, Any]] = {}
        for future in futures:
            try:
                stats = future.result(timeout=timeout)
            except Exception:
                continue
            by_pid[int(stats["pid"])] = stats
        return [by_pid[pid] for pid in sorted(by_pid)]
