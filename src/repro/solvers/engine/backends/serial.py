"""Forced in-process execution (``pool="serial"``).

The degenerate backend: cells solve inline on the calling thread, in
order, with no worker plumbing at all.  It exists so that "run serially"
is a registry entry like any other pool mode rather than a special case --
the campaign planner, ``solve_many`` and the CLI all validate against one
name list -- and it is the reference every other backend must be
bit-identical to (the solvers are deterministic; only ``wall_time``
differs, and report equality excludes it).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .base import Cell, ExecutorBackend, _solve_cell, _solve_chunk

__all__ = ["SerialBackend"]


class SerialBackend(ExecutorBackend):
    """Inline execution on the calling thread."""

    name = "serial"
    summary = "forced in-process execution (the bit-identical reference)"
    supports_futures = False

    def map_cells(self, cells: Sequence[Cell], workers: int) -> List[Any]:
        del workers
        return _solve_chunk(cells)

    def submit_cell(self, cell: Cell, workers: int):
        # inline, but future-shaped: completes before it is returned
        from concurrent.futures import Future

        del workers
        future: "Future" = Future()
        try:
            future.set_result(_solve_cell(cell))
        except BaseException as exc:  # solver errors surface on the future
            future.set_exception(exc)
        return future

    def snapshot(self) -> Dict[str, Any]:
        return {}
