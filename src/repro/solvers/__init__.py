"""Unified solver API: registry, :class:`SolveReport`, and the facade.

This package turns the five differently-shaped algorithm families of
:mod:`repro.core` into interchangeable *solvers* sharing one result type::

    from repro import solve, solve_many, compare, list_solvers

    report = solve(tree, "minmem")            # SolveReport
    report = solve(tree, "minio", memory=32)  # out-of-core, first_fit
    batch  = solve_many(trees, ["postorder", "liu"], workers=4)
    ranked = compare(tree)                    # postorder vs liu vs minmem

See :mod:`repro.solvers.registry` for registering custom algorithms and
:mod:`repro.solvers.adapters` for the built-in ones.
"""

from .registry import (
    Solver,
    SolverSpec,
    UnknownSolverError,
    get_solver,
    list_solvers,
    register_solver,
    solver_table,
)
from .report import SolveReport, report_from_dict, report_to_dict

# importing the adapters populates the registry with the built-in solvers;
# it must happen before the facade is usable
from .adapters import DEFAULT_ALGORITHM, MINMEMORY_SOLVERS  # noqa: E402
from .portfolio import (  # noqa: E402  (registers the "auto" solver)
    RACE_NODE_THRESHOLD,
    ROUTING_TABLE,
    tree_features,
)
from .engine import (  # noqa: E402
    BackendUnavailableError,
    EngineStoppedError,
    ExecutorBackend,
    SolveEngine,
    backend_names,
    backend_table,
    get_engine,
    register_backend,
    shutdown_engine,
)
from .facade import (  # noqa: E402
    DEFAULT_COMPARE_ALGORITHMS,
    POOL_MODES,
    Comparison,
    compare,
    solve,
    solve_many,
)

__all__ = [
    "Solver",
    "SolverSpec",
    "SolveReport",
    "UnknownSolverError",
    "register_solver",
    "get_solver",
    "list_solvers",
    "solver_table",
    "report_to_dict",
    "report_from_dict",
    "solve",
    "solve_many",
    "compare",
    "Comparison",
    "DEFAULT_ALGORITHM",
    "DEFAULT_COMPARE_ALGORITHMS",
    "MINMEMORY_SOLVERS",
    "POOL_MODES",
    "RACE_NODE_THRESHOLD",
    "ROUTING_TABLE",
    "tree_features",
    "BackendUnavailableError",
    "EngineStoppedError",
    "ExecutorBackend",
    "SolveEngine",
    "backend_names",
    "backend_table",
    "get_engine",
    "register_backend",
    "shutdown_engine",
]
