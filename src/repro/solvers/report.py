"""The unified result type returned by every registered solver.

Historically each algorithm family returned a bespoke dataclass
(``PostOrderResult``, ``LiuResult``, ``MinMemResult``, ``ExploreResult``,
``OutOfCoreResult``) and every consumer re-implemented the glue to compare
them.  :class:`SolveReport` is the common denominator: the algorithm name, a
traversal (and, for out-of-core runs, the full eviction schedule), the peak
memory, the I/O volume, the wall-clock time, and a solver-specific ``extras``
dictionary for everything else.

``wall_time`` is excluded from equality comparisons so that two runs of the
same deterministic solver -- e.g. a serial and a multiprocess
:func:`repro.solvers.solve_many` batch -- compare equal.

Reports round-trip through JSON via :func:`report_to_dict` /
:func:`report_from_dict` (also exposed as
:func:`repro.core.serialize.solve_report_to_dict` /
``solve_report_from_dict``); ``extras`` values are therefore expected to be
JSON-serialisable scalars or small lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from ..core.serialize import traversal_from_dict, traversal_to_dict
from ..core.traversal import OutOfCoreSchedule, Traversal
from ..core.tree import TreeValidationError

__all__ = ["SolveReport", "report_to_dict", "report_from_dict"]

REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SolveReport:
    """Unified result of one solver run on one tree.

    Attributes
    ----------
    algorithm:
        Canonical registry name of the solver that produced the report.
    peak_memory:
        Peak main memory of the computed traversal.  For the MinMemory
        solvers this is the minimum memory making the traversal feasible
        in-core; for MinIO runs it is the peak *resident* size, which never
        exceeds the memory bound.
    traversal:
        The computed node order (for out-of-core runs, the order replayed by
        the scheduler).
    io_volume:
        Volume written to secondary memory (``0.0`` for in-core solvers).
    schedule:
        Full out-of-core schedule (traversal + eviction steps) when the
        solver produced one, else ``None``.
    wall_time:
        Wall-clock seconds spent inside the solver.  Excluded from equality.
    extras:
        Solver-specific metadata (e.g. ``iterations`` and ``explore_calls``
        for MinMem, the child-ordering ``rule`` for PostOrder, the eviction
        ``heuristic`` and ``memory_limit`` for MinIO).
    """

    algorithm: str
    peak_memory: float
    traversal: Traversal
    io_volume: float = 0.0
    schedule: Optional[OutOfCoreSchedule] = None
    wall_time: float = field(default=0.0, compare=False)
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def memory(self) -> float:
        """Alias of :attr:`peak_memory` (mirrors the legacy result types)."""
        return self.peak_memory

    def with_wall_time(self, seconds: float) -> "SolveReport":
        """Copy of the report with ``wall_time`` replaced."""
        return replace(self, wall_time=float(seconds))

    def summary(self) -> str:
        """One human-readable line (used by the CLI's text output)."""
        parts = [f"{self.algorithm:<24}: peak memory {self.peak_memory:.6g}"]
        if self.schedule is not None or self.io_volume:
            parts.append(f"IO volume {self.io_volume:.6g}")
        parts.append(f"{self.wall_time * 1e3:.2f} ms")
        return "  ".join(parts)


def report_to_dict(report: SolveReport) -> Dict[str, Any]:
    """Convert a :class:`SolveReport` to a JSON-serialisable dictionary."""
    schedule = None
    if report.schedule is not None:
        schedule = {
            "traversal": traversal_to_dict(report.schedule.traversal),
            # a list of [node, step] pairs: JSON objects cannot keep
            # non-string keys, and node identifiers are often integers
            "evictions": sorted(
                ([node, step] for node, step in report.schedule.evictions.items()),
                key=lambda pair: pair[1],
            ),
        }
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "kind": "solve_report",
        "algorithm": report.algorithm,
        "peak_memory": report.peak_memory,
        "io_volume": report.io_volume,
        "wall_time": report.wall_time,
        "traversal": traversal_to_dict(report.traversal),
        "schedule": schedule,
        "extras": dict(report.extras),
    }


def report_from_dict(data: Dict[str, Any]) -> SolveReport:
    """Rebuild a :class:`SolveReport` from :func:`report_to_dict` output."""
    if data.get("schema") != REPORT_SCHEMA_VERSION or data.get("kind") != "solve_report":
        raise TreeValidationError(
            f"unsupported solve-report document "
            f"(schema={data.get('schema')!r}, kind={data.get('kind')!r})"
        )
    schedule = None
    if data.get("schedule") is not None:
        schedule = OutOfCoreSchedule(
            traversal=traversal_from_dict(data["schedule"]["traversal"]),
            evictions={node: step for node, step in data["schedule"]["evictions"]},
        )
    return SolveReport(
        algorithm=data["algorithm"],
        peak_memory=float(data["peak_memory"]),
        traversal=traversal_from_dict(data["traversal"]),
        io_volume=float(data.get("io_volume", 0.0)),
        schedule=schedule,
        wall_time=float(data.get("wall_time", 0.0)),
        extras=dict(data.get("extras", {})),
    )
