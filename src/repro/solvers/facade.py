"""The ``solve`` / ``solve_many`` / ``compare`` facade.

These three functions are the intended entry points of the library:

* :func:`solve` runs one registered algorithm on one tree and returns a
  :class:`~repro.solvers.report.SolveReport`;
* :func:`solve_many` batches ``trees x algorithms`` and, when ``workers > 1``,
  fans the batch across an executor backend -- by default the persistent
  shared-memory process engine of :mod:`repro.solvers.engine` (workers and
  resident trees reused across calls); ``pool=`` selects any registered
  backend (see :data:`POOL_MODES`), falling back to serial execution when
  the platform cannot run it, e.g. in sandboxes; results are bit-identical
  to the serial path because every registered solver is deterministic;
* :func:`compare` runs several algorithms on the same tree and returns them
  ranked (peak memory first, then I/O volume, then wall time).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, replace
from functools import lru_cache
from time import perf_counter
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.tree import Tree
from .engine.backends import backend_names
from .registry import SolverSpec, get_solver
from .report import SolveReport

__all__ = [
    "solve",
    "solve_many",
    "compare",
    "Comparison",
    "DEFAULT_COMPARE_ALGORITHMS",
    "POOL_MODES",
]

#: algorithms compared side by side when :func:`compare` is given none
DEFAULT_COMPARE_ALGORITHMS = ("postorder", "liu", "minmem")

#: executor modes for parallel batches, straight from the backend registry
#: (one source of truth shared with ``bench --pool`` and ``serve --pool``):
#: the persistent shared-memory process engine (default), a one-shot pool
#: per call (legacy), forced serial execution, a persistent in-process
#: thread pool, and an optional ``dask.distributed`` cluster
POOL_MODES = backend_names()

AlgorithmArg = Union[str, Sequence[str]]


@lru_cache(maxsize=None)
def _declared_options(func) -> Optional[FrozenSet[str]]:
    """Keyword options ``func`` consumes, or ``None`` for "accepts anything".

    Built-in adapters declare their real options and swallow the rest with a
    var-keyword parameter named ``_ignored`` (so batch calls can forward
    options that only apply to some of the algorithms).  A var-keyword
    parameter with any *other* name marks a solver that genuinely accepts
    arbitrary options, disabling the strict check.
    """
    names = set()
    for param in inspect.signature(func).parameters.values():
        if param.kind in (param.KEYWORD_ONLY, param.POSITIONAL_OR_KEYWORD):
            names.add(param.name)
        elif param.kind == param.VAR_KEYWORD and param.name != "_ignored":
            return None
    names.discard("tree")
    return frozenset(names)


def _prepare_options(
    spec: SolverSpec,
    memory: Optional[float],
    options: Dict[str, Any],
    *,
    strict: bool,
) -> Dict[str, Any]:
    """Resolve the options actually handed to ``spec.func``.

    ``memory`` is a facade-level parameter: it is forwarded only to solvers
    that take one (``explore``, the ``minio`` family) and silently dropped
    otherwise.  Any other option the solver does not declare raises
    :class:`TypeError` when ``strict`` (single-algorithm :func:`solve`) and
    is dropped when lenient (:func:`solve_many` batches over algorithms with
    different option sets).
    """
    declared = _declared_options(spec.func)
    opts = dict(options)
    if declared is not None:
        unknown = set(opts) - declared
        if unknown:
            if strict:
                raise TypeError(
                    f"solver {spec.name!r} got unexpected option(s) "
                    f"{sorted(unknown)}; it accepts {sorted(declared)}"
                )
            for key in unknown:
                opts.pop(key)
        if memory is not None and "memory" in declared:
            opts["memory"] = memory
    elif memory is not None:
        opts["memory"] = memory
    return opts


def solve(
    tree: Tree,
    algorithm: str = "minmem",
    *,
    memory: Optional[float] = None,
    reuse: Optional[Any] = None,
    **options: Any,
) -> SolveReport:
    """Run one registered solver on ``tree`` and return its report.

    Parameters
    ----------
    tree : Tree or TreeKernel
        The task tree.  A flat :class:`~repro.core.kernel.TreeKernel` is
        accepted by every built-in solver and skips the per-solve
        conversion (``Tree`` inputs cache their kernel transparently).
    algorithm : str
        Registry name or alias (see :func:`repro.solvers.list_solvers`).
    memory : float, optional
        Main-memory budget, forwarded to solvers that take one (``explore``
        and the ``minio`` family); the in-core MinMemory solvers ignore it.
    reuse : True or SolveReport, optional
        Incremental re-solve for the postorder/Liu solvers: pass a previous
        report (of the same algorithm on the tree before its latest
        mutations) to re-solve only the mutated nodes' root paths, or
        ``True`` to bootstrap -- solve from scratch but retain the per-node
        state a later ``reuse=report`` call resumes from.  The result is
        bit-identical to a from-scratch solve either way; see
        :mod:`repro.solvers.incremental`.
    options
        Solver-specific keyword options (e.g. ``rule=`` for ``postorder``,
        ``heuristic=`` for ``minio``, ``reuse_states=`` for ``minmem``,
        ``engine="kernel"|"reference"`` for every built-in solver).
        Options the solver does not declare raise :class:`TypeError`, so a
        typo cannot silently fall back to a default.

    Returns
    -------
    SolveReport
        Peak memory, witness traversal, I/O volume / schedule where
        applicable, wall time, and solver-specific ``extras``.

    Raises
    ------
    UnknownSolverError
        If ``algorithm`` does not resolve to a registered solver.

    Examples
    --------
    >>> from repro.core.builders import chain_tree
    >>> solve(chain_tree(4, f=1.0, n=1.0), "minmem").peak_memory
    3.0
    """
    if reuse is not None:
        from .incremental import solve_incremental

        return solve_incremental(
            tree, algorithm, memory=memory, reuse=reuse, **options
        )
    return _dispatch(tree, algorithm, memory, options, strict=True)


def _dispatch(
    tree: Tree,
    algorithm: str,
    memory: Optional[float],
    options: Dict[str, Any],
    *,
    strict: bool,
) -> SolveReport:
    fault = options.get("_fault")
    if fault is not None:
        # chaos injection (repro.faults): the reserved _fault key carries a
        # worker-side fault into this dispatch.  It must trip *before* the
        # wall-time stamp so injected straggler sleeps never pollute the
        # timing columns of a chaos campaign.
        options = {k: v for k, v in options.items() if k != "_fault"}
        from ..faults.plan import trip

        trip(fault)
    spec = get_solver(algorithm)
    opts = _prepare_options(spec, memory, options, strict=strict)
    start = perf_counter()
    report = spec.func(tree, **opts)
    elapsed = perf_counter() - start
    # the report carries the *registry* name the caller asked for (aliases
    # canonicalised), so batch keys and Comparison lookups always match;
    # variant details (the rule, the eviction heuristic) live in extras
    return replace(report, algorithm=spec.name, wall_time=elapsed)


def _normalize_algorithms(algorithms: AlgorithmArg) -> Tuple[str, ...]:
    if isinstance(algorithms, str):
        algorithms = (algorithms,)
    canonical = tuple(get_solver(name).name for name in algorithms)
    if not canonical:
        raise ValueError("solve_many needs at least one algorithm")
    if len(set(canonical)) != len(canonical):
        raise ValueError(f"duplicate algorithms after canonicalisation: {canonical}")
    return canonical


def _solve_task(payload: Tuple[Tree, str, Optional[float], Dict[str, Any]]) -> SolveReport:
    """Module-level worker so the process pool can pickle it.

    Lenient dispatch: a batch shares one option set across algorithms with
    different signatures, so inapplicable options are dropped per solver.
    """
    tree, algorithm, memory, options = payload
    return _dispatch(tree, algorithm, memory, options, strict=False)


def solve_many(
    trees: Iterable[Tree],
    algorithms: AlgorithmArg = ("minmem",),
    *,
    memory: Optional[float] = None,
    workers: Optional[int] = None,
    **options: Any,
) -> List[Dict[str, SolveReport]]:
    """Solve every tree with every algorithm, optionally in parallel.

    Parameters
    ----------
    trees : iterable of Tree or TreeKernel
        The task trees (any iterable; it is materialised once).  Passing
        :class:`~repro.core.kernel.TreeKernel` objects ships the compact
        flat form to worker processes, which then skip per-tree
        reconstruction; pickled ``Tree`` objects carry their cached kernel
        for the same reason.
    algorithms : str or sequence of str
        One name or a sequence of names/aliases.
    memory : float, optional
        Forwarded to every :func:`solve` call (budgeted solvers only).
    workers : int, optional
        ``None``, ``0`` or ``1`` run serially in-process.  Larger values use
        a process pool of that many workers; if the platform cannot spawn
        subprocesses the batch degrades to the serial path with a
        :class:`RuntimeWarning` (emitted once per engine for the missing
        platform, per batch for pool crashes and unpicklable options; the
        results are identical either way, only slower).
    options
        Forwarded to every solver with lenient dispatch (options a solver
        does not declare are dropped for that solver, so one option set can
        serve a mixed batch).  The reserved option ``pool`` selects the
        executor backend instead of reaching any solver (any name in
        :data:`POOL_MODES`): ``pool="persistent"`` (the default) reuses the
        process-wide :class:`~repro.solvers.engine.SolveEngine` -- workers
        stay alive across calls and every tree's kernel is shipped to them
        exactly once through the shared arena; ``pool="fresh"`` restores
        the legacy one-shot pool per call; ``pool="threads"`` runs on a
        persistent in-process thread pool; ``pool="dask"`` fans out to a
        ``dask.distributed`` cluster (optional dependency; raises a
        :class:`ValueError` subclass when dask is not installed);
        ``pool="serial"`` forces in-process execution regardless of
        ``workers``.

    Returns
    -------
    list of dict
        One dictionary per input tree (in input order) mapping the
        canonical algorithm name to its :class:`SolveReport`.
    """
    pool = options.pop("pool", None)
    if pool not in (None, *POOL_MODES):
        raise ValueError(f"unknown pool mode {pool!r}; expected one of {POOL_MODES}")
    tree_list = list(trees)
    names = _normalize_algorithms(algorithms)
    # one shared options dict: solvers never mutate it (_prepare_options
    # copies), and the pickle memo then ships it once per executor chunk
    shared_options = dict(options)
    payloads = [
        (tree, name, memory, shared_options) for tree in tree_list for name in names
    ]

    flat: Optional[List[SolveReport]] = None
    parallel = workers is not None and workers > 1 and len(payloads) > 1
    if parallel and pool != "serial":
        from .engine import get_engine

        flat = get_engine(pool).run_batch(payloads, workers)
    if flat is None:
        flat = [_solve_task(payload) for payload in payloads]

    out: List[Dict[str, SolveReport]] = []
    for i in range(len(tree_list)):
        chunk = flat[i * len(names) : (i + 1) * len(names)]
        out.append({name: report for name, report in zip(names, chunk)})
    return out


@dataclass(frozen=True)
class Comparison:
    """Ranked side-by-side reports of several algorithms on one tree.

    ``reports`` is sorted best-first: by peak memory, then I/O volume; ties
    keep the order in which the algorithms were requested.
    """

    reports: Tuple[SolveReport, ...]

    @property
    def best(self) -> SolveReport:
        """The winning report (lowest peak memory)."""
        return self.reports[0]

    @property
    def algorithms(self) -> Tuple[str, ...]:
        """Algorithm names in ranked order."""
        return tuple(report.algorithm for report in self.reports)

    def __iter__(self):
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    def __getitem__(self, algorithm: str) -> SolveReport:
        for report in self.reports:
            if report.algorithm == algorithm:
                return report
        raise KeyError(algorithm)

    def ratios(self) -> Dict[str, float]:
        """Peak-memory ratio of every algorithm to the best one."""
        best = self.best.peak_memory
        return {
            report.algorithm: (report.peak_memory / best if best else 1.0)
            for report in self.reports
        }

    def format_table(self) -> str:
        """Plain-text ranking table (used by the CLI)."""
        lines = [f"{'algorithm':<26} {'peak memory':>14} {'ratio':>8} {'IO':>10} {'time':>10}"]
        ratios = self.ratios()
        for report in self.reports:
            lines.append(
                f"{report.algorithm:<26} {report.peak_memory:>14.6g} "
                f"{ratios[report.algorithm]:>8.4f} {report.io_volume:>10.6g} "
                f"{report.wall_time * 1e3:>8.2f}ms"
            )
        return "\n".join(lines)


def compare(
    tree: Tree,
    algorithms: AlgorithmArg = DEFAULT_COMPARE_ALGORITHMS,
    *,
    memory: Optional[float] = None,
    workers: Optional[int] = None,
    **options: Any,
) -> Comparison:
    """Run several algorithms on one tree and rank the reports.

    Parameters
    ----------
    tree : Tree or TreeKernel
        The task tree (or its flat kernel form).
    algorithms : str or sequence of str
        Registry names or aliases; defaults to the paper's three MinMemory
        solvers (``postorder``, ``liu``, ``minmem``).
    memory : float, optional
        Budget forwarded to budgeted solvers (``explore``, ``minio``).
    workers : int, optional
        Worker processes, as in :func:`solve_many`.
    options
        Extra solver options (lenient dispatch: options a solver does not
        declare are dropped for that solver).

    Returns
    -------
    Comparison
        Reports sorted best-first by (peak memory, I/O volume); ties keep
        the requested algorithm order.

    Examples
    --------
    >>> from repro.core.builders import chain_tree
    >>> ranking = compare(chain_tree(4, f=1.0, n=1.0))
    >>> ranking.best.peak_memory
    3.0
    """
    (reports_by_name,) = solve_many(
        [tree], algorithms, memory=memory, workers=workers, **options
    )
    # stable sort: ties on (peak, IO) keep the caller's algorithm order, so
    # the ranking is deterministic (wall time is not a tie-breaker)
    ranked = sorted(
        reports_by_name.values(),
        key=lambda r: (r.peak_memory, r.io_volume),
    )
    return Comparison(reports=tuple(ranked))
