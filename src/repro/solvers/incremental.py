"""Incremental re-solve: ``solve(tree, ..., reuse=report)``.

The postorder and Liu solvers are bottom-up sweeps whose per-node state
(postorder: the subtree peak and chosen child permutation; Liu: the
canonical hill--valley segments) only depends on the node's subtree.  After
a tree mutation (:meth:`Tree.add_node <repro.core.tree.Tree.add_node>`,
``set_f``, ``set_n``) only the mutated nodes' root paths can change, so a
re-solve needs to revisit exactly those nodes -- everything else is reused
verbatim from the previous run.

The plumbing works in three layers:

* :class:`~repro.core.tree.Tree` journals mutations and patches its cached
  kernel (:meth:`TreeKernel.patched <repro.core.kernel.TreeKernel.patched>`),
  tagging the new kernel with its base and the dirty root-path set;
* this module keeps a small process-wide LRU of per-solve state, referenced
  from reports by an opaque token in ``extras["incremental_token"]`` (the
  state itself is not JSON, so reports stay serialisable);
* :func:`solve_incremental` -- reached through ``solve(..., reuse=...)`` --
  resolves the token, and runs :func:`~repro.core.kernel.kernel_postorder_patch`
  / :func:`~repro.core.kernel.kernel_liu_patch` when the previous state's
  kernel is exactly the base of the current one.  On any mismatch (state
  evicted, different algorithm, unrelated tree, journal overflow) it falls
  back to the full sweep, which doubles as the differential-testing oracle:
  both paths are bit-identical, as ``tests/differential`` asserts on
  thousands of generated mutation sequences.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import count
from time import perf_counter
from typing import Any, Dict, Optional, Union

from ..core.kernel import (
    TreeKernel,
    kernel_liu_patch,
    kernel_liu_state,
    kernel_postorder,
    kernel_postorder_patch,
)
from ..core.traversal import BOTTOMUP, Traversal
from ..core.tree import Tree
from .registry import get_solver
from .report import SolveReport

__all__ = [
    "INCREMENTAL_ALGORITHMS",
    "solve_incremental",
    "clear_state_cache",
    "state_cache_size",
]

#: registry names supporting ``reuse=``, mapped to their postorder
#: child-ordering rule (``None`` marks Liu's hill--valley algorithm)
INCREMENTAL_ALGORITHMS: Dict[str, Optional[str]] = {
    "postorder": "liu",
    "postorder_natural": "natural",
    "postorder_subtree_memory": "subtree_memory",
    "liu": None,
}

#: retained per-solve states; each holds one kernel plus O(p) solver state
STATE_CACHE_CAPACITY = 32


@dataclass
class _SolveState:
    """One retained solve: the kernel it ran on and the per-node arrays."""

    kernel: TreeKernel
    key: str  # canonical algorithm name + rule, e.g. "postorder:liu"
    payload: tuple  # the solver's full result tuple


_states: "OrderedDict[str, _SolveState]" = OrderedDict()
_tokens = count(1)


def _remember(state: _SolveState) -> str:
    token = f"inc-{next(_tokens):x}"
    _states[token] = state
    while len(_states) > STATE_CACHE_CAPACITY:
        _states.popitem(last=False)
    return token


def _lookup(token: Optional[str]) -> Optional[_SolveState]:
    if not isinstance(token, str):
        return None
    state = _states.get(token)
    if state is not None:
        _states.move_to_end(token)
    return state


def clear_state_cache() -> None:
    """Drop every retained solve state (mainly for tests)."""
    _states.clear()


def state_cache_size() -> int:
    """Number of currently retained solve states."""
    return len(_states)


def solve_incremental(
    tree: Union[Tree, TreeKernel],
    algorithm: str = "postorder",
    *,
    memory: Optional[float] = None,
    reuse: Union[bool, str, SolveReport] = True,
    **options: Any,
) -> SolveReport:
    """Solve ``tree``, reusing a previous report's per-node state if possible.

    This is the implementation behind ``solve(..., reuse=...)``.

    Parameters
    ----------
    tree : Tree or TreeKernel
        The (possibly mutated) task tree.
    algorithm : str
        One of :data:`INCREMENTAL_ALGORITHMS` (the postorder variants and
        ``liu``); other registry names raise :class:`TypeError` -- their
        sweeps carry no reusable per-node state.
    memory : float, optional
        Accepted for facade symmetry; the in-core solvers ignore it.
    reuse : True, token string, or SolveReport
        ``True`` solves from scratch but retains state for later reuse; a
        report (or its ``extras["incremental_token"]``) resumes from that
        solve when its kernel is exactly the base of the current one.
    options
        ``rule=`` (for ``postorder``) and ``engine="kernel"`` only; the
        incremental path exists for the kernel engine.

    Returns
    -------
    SolveReport
        Bit-identical (peak, traversal, I/O) to the from-scratch report.
        ``extras["incremental"]`` records which path ran -- ``"patched"``,
        ``"full"``, or ``"cached"`` (tree unchanged since the reused
        report) -- and ``extras["incremental_token"]`` references the
        retained state for the next ``reuse=`` call.
    """
    spec = get_solver(algorithm)
    name = spec.name
    if name not in INCREMENTAL_ALGORITHMS:
        raise TypeError(
            f"solver {name!r} does not support reuse=; incremental re-solve "
            f"is available for {sorted(INCREMENTAL_ALGORITHMS)}"
        )
    opts = dict(options)
    rule = INCREMENTAL_ALGORITHMS[name]
    if name == "postorder":
        rule = opts.pop("rule", rule)
    engine = opts.pop("engine", "kernel")
    if engine != "kernel":
        raise TypeError(
            f"reuse= requires engine='kernel' (got engine={engine!r}); "
            "the reference engine keeps no per-node solve state"
        )
    if opts:
        raise TypeError(
            f"solver {name!r} got unexpected option(s) {sorted(opts)} "
            "with reuse="
        )
    key = f"{name}:{rule}"

    kern = tree if isinstance(tree, TreeKernel) else tree.kernel()
    if reuse is True:
        prev = None
    elif isinstance(reuse, SolveReport):
        prev = _lookup(reuse.extras.get("incremental_token"))
    else:
        prev = _lookup(reuse)
    if prev is not None and prev.key != key:
        prev = None

    start = perf_counter()
    if prev is not None and prev.kernel is kern:
        mode = "cached"
        payload = prev.payload
    elif (
        prev is not None
        and kern._dirty is not None
        and kern.base_kernel() is prev.kernel
    ):
        mode = "patched"
        if rule is None:
            payload = kernel_liu_patch(kern, prev.payload[2], prev.payload[3])
        else:
            payload = kernel_postorder_patch(
                kern, prev.payload[2], prev.payload[3], rule
            )
    else:
        mode = "full"
        if rule is None:
            payload = kernel_liu_state(kern)
        else:
            payload = kernel_postorder(kern, rule)
    elapsed = perf_counter() - start

    token = _remember(_SolveState(kernel=kern, key=key, payload=payload))
    peak, order_idx = payload[0], payload[1]
    extras: Dict[str, Any] = {"engine": "kernel"}
    if rule is None:
        extras["segments"] = len(payload[3][0])  # root's canonical segments
    else:
        extras["rule"] = rule
    extras["incremental"] = mode
    extras["incremental_token"] = token
    if mode == "patched":
        extras["dirty_nodes"] = len(kern._dirty)
    return SolveReport(
        algorithm=name,
        peak_memory=peak,
        traversal=Traversal(kern.order_to_ids(order_idx), BOTTOMUP),
        wall_time=elapsed,
        extras=extras,
    )
